//! Stand-in for `criterion`, vendored so the workspace builds without
//! registry access. Runs each benchmark for a short, bounded budget and
//! prints mean per-iteration time — no statistics, HTML reports, or
//! baseline comparison. API mirrors the subset the workspace's benches use
//! (`benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! `Bencher::iter_with_setup`, `criterion_group!`, `criterion_main!`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each `bench_function`.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function<I: AsRef<str>, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-budgeted, not
    /// sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<I: AsRef<str>, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.as_ref()), f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        iterations: 0,
        measured: Duration::ZERO,
        deadline: Instant::now() + MEASURE_BUDGET,
    };
    f(&mut b);
    if b.iterations > 0 {
        let per_iter = b.measured / (b.iterations as u32).max(1);
        println!("bench: {id:<40} {per_iter:>12.2?}/iter ({} iters)", b.iterations);
    } else {
        println!("bench: {id:<40} (no iterations)");
    }
}

pub struct Bencher {
    iterations: u64,
    measured: Duration,
    deadline: Instant,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration, then measure until the budget expires.
        black_box(routine());
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.measured += t0.elapsed();
            self.iterations += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    pub fn iter_with_setup<S, O, FS, F>(&mut self, mut setup: FS, mut routine: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let input = setup();
        black_box(routine(input));
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.measured += t0.elapsed();
            self.iterations += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    pub fn iter_batched<S, O, FS, F>(&mut self, setup: FS, routine: F, _size: BatchSize)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        self.iter_with_setup(setup, routine);
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8; 16], |v| v.len())
        });
        g.finish();
    }
}

//! Stand-in for `proptest`, vendored so the workspace builds without
//! registry access. Implements the subset the workspace's property tests
//! use: the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `Strategy` with `prop_map` / `prop_recursive` / `boxed`, ranges and
//! tuples as strategies, `Just`, `prop_oneof!`, `any::<T>()`,
//! `prop::collection::vec`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Cases are generated deterministically (seeded from the test name and
//! case index) so failures reproduce run-to-run. There is **no shrinking**:
//! a failing case panics with the assertion message immediately.

pub mod test_runner {
    /// Deterministic xoshiro256++ source used to generate test cases.
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// 53-bit uniform float in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Mirrors `proptest::test_runner::Config` (exported from the prelude as
    /// `ProptestConfig`). Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the test.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped, not counted.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    fn name_seed(name: &str) -> u64 {
        // FNV-1a, stable across runs (unlike `DefaultHasher`).
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Drive `config.cases` generated cases through `body`. Called by the
    /// `proptest!` macro expansion; not part of the real proptest API.
    pub fn run_cases<F>(config: Config, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = name_seed(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(16).saturating_add(1024);
        while passed < config.cases {
            let case_index = passed + rejected;
            let mut rng = TestRng::from_seed(seed ^ (case_index as u64).wrapping_mul(0x9E3779B97F4A7C15));
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < max_rejects,
                        "proptest '{name}': too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {passed} (seed {seed:#x}):\n{msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// Value-generation strategy. Unlike real proptest there is no value
    /// tree or shrinking — `generate` yields a fresh value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Build a recursive strategy: `depth` levels of `expand` applied on
        /// top of `self` as the leaf. The `desired_size` and
        /// `expected_branch_size` hints of real proptest are accepted and
        /// ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = expand(strat.clone()).boxed();
            }
            strat
        }
    }

    /// Type-erased, cloneable strategy (what `prop_recursive` hands to its
    /// expansion closure).
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among branches; what `prop_oneof!` builds.
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.next_below(self.branches.len() as u64) as usize;
            self.branches[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    /// Mirrors `proptest::arbitrary::any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite values only, spanning a wide magnitude range.
            rng.next_unit_f64() * 2e9 - 1e9
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification accepted by `vec` (a fixed size or a
    /// range of sizes).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.next_below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    /// Lets `prop::collection::vec` etc. resolve after a prelude glob, as in
    /// real proptest.
    pub use crate as prop;
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    $cfg,
                    stringify!($name),
                    |__proptest_rng| {
                        $( let $arg = $crate::strategy::Strategy::generate(&{ $strat }, __proptest_rng); )+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        let leaf = prop_oneof![(-10i32..10).prop_map(Tree::Leaf), Just(Tree::Leaf(0))];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                inner,
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect bounds; vec sizes respect the size range.
        #[test]
        fn ranges_and_vecs(
            x in 1usize..5,
            v in prop::collection::vec(any::<u8>(), 2..7),
            w in prop::collection::vec((0usize..3, -4i64..0), 4),
        ) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert_eq!(w.len(), 4);
            for (a, b) in w {
                prop_assert!(a < 3);
                prop_assert!((-4..0).contains(&b));
            }
        }

        #[test]
        fn recursion_bounded(t in tree_strategy()) {
            prop_assert!(depth(&t) <= 3, "depth {} too deep", depth(&t));
        }

        #[test]
        fn assume_rejects(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..9);
        let mut r1 = crate::test_runner::TestRng::from_seed(99);
        let mut r2 = crate::test_runner::TestRng::from_seed(99);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics() {
        crate::test_runner::run_cases(
            crate::test_runner::Config::with_cases(8),
            "always_fails",
            |_rng| Err(crate::test_runner::TestCaseError::fail("boom")),
        );
    }
}

//! Stand-in for `rand` 0.9, vendored so the workspace builds without
//! registry access. Implements the subset the workspace uses: `StdRng`
//! seeded via `SeedableRng::seed_from_u64` and `Rng::random_range` over
//! integer and float ranges. The generator is xoshiro256++ seeded through
//! splitmix64 — deterministic for a given seed, which is all the callers
//! rely on (they compare P2G pipelines against baselines fed from the same
//! seed, never against externally fixed constants).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding trait mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing trait mirroring `rand::Rng` (blanket-implemented for every
/// `RngCore`, as in real rand).
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

#[inline]
fn sample_unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + sample_unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (sample_unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

// Integer sampling: widening-multiply range reduction (Lemire, without the
// rejection step — bias is < 2^-32 for the small ranges used here, and only
// determinism matters to callers).
macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0usize..1000),
                b.random_range(0usize..1000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-100.0..100.0);
            assert!((-100.0..100.0).contains(&v));
            let i = rng.random_range(0usize..=5);
            assert!(i <= 5);
            let n: i32 = rng.random_range(-20i32..20);
            assert!((-20..20).contains(&n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}

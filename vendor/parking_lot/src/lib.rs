//! Std-backed stand-in for `parking_lot`, vendored so the workspace builds
//! without registry access. Exposes the subset the workspace uses — `Mutex`,
//! `RwLock`, `Condvar` — with parking_lot's signatures (no lock poisoning;
//! `Condvar::wait` takes `&mut MutexGuard`). A poisoned std lock (a panic
//! while holding it) is ignored and the inner data returned, matching
//! parking_lot's behaviour of not propagating poison.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader-writer lock mirroring `parking_lot::RwLock`.
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable mirroring `parking_lot::Condvar`: `wait` reborrows the
/// guard instead of consuming it.
pub struct Condvar {
    inner: sync::Condvar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn wait_until<T>(&self, guard: &mut MutexGuard<'_, T>, deadline: Instant) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std does not report whether a thread was woken; claim false like a
        // no-waiter parking_lot notify. Callers in this workspace ignore it.
        false
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}

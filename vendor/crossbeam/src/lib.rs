//! Std-backed stand-in for `crossbeam`, vendored so the workspace builds
//! without registry access. Implements the `channel` module subset the
//! workspace uses: an unbounded MPMC channel whose `Sender` and `Receiver`
//! are both `Clone + Send + Sync` (std's `mpsc::Receiver` is neither `Clone`
//! nor `Sync`, so this is a real reimplementation over `Mutex` + `Condvar`,
//! not a re-export).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Inner<T> {
        fn disconnected_for_recv(&self) -> bool {
            self.senders.load(Ordering::SeqCst) == 0
        }
    }

    /// Sending half; cloneable, sharable across threads.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; cloneable, sharable across threads.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.disconnected_for_recv() {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.disconnected_for_recv() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.disconnected_for_recv() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Error returned by `send` when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn timeout_then_delivery() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            let h = std::thread::spawn(move || tx.send(9).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(9));
            h.join().unwrap();
        }

        #[test]
        fn disconnect_observed() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_clones_share_queue() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            let a = rx.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 3);
        }
    }
}

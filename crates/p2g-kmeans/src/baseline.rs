//! The standalone sequential K-means baseline (Lloyd's algorithm with a
//! fixed iteration break-point, as the paper evaluates it).

use crate::data::{assign_point, inertia, refine_centroid};

/// The per-iteration history of a K-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansTrace {
    /// Centroids per age: `centroids[a]` is the flattened `[k][dim]`
    /// matrix at iteration `a` (age 0 = initial selection).
    pub centroids: Vec<Vec<f64>>,
    /// Assignments per completed iteration.
    pub assignments: Vec<Vec<i32>>,
    /// Inertia per completed iteration.
    pub inertia: Vec<f64>,
}

/// Run `iterations` rounds of assign/refine sequentially. Initial
/// centroids are the first `k` datapoints (deterministic, shared with the
/// P2G `init` kernel).
pub fn kmeans_baseline(
    points: &[f64],
    n: usize,
    dim: usize,
    k: usize,
    iterations: u64,
) -> KmeansTrace {
    assert_eq!(points.len(), n * dim);
    let mut centroids: Vec<Vec<f64>> = vec![points[..k * dim].to_vec()];
    let mut all_assignments = Vec::new();
    let mut inertias = Vec::new();

    for it in 0..iterations as usize {
        let current = &centroids[it];
        let assignments: Vec<i32> = (0..n)
            .map(|x| assign_point(&points[x * dim..(x + 1) * dim], current, k, dim) as i32)
            .collect();
        let mut next = Vec::with_capacity(k * dim);
        for c in 0..k {
            next.extend(refine_centroid(
                points,
                &assignments,
                c,
                dim,
                &current[c * dim..(c + 1) * dim],
            ));
        }
        inertias.push(inertia(points, current, &assignments, dim));
        all_assignments.push(assignments);
        centroids.push(next);
    }
    KmeansTrace {
        centroids,
        assignments: all_assignments,
        inertia: inertias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate_dataset;

    #[test]
    fn trace_shape() {
        let points = generate_dataset(50, 2, 4, 1);
        let t = kmeans_baseline(&points, 50, 2, 4, 5);
        assert_eq!(t.centroids.len(), 6); // ages 0..=5
        assert_eq!(t.assignments.len(), 5);
        assert_eq!(t.inertia.len(), 5);
        assert_eq!(t.centroids[0].len(), 8);
    }

    #[test]
    fn inertia_monotonically_non_increasing() {
        // Lloyd's algorithm never increases the objective.
        let points = generate_dataset(200, 3, 8, 7);
        let t = kmeans_baseline(&points, 200, 3, 8, 8);
        for w in t.inertia.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "inertia increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn converges_on_separated_blobs() {
        // Two blobs far apart, k = 2, initial centroids both inside blob A
        // (first k points): Lloyd's must still separate the blobs.
        let mut points = Vec::new();
        for i in 0..10 {
            points.extend([i as f64 * 0.1, 0.0]); // blob A near origin
        }
        for i in 0..10 {
            points.extend([1000.0 + i as f64 * 0.1, 0.0]); // blob B far away
        }
        let t = kmeans_baseline(&points, 20, 2, 2, 10);
        let last = t.assignments.last().unwrap();
        // All of blob A in one cluster, all of blob B in the other.
        assert!(last[..10].iter().all(|&a| a == last[0]));
        assert!(last[10..].iter().all(|&a| a == last[10]));
        assert_ne!(last[0], last[10]);
        // And the objective collapsed relative to the first iteration.
        assert!(t.inertia.last().unwrap() < &t.inertia[0]);
    }

    #[test]
    fn deterministic() {
        let points = generate_dataset(100, 2, 5, 11);
        let a = kmeans_baseline(&points, 100, 2, 5, 6);
        let b = kmeans_baseline(&points, 100, 2, 5, 6);
        assert_eq!(a, b);
    }
}

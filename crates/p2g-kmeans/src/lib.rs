//! K-means clustering — the paper's iterative workload (Section VII-A).
//!
//! K-means is the paper's stress test for *cyclic* dataflow: the `assign`
//! and `refine` kernels form a loop that converges the centroids, which a
//! DAG-only framework (MapReduce, Dryad) cannot express without external
//! driver loops. Aging turns the loop into an acyclic instance graph: the
//! centroids field gains one age per iteration.
//!
//! Kernel/field layout (ages are iterations):
//!
//! ```text
//! init ──► datapoints(0)[n][dim]      (constant across iterations)
//!      └─► centroids(0)[k][dim]
//! assign(a)[x]: datapoints(0)[x], centroids(a) ──► assignments(a)[x]
//! refine(a)[c]: assignments(a), datapoints(0), centroids(a)[c]
//!                                             ──► centroids(a+1)[c]
//! print(a):     centroids(a) ──► inertia log (ordered)
//! ```
//!
//! The paper runs K=100 over 2000 random points for a fixed 10 iterations
//! ("if we do not define this break-point it is undefined when the
//! algorithm converges"). The fine-grained `assign` kernel — one instance
//! per datapoint per iteration, ~7 µs of work each — is exactly what
//! saturates the serial dependency analyzer and produces Figure 10's
//! scaling collapse beyond ~4 workers.

pub mod baseline;
pub mod data;
pub mod pipeline;

pub use baseline::{kmeans_baseline, KmeansTrace};
pub use data::{assign_point, generate_dataset, refine_centroid, squared_distance};
pub use pipeline::{build_kmeans_program, KmeansConfig, KmeansResult};

//! The P2G K-means program (paper Figure 7).

use std::sync::Arc;

use parking_lot::Mutex;

use p2g_field::{Age, Buffer, Extents, FieldDef, Region, ScalarType, Value};
use p2g_graph::spec::{
    AgeExpr, FetchDecl, IndexSel, IndexVar, KernelId, KernelSpec, ProgramSpec, StoreDecl,
};
use p2g_runtime::{Program, RuntimeError};

use crate::data::{assign_point, generate_dataset, inertia, refine_centroid};

/// Workload parameters. The paper's evaluation uses `n = 2000`, `k = 100`,
/// 10 iterations.
#[derive(Debug, Clone)]
pub struct KmeansConfig {
    pub n: usize,
    pub k: usize,
    pub dim: usize,
    pub iterations: u64,
    pub seed: u64,
    /// Data-granularity chunk for the `assign` kernel — the knob the paper
    /// says would relieve the dependency-analyzer bottleneck.
    pub assign_chunk: usize,
}

impl Default for KmeansConfig {
    fn default() -> KmeansConfig {
        KmeansConfig {
            n: 2000,
            k: 100,
            dim: 2,
            iterations: 10,
            seed: 0xC1C1,
            assign_chunk: 1,
        }
    }
}

/// Captured per-iteration inertia from the `print` kernel.
#[derive(Debug, Default, Clone)]
pub struct KmeansResult {
    log: Arc<Mutex<Vec<f64>>>,
}

impl KmeansResult {
    /// Inertia values in iteration order.
    pub fn inertia_log(&self) -> Vec<f64> {
        self.log.lock().clone()
    }

    fn push(&self, v: f64) {
        self.log.lock().push(v);
    }
}

/// Build the K-means program spec.
pub fn kmeans_spec(n: usize, k: usize, dim: usize) -> ProgramSpec {
    let mut spec = ProgramSpec::new();
    let f_points = spec.add_field(FieldDef::with_extents(
        "datapoints",
        ScalarType::F64,
        Extents::new([n, dim]),
    ));
    let f_centroids = spec.add_field(FieldDef::with_extents(
        "centroids",
        ScalarType::F64,
        Extents::new([k, dim]),
    ));
    let f_assign = spec.add_field(FieldDef::with_extents(
        "assignments",
        ScalarType::I32,
        Extents::new([n]),
    ));

    // init: generate the dataset, select the initial centroids.
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "init".into(),
        index_vars: 0,
        has_age_var: false,
        fetches: vec![],
        stores: vec![
            StoreDecl {
                field: f_points,
                age: AgeExpr::Const(0),
                dims: vec![IndexSel::All, IndexSel::All],
            },
            StoreDecl {
                field: f_centroids,
                age: AgeExpr::Const(0),
                dims: vec![IndexSel::All, IndexSel::All],
            },
        ],
    });

    // assign: one instance per datapoint per iteration.
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "assign".into(),
        index_vars: 1,
        has_age_var: true,
        fetches: vec![
            FetchDecl {
                field: f_points,
                age: AgeExpr::Const(0),
                dims: vec![IndexSel::Var(IndexVar(0)), IndexSel::All],
            },
            FetchDecl {
                field: f_centroids,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All, IndexSel::All],
            },
        ],
        stores: vec![StoreDecl {
            field: f_assign,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
    });

    // refine: one instance per cluster per iteration; closes the aging
    // cycle by storing centroids(a+1).
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "refine".into(),
        index_vars: 1,
        has_age_var: true,
        fetches: vec![
            FetchDecl {
                field: f_centroids,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::Var(IndexVar(0)), IndexSel::All],
            },
            FetchDecl {
                field: f_assign,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            },
            FetchDecl {
                field: f_points,
                age: AgeExpr::Const(0),
                dims: vec![IndexSel::All, IndexSel::All],
            },
        ],
        stores: vec![StoreDecl {
            field: f_centroids,
            age: AgeExpr::Rel(1),
            dims: vec![IndexSel::Var(IndexVar(0)), IndexSel::All],
        }],
    });

    // print: reports per-iteration inertia.
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "print".into(),
        index_vars: 0,
        has_age_var: true,
        fetches: vec![
            FetchDecl {
                field: f_centroids,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All, IndexSel::All],
            },
            FetchDecl {
                field: f_assign,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            },
            FetchDecl {
                field: f_points,
                age: AgeExpr::Const(0),
                dims: vec![IndexSel::All, IndexSel::All],
            },
        ],
        stores: vec![],
    });

    spec
}

/// Build the runnable K-means program. Run with
/// `RunLimits::ages(config.iterations)` to reproduce the paper's fixed
/// break-point.
pub fn build_kmeans_program(
    config: &KmeansConfig,
) -> Result<(Program, KmeansResult), RuntimeError> {
    let spec = kmeans_spec(config.n, config.k, config.dim);
    let mut program = Program::new(spec)?;
    let result = KmeansResult::default();
    let (n, k, dim, seed) = (config.n, config.k, config.dim, config.seed);

    program.body("init", move |ctx| {
        let points = generate_dataset(n, dim, k, seed);
        let initial: Vec<f64> = points[..k * dim].to_vec();
        ctx.store(
            0,
            Buffer::from_vec(points)
                .reshape(Extents::new([n, dim]))
                .expect("n*dim samples"),
        );
        ctx.store(
            1,
            Buffer::from_vec(initial)
                .reshape(Extents::new([k, dim]))
                .expect("k*dim samples"),
        );
        Ok(())
    });

    program.body("assign", move |ctx| {
        let point = ctx.input(0).as_f64().ok_or("datapoints must be f64")?;
        let centroids = ctx.input(1).as_f64().ok_or("centroids must be f64")?;
        let best = assign_point(point, centroids, k, dim) as i32;
        ctx.store_value(0, Value::I32(best));
        Ok(())
    });
    if config.assign_chunk > 1 {
        program.set_chunk_size("assign", config.assign_chunk);
    }

    program.body("refine", move |ctx| {
        let c = ctx.index(0);
        let old = ctx
            .input(0)
            .as_f64()
            .ok_or("centroid must be f64")?
            .to_vec();
        let assignments = ctx.input(1).as_i32().ok_or("assignments must be i32")?;
        let points = ctx.input(2).as_f64().ok_or("datapoints must be f64")?;
        let next = refine_centroid(points, assignments, c, dim, &old);
        ctx.store(
            0,
            Buffer::from_vec(next)
                .reshape(Extents::new([1, dim]))
                .expect("dim samples"),
        );
        Ok(())
    });

    let log = result.clone();
    program.body("print", move |ctx| {
        let centroids = ctx.input(0).as_f64().ok_or("centroids must be f64")?;
        let assignments = ctx.input(1).as_i32().ok_or("assignments must be i32")?;
        let points = ctx.input(2).as_f64().ok_or("datapoints must be f64")?;
        log.push(inertia(points, centroids, assignments, dim));
        Ok(())
    });
    program.set_ordered("print");

    Ok((program, result))
}

/// Extract the centroid history from a finished run's fields.
pub fn centroid_history(
    fields: &p2g_runtime::node::FieldStore,
    k: usize,
    dim: usize,
    ages: u64,
) -> Vec<Vec<f64>> {
    (0..=ages)
        .map_while(|a| {
            fields
                .fetch("centroids", Age(a), &Region::all(2))
                .map(|b| b.as_f64().unwrap().to_vec())
        })
        .inspect(|c| debug_assert_eq!(c.len(), k * dim))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::kmeans_baseline;
    use crate::data::generate_dataset;
    use p2g_runtime::{NodeBuilder, RunLimits};

    fn small_config() -> KmeansConfig {
        KmeansConfig {
            n: 60,
            k: 5,
            dim: 2,
            iterations: 4,
            seed: 99,
            assign_chunk: 1,
        }
    }

    fn run(
        config: &KmeansConfig,
        workers: usize,
    ) -> (Vec<Vec<f64>>, Vec<f64>, p2g_runtime::instrument::RunReport) {
        let (program, result) = build_kmeans_program(config).unwrap();
        let node = NodeBuilder::new(program).workers(workers);
        let (report, fields) = node
            .launch(RunLimits::ages(config.iterations))
            .and_then(|n| n.collect())
            .unwrap();
        let history = centroid_history(&fields, config.k, config.dim, config.iterations);
        (history, result.inertia_log(), report)
    }

    #[test]
    fn spec_validates() {
        kmeans_spec(100, 10, 2).validate().unwrap();
    }

    #[test]
    fn matches_baseline_bitwise() {
        let config = small_config();
        let (history, _, _) = run(&config, 4);
        let points = generate_dataset(config.n, config.dim, config.k, config.seed);
        let trace = kmeans_baseline(&points, config.n, config.dim, config.k, config.iterations);
        // Ages 0..iterations (the final refine stores age `iterations`,
        // whose assign/refine instances are clipped by max_ages).
        assert!(history.len() >= config.iterations as usize);
        for (a, got) in history.iter().enumerate() {
            assert_eq!(got, &trace.centroids[a], "age {a} centroids diverged");
        }
    }

    #[test]
    fn inertia_log_matches_baseline() {
        let config = small_config();
        let (_, log, _) = run(&config, 2);
        let points = generate_dataset(config.n, config.dim, config.k, config.seed);
        let trace = kmeans_baseline(&points, config.n, config.dim, config.k, config.iterations);
        assert_eq!(log.len(), config.iterations as usize);
        for (a, (&got, &want)) in log.iter().zip(&trace.inertia).enumerate() {
            assert_eq!(got, want, "iteration {a} inertia");
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let config = small_config();
        let (h1, l1, _) = run(&config, 1);
        let (h8, l8, _) = run(&config, 8);
        assert_eq!(h1, h8);
        assert_eq!(l1, l8);
    }

    #[test]
    fn instance_counts_match_model() {
        let config = small_config();
        let (_, _, report) = run(&config, 2);
        let ins = &report.instruments;
        assert_eq!(ins.kernel("init").unwrap().instances, 1);
        assert_eq!(
            ins.kernel("assign").unwrap().instances,
            config.n as u64 * config.iterations
        );
        assert_eq!(
            ins.kernel("refine").unwrap().instances,
            config.k as u64 * config.iterations
        );
        assert_eq!(ins.kernel("print").unwrap().instances, config.iterations);
    }

    #[test]
    fn chunked_assign_is_equivalent() {
        let mut config = small_config();
        let (h_ref, _, _) = run(&config, 4);
        config.assign_chunk = 32;
        let (h_chunked, _, report) = run(&config, 4);
        assert_eq!(h_ref, h_chunked);
        let st = report.instruments.kernel("assign").unwrap();
        assert!(st.units < st.instances, "chunking must merge dispatches");
    }
}

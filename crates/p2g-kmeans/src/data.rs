//! Dataset generation and the shared K-means math.
//!
//! The assignment and refinement functions live here so the standalone
//! baseline and the P2G pipeline share one implementation — their outputs
//! are bit-identical, which the tests exploit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `n` points of dimension `dim`, drawn around `k` well-separated
/// blob centers (plus uniform noise), deterministically from `seed`.
/// Returns the flattened row-major point matrix.
pub fn generate_dataset(n: usize, dim: usize, k: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<f64> = (0..k * dim)
        .map(|_| rng.random_range(-100.0..100.0))
        .collect();
    let mut points = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = i % k;
        for d in 0..dim {
            let spread: f64 = rng.random_range(-8.0..8.0);
            points.push(centers[c * dim + d] + spread);
        }
    }
    points
}

/// Squared Euclidean distance between two `dim`-dimensional slices.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// The `assign` kernel's math: index of the nearest centroid. Ties break
/// toward the lower index (deterministic).
pub fn assign_point(point: &[f64], centroids: &[f64], k: usize, dim: usize) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for c in 0..k {
        let d = squared_distance(point, &centroids[c * dim..(c + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// The `refine` kernel's math: the new centroid of cluster `c` — the mean
/// of its members, or the old centroid when the cluster is empty. Summation
/// runs in point-index order so results are bit-deterministic.
pub fn refine_centroid(
    points: &[f64],
    assignments: &[i32],
    c: usize,
    dim: usize,
    old_centroid: &[f64],
) -> Vec<f64> {
    let mut sum = vec![0.0f64; dim];
    let mut count = 0usize;
    for (i, &a) in assignments.iter().enumerate() {
        if a as usize == c {
            for d in 0..dim {
                sum[d] += points[i * dim + d];
            }
            count += 1;
        }
    }
    if count == 0 {
        old_centroid.to_vec()
    } else {
        sum.iter().map(|s| s / count as f64).collect()
    }
}

/// Total inertia (sum of squared point-to-assigned-centroid distances) —
/// what the `print` kernel reports, and K-means' monotone objective.
pub fn inertia(points: &[f64], centroids: &[f64], assignments: &[i32], dim: usize) -> f64 {
    assignments
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            squared_distance(
                &points[i * dim..(i + 1) * dim],
                &centroids[a as usize * dim..(a as usize + 1) * dim],
            )
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_deterministic_and_sized() {
        let a = generate_dataset(100, 2, 5, 42);
        let b = generate_dataset(100, 2, 5, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        let c = generate_dataset(100, 2, 5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn squared_distance_basics() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn assign_picks_nearest() {
        let centroids = [0.0, 0.0, 10.0, 10.0, -5.0, -5.0];
        assert_eq!(assign_point(&[9.0, 9.5], &centroids, 3, 2), 1);
        assert_eq!(assign_point(&[-4.0, -6.0], &centroids, 3, 2), 2);
        assert_eq!(assign_point(&[0.1, -0.1], &centroids, 3, 2), 0);
    }

    #[test]
    fn assign_tie_breaks_low_index() {
        let centroids = [1.0, -1.0]; // 1-D, equidistant from 0
        assert_eq!(assign_point(&[0.0], &centroids, 2, 1), 0);
    }

    #[test]
    fn refine_computes_mean() {
        let points = [0.0, 0.0, 2.0, 4.0, 100.0, 100.0];
        let assignments = [0, 0, 1];
        let c0 = refine_centroid(&points, &assignments, 0, 2, &[9.0, 9.0]);
        assert_eq!(c0, vec![1.0, 2.0]);
        let c1 = refine_centroid(&points, &assignments, 1, 2, &[9.0, 9.0]);
        assert_eq!(c1, vec![100.0, 100.0]);
    }

    #[test]
    fn refine_empty_cluster_keeps_old() {
        let points = [1.0, 2.0];
        let assignments = [0];
        let c = refine_centroid(&points, &assignments, 5, 2, &[7.0, 8.0]);
        assert_eq!(c, vec![7.0, 8.0]);
    }

    #[test]
    fn inertia_zero_at_centroids() {
        let points = [1.0, 1.0, 5.0, 5.0];
        let centroids = [1.0, 1.0, 5.0, 5.0];
        assert_eq!(inertia(&points, &centroids, &[0, 1], 2), 0.0);
        assert!(inertia(&points, &centroids, &[1, 0], 2) > 0.0);
    }
}

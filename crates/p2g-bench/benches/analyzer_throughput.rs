//! The serial dependency analyzer's event throughput — the resource whose
//! saturation produces Figure 10's scaling collapse. Measured
//! synchronously (no threads): events in, dispatch units out.

use std::collections::HashSet;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p2g_core::prelude::*;
use p2g_core::runtime::analyzer::{DependencyAnalyzer, SharedFields};
use p2g_core::runtime::events::{Event, StoreEvent};

/// Build the analyzer plus fields for a given spec.
fn setup(
    spec: ProgramSpec,
    limits: RunLimits,
) -> (DependencyAnalyzer, SharedFields, Arc<ProgramSpec>) {
    let spec = Arc::new(spec);
    let fields: SharedFields = Arc::new(
        spec.fields
            .iter()
            .enumerate()
            .map(|(i, d)| {
                parking_lot_rwlock(p2g_core::field::Field::new(FieldId(i as u32), d.clone()))
            })
            .collect(),
    );
    let options = vec![KernelOptions::default(); spec.kernels.len()];
    let an = DependencyAnalyzer::new(
        spec.clone(),
        options,
        HashSet::new(),
        fields.clone(),
        limits,
    );
    (an, fields, spec)
}

fn parking_lot_rwlock<T>(v: T) -> parking_lot::RwLock<T> {
    parking_lot::RwLock::new(v)
}

/// Apply a store and build its event the way the worker loop does: region
/// and extents captured inside the write lock.
fn store_event(fields: &SharedFields, fid: u32, age: u64, region: &Region, buf: &Buffer) -> Event {
    let mut field = fields[fid as usize].write();
    let o = field.store(Age(age), region, buf).unwrap();
    let extents = field.extents(Age(age)).cloned().unwrap();
    Event::Store(StoreEvent {
        field: FieldId(fid),
        age: Age(age),
        region: region.resolved_against(&extents),
        extents,
        elements: o.stored,
        age_complete: o.age_complete,
        resized: o.resized,
        inline_dispatched: None,
    })
}

/// Same for a one-element store.
fn element_event(fields: &SharedFields, fid: u32, age: u64, idx: &[usize], v: Value) -> Event {
    let mut field = fields[fid as usize].write();
    let o = field.store_element(Age(age), idx, v).unwrap();
    let extents = field.extents(Age(age)).cloned().unwrap();
    let region = Region(idx.iter().map(|&i| DimSel::Index(i)).collect());
    Event::Store(StoreEvent {
        field: FieldId(fid),
        age: Age(age),
        region,
        extents,
        elements: o.stored,
        age_complete: o.age_complete,
        resized: o.resized,
        inline_dispatched: None,
    })
}

fn bench_analyzer(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyzer");
    g.sample_size(20);

    // K-means assign pattern: element stores into `assignments` trigger
    // refine scans — this is the per-event cost that serializes Figure 10.
    g.bench_function("kmeans_assign_event_stream", |b| {
        b.iter_with_setup(
            || {
                let spec = p2g_kmeans::pipeline::kmeans_spec(2000, 100, 2);
                let (mut an, fields, spec) = setup(spec, RunLimits::ages(1));
                an.seed();
                // init stores both fields.
                let pts = Buffer::zeroed(ScalarType::F64, Extents::new([2000, 2]));
                let cts = Buffer::zeroed(ScalarType::F64, Extents::new([100, 2]));
                let e1 = store_event(&fields, 0, 0, &Region::all(2), &pts);
                let e2 = store_event(&fields, 1, 0, &Region::all(2), &cts);
                an.on_event(&e1).unwrap();
                an.on_event(&e2).unwrap();
                let _ = spec;
                (an, fields)
            },
            |(mut an, fields)| {
                // 2000 element stores into assignments(0), one event each.
                let mut units = 0usize;
                for x in 0..2000usize {
                    let ev = element_event(&fields, 2, 0, &[x], Value::I32((x % 100) as i32));
                    units += an.on_event(&ev).unwrap().len();
                }
                black_box(units)
            },
        )
    });

    // MJPEG pattern: one whole-frame store unblocks 1584 DCT instances.
    g.bench_function("mjpeg_frame_event", |b| {
        b.iter_with_setup(
            || {
                let spec = p2g_mjpeg::pipeline::mjpeg_spec(352, 288);
                let (mut an, fields, _) = setup(spec, RunLimits::ages(1));
                an.seed();
                let params = Buffer::from_vec(vec![75i32]);
                let ev = store_event(&fields, 0, 0, &Region::all(1), &params);
                an.on_event(&ev).unwrap();
                (an, fields)
            },
            |(mut an, fields)| {
                let frame = Buffer::zeroed(ScalarType::U8, Extents::new([1584, 64]));
                let ev = store_event(&fields, 1, 0, &Region::all(2), &frame);
                let units = an.on_event(&ev).unwrap();
                black_box(units.len())
            },
        )
    });

    g.finish();
}

criterion_group!(benches, bench_analyzer);
criterion_main!(benches);

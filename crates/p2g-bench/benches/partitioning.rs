//! High-level-scheduler partitioning algorithms (paper refs [14], [17]):
//! greedy growth, Kernighan–Lin refinement and tabu search on kernel
//! graphs of increasing size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p2g_core::graph::static_graph::FinalEdge;
use p2g_core::graph::{kernighan_lin_refine, partition_greedy, tabu_refine, FinalGraph};
use p2g_core::prelude::*;

/// A layered pipeline graph with cross edges — the shape of real
/// multimedia workloads (stages with fan-out per stage).
fn synthetic_graph(stages: usize, width: usize) -> FinalGraph {
    let n = stages * width;
    let mut edges = Vec::new();
    for s in 0..stages - 1 {
        for i in 0..width {
            for j in 0..width {
                let from = KernelId((s * width + i) as u32);
                let to = KernelId(((s + 1) * width + j) as u32);
                let weight = if i == j { 10.0 } else { 1.0 };
                edges.push(FinalEdge {
                    from,
                    to,
                    via: FieldId((s * width + i) as u32),
                    weight,
                });
            }
        }
    }
    FinalGraph {
        kernel_weights: (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
        edges,
    }
}

fn bench_partitioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    g.sample_size(20);

    for (stages, width) in [(4usize, 4usize), (8, 8)] {
        let graph = synthetic_graph(stages, width);
        let label = format!("{}k", stages * width);

        g.bench_function(format!("greedy_{label}"), |b| {
            b.iter(|| black_box(partition_greedy(&graph, 4)))
        });
        g.bench_function(format!("greedy_kl_{label}"), |b| {
            b.iter(|| {
                let p = partition_greedy(&graph, 4);
                black_box(kernighan_lin_refine(&graph, p))
            })
        });
        g.bench_function(format!("greedy_tabu_{label}"), |b| {
            b.iter(|| {
                let p = partition_greedy(&graph, 4);
                black_box(tabu_refine(&graph, p, 50, 4, 7))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);

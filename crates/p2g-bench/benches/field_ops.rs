//! Micro-benchmarks of the field substrate: write-once stores, region
//! fetches, completeness queries — the operations on the dependency
//! analyzer's and workers' hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p2g_core::prelude::*;

fn bench_field_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("field");
    g.sample_size(30);

    g.bench_function("store_element_1d", |b| {
        b.iter_with_setup(
            || {
                Field::new(
                    FieldId(0),
                    FieldDef::with_extents("f", ScalarType::I32, Extents::new([4096])),
                )
            },
            |mut f| {
                for x in 0..4096usize {
                    f.store_element(Age(0), &[x], Value::I32(x as i32)).unwrap();
                }
                black_box(f.written_count(Age(0)))
            },
        )
    });

    g.bench_function("store_block_2d", |b| {
        // The MJPEG pattern: 64-element block stores into a 2-D field.
        b.iter_with_setup(
            || {
                let f = Field::new(
                    FieldId(0),
                    FieldDef::with_extents("f", ScalarType::I16, Extents::new([1584, 64])),
                );
                let block = Buffer::from_vec(vec![7i16; 64])
                    .reshape(Extents::new([1, 64]))
                    .unwrap();
                (f, block)
            },
            |(mut f, block)| {
                for x in 0..1584usize {
                    let region = Region(vec![DimSel::Index(x), DimSel::All]);
                    f.store(Age(0), &region, &block).unwrap();
                }
                black_box(f.is_complete(Age(0)))
            },
        )
    });

    g.bench_function("fetch_block_2d", |b| {
        let mut f = Field::new(
            FieldId(0),
            FieldDef::with_extents("f", ScalarType::I16, Extents::new([1584, 64])),
        );
        let all = Buffer::zeroed(ScalarType::I16, Extents::new([1584, 64]));
        f.store(Age(0), &Region::all(2), &all).unwrap();
        b.iter(|| {
            let region = Region(vec![DimSel::Index(black_box(700)), DimSel::All]);
            black_box(f.fetch(Age(0), &region).unwrap())
        })
    });

    g.bench_function("fetch_whole_field", |b| {
        let mut f = Field::new(
            FieldId(0),
            FieldDef::with_extents("f", ScalarType::F64, Extents::new([2000, 2])),
        );
        let all = Buffer::zeroed(ScalarType::F64, Extents::new([2000, 2]));
        f.store(Age(0), &Region::all(2), &all).unwrap();
        b.iter(|| black_box(f.fetch(Age(0), &Region::all(2)).unwrap()))
    });

    g.bench_function("completeness_query", |b| {
        let mut f = Field::new(
            FieldId(0),
            FieldDef::with_extents("f", ScalarType::I32, Extents::new([2000])),
        );
        for x in 0..2000usize {
            f.store_element(Age(0), &[x], Value::I32(0)).unwrap();
        }
        b.iter(|| black_box(f.is_complete(Age(0))))
    });

    g.bench_function("region_written_row", |b| {
        let mut f = Field::new(
            FieldId(0),
            FieldDef::with_extents("f", ScalarType::U8, Extents::new([1584, 64])),
        );
        let all = Buffer::zeroed(ScalarType::U8, Extents::new([1584, 64]));
        f.store(Age(0), &Region::all(2), &all).unwrap();
        b.iter(|| {
            let region = Region(vec![DimSel::Index(black_box(123)), DimSel::All]);
            black_box(f.region_written(Age(0), &region))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_field_ops);
criterion_main!(benches);

//! DCT ablation: the paper's naive DCT vs the AAN FastDCT it cites as the
//! obvious optimization ("there are versions of DCT that can significantly
//! improve performance, such as FastDCT [2]").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p2g_mjpeg::dct::{dct_quantize_aan, dct_quantize_naive, scaled_quant_table, QUANT_LUMA};

fn test_block() -> [u8; 64] {
    let mut b = [0u8; 64];
    for (i, v) in b.iter_mut().enumerate() {
        *v = ((i * 37 + 11) % 251) as u8;
    }
    b
}

fn bench_dct(c: &mut Criterion) {
    let block = test_block();
    let table = scaled_quant_table(&QUANT_LUMA, 75);

    let mut g = c.benchmark_group("dct");
    g.bench_function("naive_8x8", |b| {
        b.iter(|| black_box(dct_quantize_naive(black_box(&block), &table)))
    });
    g.bench_function("aan_8x8", |b| {
        b.iter(|| black_box(dct_quantize_aan(black_box(&block), &table)))
    });
    // One full CIF frame of luma blocks: the per-frame cost driving the
    // paper's 170 µs/block kernel time.
    g.sample_size(20);
    g.bench_function("naive_cif_frame_luma", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for _ in 0..1584 {
                acc = acc.wrapping_add(dct_quantize_naive(black_box(&block), &table)[0] as i32);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dct);
criterion_main!(benches);

//! Granularity-adaptation ablation (paper Figure 4): the same program run
//! at the four configurations the paper illustrates — fine-grained
//! (Age=1), data-combined (Age=2), task-fused (Age=3), and both (Age=4) —
//! plus chunk-size sweeps on the K-means assign kernel (the fix the paper
//! proposes for its Figure-10 bottleneck).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p2g_core::prelude::*;

fn mul_sum_program() -> Program {
    let spec = p2g_core::graph::spec::mul_sum_example();
    let mut program = Program::new(spec).unwrap();
    program.body("init", |ctx| {
        ctx.store(
            0,
            Buffer::from_vec((0..64).map(|i| i + 10).collect::<Vec<i32>>()),
        );
        Ok(())
    });
    program.body("mul2", |ctx| {
        let input = ctx.input(0);
        let out: Vec<i32> = input
            .as_i32()
            .unwrap()
            .iter()
            .map(|v| v.wrapping_mul(2))
            .collect();
        ctx.store(0, Buffer::from_vec(out));
        Ok(())
    });
    program.body("plus5", |ctx| {
        let input = ctx.input(0);
        let out: Vec<i32> = input
            .as_i32()
            .unwrap()
            .iter()
            .map(|v| v.wrapping_add(5))
            .collect();
        ctx.store(0, Buffer::from_vec(out));
        Ok(())
    });
    program.body("print", |_| Ok(()));
    program
}

fn run(program: Program, workers: usize, ages: u64) {
    NodeBuilder::new(program)
        .workers(workers)
        .launch(RunLimits::ages(ages).with_gc_window(4))
        .and_then(|n| n.wait())
        .expect("run succeeds");
}

fn bench_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure4");
    g.sample_size(15);
    let ages = 20;

    // Age=1: finest granularity — one instance per element.
    g.bench_function("age1_fine_grained", |b| {
        b.iter(|| run(mul_sum_program(), 2, black_box(ages)))
    });

    // Age=2: reduced data parallelism — elements merged per dispatch.
    g.bench_function("age2_data_combined", |b| {
        b.iter(|| {
            let mut p = mul_sum_program();
            p.set_chunk_size("mul2", 64).set_chunk_size("plus5", 64);
            run(p, 2, black_box(ages))
        })
    });

    // Age=3: reduced task parallelism — mul2+plus5 fused.
    g.bench_function("age3_task_fused", |b| {
        b.iter(|| {
            let mut p = mul_sum_program();
            p.fuse("mul2", "plus5").unwrap();
            run(p, 2, black_box(ages))
        })
    });

    // Age=4: both — effectively a sequential loop per age.
    g.bench_function("age4_fused_and_combined", |b| {
        b.iter(|| {
            let mut p = mul_sum_program();
            p.fuse("mul2", "plus5").unwrap();
            p.set_chunk_size("mul2", 64);
            run(p, 2, black_box(ages))
        })
    });
    g.finish();

    // The paper's proposed Figure-10 fix: decrease assign's data
    // granularity so each instance covers more datapoints.
    let mut g = c.benchmark_group("kmeans_assign_chunk");
    g.sample_size(10);
    for chunk in [1usize, 10, 50, 200] {
        g.bench_function(format!("chunk_{chunk}"), |b| {
            b.iter(|| {
                let config = p2g_kmeans::KmeansConfig {
                    n: 1000,
                    k: 50,
                    iterations: 3,
                    assign_chunk: chunk,
                    ..p2g_kmeans::KmeansConfig::default()
                };
                let (program, _) = p2g_kmeans::build_kmeans_program(&config).unwrap();
                run(program, 2, 3)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);

//! Table I — overview of test machines.
//!
//! The paper tabulates its two test machines (4-way Core i7 860, 8-way
//! Opteron 8218). We cannot fabricate other microarchitectures, so this
//! binary reports the host the benchmarks actually run on, in the same
//! format, next to the paper's machines for reference.

fn main() {
    let mut out = String::new();
    out.push_str("Table I — Overview of test machines\n");
    out.push_str("===================================\n\n");
    out.push_str("This reproduction (host machine)\n");
    out.push_str(&p2g_bench::hwinfo());
    out.push('\n');
    out.push_str("Paper's machines (for reference, not available here)\n");
    out.push_str("4-way Intel Core i7:  Core i7 860 2.8 GHz, 4 physical / 8 logical, Nehalem\n");
    out.push_str(
        "8-way AMD Opteron:    Opteron 8218 2.6 GHz, 8 physical / 8 logical, Santa Rosa\n",
    );
    print!("{out}");
    p2g_bench::write_result("table1_machines.txt", &out);
}

//! Multi-tenant session throughput — N concurrent MJPEG streaming
//! sessions on one shared worker pool, the resident-runtime configuration
//! the session API exists for.
//!
//! Each session thread submits frames through the admission window,
//! receives encoded outputs, and samples resident memory; the bench
//! reports aggregate frames/sec, submit→output frame latency, and the
//! flat-memory gauges (peak resident slabs, peak analyzer live ages, GC
//! retirements). Writes a JSON artifact under `results/` for the
//! `BENCH_sessions.json` trajectory.
//!
//! Usage:
//! `cargo run -p p2g-bench --bin session_throughput --release -- \
//!    [--sessions 8] [--frames 1000] [--width 64] [--height 64] \
//!    [--workers N] [--in-flight 8] [--gc-window 8] [--quick] \
//!    [--label after] [--out BENCH_sessions.json]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2g_bench::{arg, has_flag, hwinfo, logical_cpus, write_result};
use p2g_core::prelude::*;
use p2g_mjpeg::{
    build_mjpeg_stream_program, stream_frame_parts, FrameSource, MjpegConfig, SyntheticVideo,
};

struct SessionStats {
    frames: u64,
    dropped: u64,
    peak_resident_ages: usize,
    peak_resident_bytes: usize,
    peak_live_ages: u64,
    gc_ages_collected: u64,
    /// Submit→output latency per frame, nanoseconds.
    lat_ns: Vec<u64>,
}

#[allow(clippy::too_many_arguments)]
fn run_session(
    runtime: &SessionRuntime,
    seed: u64,
    frames: u64,
    width: usize,
    height: usize,
    in_flight: usize,
    gc_window: u64,
) -> SessionStats {
    let src = SyntheticVideo::new(width, height, frames, seed);
    let sink = SessionSink::new();
    let config = MjpegConfig {
        quality: 75,
        fast_dct: true,
        ..MjpegConfig::default()
    };
    let program = build_mjpeg_stream_program(width, height, config, sink.clone())
        .expect("stream program builds");
    let session = runtime
        .open(
            program,
            SessionConfig::new("vlc/write")
                .sink(sink)
                .max_in_flight(in_flight)
                .gc_window(gc_window),
        )
        .expect("session opens");

    let mut submitted_at: Vec<Instant> = Vec::with_capacity(frames as usize);
    let mut lat_ns: Vec<u64> = Vec::with_capacity(frames as usize);
    let mut peak_resident_ages = 0usize;
    let mut peak_resident_bytes = 0usize;
    let mut dropped = 0u64;

    fn note_output(
        out: SessionOutput,
        submitted_at: &[Instant],
        lat_ns: &mut Vec<u64>,
        dropped: &mut u64,
    ) {
        lat_ns.push(submitted_at[out.age as usize].elapsed().as_nanos() as u64);
        if out.dropped() {
            *dropped += 1;
        }
    }
    for n in 0..frames {
        let f = src.frame(n).expect("synthetic frame");
        submitted_at.push(Instant::now());
        session
            .submit(stream_frame_parts(&session, &f))
            .expect("session accepts while open");
        while let Some(out) = session.poll_output() {
            note_output(out, &submitted_at, &mut lat_ns, &mut dropped);
        }
        if n % 32 == 0 {
            peak_resident_ages = peak_resident_ages.max(session.resident_ages());
            peak_resident_bytes = peak_resident_bytes.max(session.bytes_resident());
        }
    }
    while (lat_ns.len() as u64) < frames {
        let out = session
            .recv(Duration::from_secs(60))
            .expect("stream drains within timeout");
        note_output(out, &submitted_at, &mut lat_ns, &mut dropped);
    }
    let report = session
        .finish(Duration::from_secs(60))
        .expect("session finishes cleanly");
    assert_eq!(report.frames_completed, frames);
    SessionStats {
        frames,
        dropped,
        peak_resident_ages,
        peak_resident_bytes,
        peak_live_ages: report.report.instruments.peak_live_ages(),
        gc_ages_collected: report.report.instruments.gc_ages_collected(),
        lat_ns,
    }
}

fn main() {
    let quick = has_flag("--quick");
    let sessions: usize = arg("--sessions", if quick { 4 } else { 8 });
    let frames: u64 = arg("--frames", if quick { 60 } else { 1000 });
    let width: usize = arg("--width", 64);
    let height: usize = arg("--height", 64);
    let workers: usize = arg("--workers", logical_cpus());
    let in_flight: usize = arg("--in-flight", 8);
    let gc_window: u64 = arg("--gc-window", 8);
    let label: String = arg("--label", "after".to_string());
    let out: String = arg("--out", "BENCH_sessions.json".to_string());

    eprintln!(
        "session_throughput: {sessions} sessions x {frames} frames ({width}x{height}) \
         on {workers} workers, window {in_flight}, gc {gc_window}"
    );
    eprintln!("{}", hwinfo());

    let runtime = Arc::new(SessionRuntime::new(workers));
    let t0 = Instant::now();
    let stats: Vec<SessionStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let runtime = &runtime;
                s.spawn(move || {
                    run_session(
                        runtime,
                        0xBEEF + i as u64,
                        frames,
                        width,
                        height,
                        in_flight,
                        gc_window,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();
    runtime.shutdown();

    let frames_total: u64 = stats.iter().map(|s| s.frames).sum();
    let dropped: u64 = stats.iter().map(|s| s.dropped).sum();
    let peak_resident_ages = stats.iter().map(|s| s.peak_resident_ages).max().unwrap_or(0);
    let peak_resident_bytes = stats
        .iter()
        .map(|s| s.peak_resident_bytes)
        .max()
        .unwrap_or(0);
    let peak_live_ages = stats.iter().map(|s| s.peak_live_ages).max().unwrap_or(0);
    let gc_collected: u64 = stats.iter().map(|s| s.gc_ages_collected).sum();
    let fps = frames_total as f64 / elapsed.as_secs_f64();

    let mut lat: Vec<u64> = stats.iter().flat_map(|s| s.lat_ns.iter().copied()).collect();
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[((lat.len() - 1) as f64 * p) as usize]
        }
    };
    let mean = if lat.is_empty() {
        0
    } else {
        lat.iter().sum::<u64>() / lat.len() as u64
    };

    eprintln!(
        "{frames_total} frames in {:.3}s -> {fps:.1} frames/s; latency mean {}us p50 {}us \
         p99 {}us; peak resident slabs {peak_resident_ages} ({peak_resident_bytes} B), \
         peak live ages {peak_live_ages}, {gc_collected} slabs GCed, {dropped} dropped",
        elapsed.as_secs_f64(),
        mean / 1_000,
        pct(0.50) / 1_000,
        pct(0.99) / 1_000,
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"session_throughput\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"shape\": \"mjpeg-stream\", \"sessions\": {sessions}, \
         \"frames_per_session\": {frames}, \"width\": {width}, \"height\": {height}, \
         \"workers\": {workers}, \"in_flight\": {in_flight}, \"gc_window\": {gc_window} }},"
    );
    let _ = writeln!(json, "  \"frames_total\": {frames_total},");
    let _ = writeln!(json, "  \"dropped_frames\": {dropped},");
    let _ = writeln!(json, "  \"elapsed_s\": {:.6},", elapsed.as_secs_f64());
    let _ = writeln!(json, "  \"frames_per_sec\": {fps:.1},");
    let _ = writeln!(json, "  \"peak_resident_ages\": {peak_resident_ages},");
    let _ = writeln!(json, "  \"peak_resident_bytes\": {peak_resident_bytes},");
    let _ = writeln!(json, "  \"peak_live_ages\": {peak_live_ages},");
    let _ = writeln!(json, "  \"gc_ages_collected\": {gc_collected},");
    let _ = writeln!(json, "  \"frame_latency_ns\": {{");
    let _ = writeln!(json, "    \"mean\": {mean},");
    let _ = writeln!(json, "    \"p50\": {},", pct(0.50));
    let _ = writeln!(json, "    \"p99\": {},", pct(0.99));
    let _ = writeln!(json, "    \"max\": {}", lat.last().copied().unwrap_or(0));
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    write_result(&out, &json);
}

//! Multi-tenant session throughput — N concurrent MJPEG streaming
//! sessions on one shared worker pool, the resident-runtime configuration
//! the session API exists for.
//!
//! Each session thread submits frames through the admission window,
//! receives encoded outputs, and samples resident memory; the bench
//! reports aggregate frames/sec, submit→output frame latency, and the
//! flat-memory gauges (peak resident slabs, peak analyzer live ages, GC
//! retirements). Writes a JSON artifact under `results/` for the
//! `BENCH_sessions.json` trajectory.
//!
//! Usage:
//! `cargo run -p p2g-bench --bin session_throughput --release -- \
//!    [--sessions 8] [--frames 1000] [--width 64] [--height 64] \
//!    [--workers N] [--in-flight 8] [--gc-window 8] [--quick] \
//!    [--batch] [--adaptive] [--label after] [--out BENCH_sessions.json]`
//!
//! `--batch` executes multi-instance dispatch units as one batched work
//! unit; `--adaptive` turns on online chunk-size adaptation.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2g_bench::{arg, has_flag, hwinfo, logical_cpus, write_result};
use p2g_core::prelude::*;
use p2g_mjpeg::{
    build_mjpeg_stream_program, stream_frame_parts, FrameSource, MjpegConfig, SyntheticVideo,
};

struct SessionStats {
    frames: u64,
    dropped: u64,
    peak_resident_ages: usize,
    peak_resident_bytes: usize,
    peak_live_ages: u64,
    gc_ages_collected: u64,
    batched_instances: u64,
    granularity_changes: u64,
    /// Submit→output latency per frame, nanoseconds.
    lat_ns: Vec<u64>,
    /// Per-kernel body-latency quantiles (name, p50/p95/p99 ns).
    kernel_lat: Vec<(String, u64, u64, u64)>,
}

#[allow(clippy::too_many_arguments)]
fn run_session(
    runtime: &SessionRuntime,
    seed: u64,
    frames: u64,
    width: usize,
    height: usize,
    in_flight: usize,
    gc_window: u64,
    batch: bool,
    adaptive: bool,
) -> SessionStats {
    let src = SyntheticVideo::new(width, height, frames, seed);
    let sink = SessionSink::new();
    let config = MjpegConfig {
        quality: 75,
        fast_dct: true,
        ..MjpegConfig::default()
    };
    let program = build_mjpeg_stream_program(width, height, config, sink.clone())
        .expect("stream program builds");
    let mut session_config = SessionConfig::new("vlc/write")
        .sink(sink)
        .max_in_flight(in_flight)
        .gc_window(gc_window);
    if batch {
        session_config = session_config.with_batch_exec();
    }
    if adaptive {
        session_config = session_config.with_adaptive(AdaptiveGranularity::default());
    }
    let session = runtime
        .open(program, session_config)
        .expect("session opens");

    let mut submitted_at: Vec<Instant> = Vec::with_capacity(frames as usize);
    let mut lat_ns: Vec<u64> = Vec::with_capacity(frames as usize);
    let mut peak_resident_ages = 0usize;
    let mut peak_resident_bytes = 0usize;
    let mut dropped = 0u64;

    fn note_output(
        out: SessionOutput,
        submitted_at: &[Instant],
        lat_ns: &mut Vec<u64>,
        dropped: &mut u64,
    ) {
        lat_ns.push(submitted_at[out.age as usize].elapsed().as_nanos() as u64);
        if out.dropped() {
            *dropped += 1;
        }
    }
    for n in 0..frames {
        let f = src.frame(n).expect("synthetic frame");
        submitted_at.push(Instant::now());
        session
            .submit(stream_frame_parts(&session, &f))
            .expect("session accepts while open");
        while let Some(out) = session.poll_output() {
            note_output(out, &submitted_at, &mut lat_ns, &mut dropped);
        }
        if n % 32 == 0 {
            peak_resident_ages = peak_resident_ages.max(session.resident_ages());
            peak_resident_bytes = peak_resident_bytes.max(session.bytes_resident());
        }
    }
    while (lat_ns.len() as u64) < frames {
        let out = session
            .recv(Duration::from_secs(60))
            .expect("stream drains within timeout");
        note_output(out, &submitted_at, &mut lat_ns, &mut dropped);
    }
    let report = session
        .finish(Duration::from_secs(60))
        .expect("session finishes cleanly");
    assert_eq!(report.frames_completed, frames);
    let ins = &report.report.instruments;
    let kernel_lat = ins
        .all()
        .iter()
        .filter(|(_, s)| s.instances > 0)
        .map(|(name, _)| {
            let (p50, p95, p99) = ins.latency_quantiles(name).unwrap_or_default();
            (
                name.clone(),
                p50.as_nanos() as u64,
                p95.as_nanos() as u64,
                p99.as_nanos() as u64,
            )
        })
        .collect();
    SessionStats {
        frames,
        dropped,
        peak_resident_ages,
        peak_resident_bytes,
        peak_live_ages: ins.peak_live_ages(),
        gc_ages_collected: ins.gc_ages_collected(),
        batched_instances: ins.batched_instances(),
        granularity_changes: ins.granularity_changes(),
        lat_ns,
        kernel_lat,
    }
}

fn main() {
    let quick = has_flag("--quick");
    let sessions: usize = arg("--sessions", if quick { 4 } else { 8 });
    let frames: u64 = arg("--frames", if quick { 60 } else { 1000 });
    let width: usize = arg("--width", 64);
    let height: usize = arg("--height", 64);
    let workers: usize = arg("--workers", logical_cpus());
    let in_flight: usize = arg("--in-flight", 8);
    let gc_window: u64 = arg("--gc-window", 8);
    let batch = has_flag("--batch");
    let adaptive = has_flag("--adaptive");
    let label: String = arg("--label", "after".to_string());
    let out: String = arg("--out", "BENCH_sessions.json".to_string());

    eprintln!(
        "session_throughput: {sessions} sessions x {frames} frames ({width}x{height}) \
         on {workers} workers, window {in_flight}, gc {gc_window}, batch {batch}, \
         adaptive {adaptive}"
    );
    eprintln!("{}", hwinfo());

    let runtime = Arc::new(SessionRuntime::new(workers));
    let t0 = Instant::now();
    let stats: Vec<SessionStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let runtime = &runtime;
                s.spawn(move || {
                    run_session(
                        runtime,
                        0xBEEF + i as u64,
                        frames,
                        width,
                        height,
                        in_flight,
                        gc_window,
                        batch,
                        adaptive,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();
    runtime.shutdown();

    let frames_total: u64 = stats.iter().map(|s| s.frames).sum();
    let dropped: u64 = stats.iter().map(|s| s.dropped).sum();
    let peak_resident_ages = stats.iter().map(|s| s.peak_resident_ages).max().unwrap_or(0);
    let peak_resident_bytes = stats
        .iter()
        .map(|s| s.peak_resident_bytes)
        .max()
        .unwrap_or(0);
    let peak_live_ages = stats.iter().map(|s| s.peak_live_ages).max().unwrap_or(0);
    let gc_collected: u64 = stats.iter().map(|s| s.gc_ages_collected).sum();
    let batched_instances: u64 = stats.iter().map(|s| s.batched_instances).sum();
    let granularity_changes: u64 = stats.iter().map(|s| s.granularity_changes).sum();
    let fps = frames_total as f64 / elapsed.as_secs_f64();

    // Per-kernel body-latency quantiles: worst (max) across sessions, so
    // the artifact reflects the slowest tenant.
    let mut kernel_lat: Vec<(String, u64, u64, u64)> = Vec::new();
    for s in &stats {
        for (name, p50, p95, p99) in &s.kernel_lat {
            match kernel_lat.iter_mut().find(|(n, ..)| n == name) {
                Some(e) => {
                    e.1 = e.1.max(*p50);
                    e.2 = e.2.max(*p95);
                    e.3 = e.3.max(*p99);
                }
                None => kernel_lat.push((name.clone(), *p50, *p95, *p99)),
            }
        }
    }

    let mut lat: Vec<u64> = stats.iter().flat_map(|s| s.lat_ns.iter().copied()).collect();
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[((lat.len() - 1) as f64 * p) as usize]
        }
    };
    let mean = if lat.is_empty() {
        0
    } else {
        lat.iter().sum::<u64>() / lat.len() as u64
    };

    eprintln!(
        "{frames_total} frames in {:.3}s -> {fps:.1} frames/s; latency mean {}us p50 {}us \
         p99 {}us; peak resident slabs {peak_resident_ages} ({peak_resident_bytes} B), \
         peak live ages {peak_live_ages}, {gc_collected} slabs GCed, {dropped} dropped",
        elapsed.as_secs_f64(),
        mean / 1_000,
        pct(0.50) / 1_000,
        pct(0.99) / 1_000,
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"session_throughput\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"shape\": \"mjpeg-stream\", \"sessions\": {sessions}, \
         \"frames_per_session\": {frames}, \"width\": {width}, \"height\": {height}, \
         \"workers\": {workers}, \"in_flight\": {in_flight}, \"gc_window\": {gc_window}, \
         \"batch\": {batch}, \"adaptive\": {adaptive} }},"
    );
    let _ = writeln!(json, "  \"frames_total\": {frames_total},");
    let _ = writeln!(json, "  \"dropped_frames\": {dropped},");
    let _ = writeln!(json, "  \"elapsed_s\": {:.6},", elapsed.as_secs_f64());
    let _ = writeln!(json, "  \"frames_per_sec\": {fps:.1},");
    let _ = writeln!(json, "  \"peak_resident_ages\": {peak_resident_ages},");
    let _ = writeln!(json, "  \"peak_resident_bytes\": {peak_resident_bytes},");
    let _ = writeln!(json, "  \"peak_live_ages\": {peak_live_ages},");
    let _ = writeln!(json, "  \"gc_ages_collected\": {gc_collected},");
    let _ = writeln!(json, "  \"batched_instances\": {batched_instances},");
    let _ = writeln!(json, "  \"granularity_changes\": {granularity_changes},");
    let _ = writeln!(json, "  \"frame_latency_ns\": {{");
    let _ = writeln!(json, "    \"mean\": {mean},");
    let _ = writeln!(json, "    \"p50\": {},", pct(0.50));
    let _ = writeln!(json, "    \"p99\": {},", pct(0.99));
    let _ = writeln!(json, "    \"max\": {}", lat.last().copied().unwrap_or(0));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"kernel_latency_ns\": {{");
    for (i, (name, p50, p95, p99)) in kernel_lat.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{name}\": {{ \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99} }}{}",
            if i + 1 < kernel_lat.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    write_result(&out, &json);
}

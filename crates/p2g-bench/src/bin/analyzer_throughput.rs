//! Standalone dependency-analyzer throughput — the serial resource whose
//! saturation produces Figure 10's scaling collapse.
//!
//! Drives the analyzer synchronously (no worker threads, no channel) with a
//! K-means-shaped store storm: the `assign` kernel's one-element stores into
//! `assignments(a)[x]` are the fine-grained events that swamp the analyzer
//! in the paper's evaluation, and the `refine` row stores into
//! `centroids(a+1)[c][*]` close the aging cycle. Reports events/sec and
//! per-event dispatch latency, and writes a JSON artifact under `results/`.
//!
//! Usage:
//! `cargo run -p p2g-bench --bin analyzer_throughput --release -- \
//!    [--n 2000] [--k 100] [--ages 10] [--reps 3] [--quick] [--trace] \
//!    [--label after] [--out BENCH_analyzer.json]`
//!
//! `--trace` records a structured trace event per fed store (the same
//! per-store record a tracing-enabled worker performs), measuring the
//! tracing hot-path overhead against an untraced run of the same storm.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use p2g_bench::{arg, has_flag, write_result};
use p2g_core::prelude::*;
use p2g_core::runtime::analyzer::{DependencyAnalyzer, SharedFields};
use p2g_core::runtime::events::Event;
use p2g_core::runtime::trace::{TraceEvent, Tracer};

mod event_shim {
    //! Builds a [`StoreEvent`] from a just-applied store the way the node's
    //! worker loop does — kept in one place so the bench tracks the event
    //! shape.
    use super::*;
    use p2g_core::field::field::StoreOutcome;
    use p2g_core::runtime::events::StoreEvent;

    pub fn store_event(
        fields: &SharedFields,
        fid: u32,
        age: u64,
        region: &Region,
        buffer: &Buffer,
    ) -> StoreEvent {
        let mut field = fields[fid as usize].write();
        let o: StoreOutcome = field.store(Age(age), region, buffer).expect("bench store");
        let extents = field
            .extents(Age(age))
            .cloned()
            .expect("age resident after store");
        StoreEvent {
            field: FieldId(fid),
            age: Age(age),
            region: region.resolved_against(&extents),
            extents,
            elements: o.stored,
            age_complete: o.age_complete,
            resized: o.resized,
        }
    }
}
use event_shim::store_event;

struct StormStats {
    events: usize,
    units: usize,
    instances: usize,
    elapsed_s: f64,
    lat_ns: Vec<u64>,
}

/// One full storm: seed, init stores, then per age `n` one-element
/// assignment stores and `k` centroid row stores, synchronously through the
/// analyzer. Returns per-event latencies and dispatch totals.
fn run_storm(n: usize, k: usize, ages: u64, tracer: Option<&Tracer>) -> StormStats {
    let spec = Arc::new(p2g_kmeans::pipeline::kmeans_spec(n, k, 2));
    let fields: SharedFields = Arc::new(
        spec.fields
            .iter()
            .enumerate()
            .map(|(i, d)| parking_lot::RwLock::new(Field::new(FieldId(i as u32), d.clone())))
            .collect(),
    );
    let options = vec![p2g_core::runtime::KernelOptions::default(); spec.kernels.len()];
    let mut an = DependencyAnalyzer::new(
        spec.clone(),
        options,
        HashSet::new(),
        fields.clone(),
        RunLimits::ages(ages),
    );
    an.seed();

    let mut events = 0usize;
    let mut units = 0usize;
    let mut instances = 0usize;
    let mut lat_ns: Vec<u64> = Vec::with_capacity((n + k + 2) * ages as usize + 2);

    let mut feed = |an: &mut DependencyAnalyzer, ev: Event| {
        let t = Instant::now();
        // With --trace, pay the same per-store record a tracing-enabled
        // worker pays before publishing the event.
        if let Some(tr) = tracer {
            if let Event::Store(se) = &ev {
                tr.record(
                    0,
                    TraceEvent::StoreApplied {
                        kernel: None,
                        field: se.field,
                        age: se.age.0,
                        region: se.region.clone(),
                        elements: se.elements,
                        deduped: 0,
                        age_complete: se.age_complete,
                    },
                );
            }
        }
        let out = an.on_event(&ev).expect("analyzer accepts event");
        lat_ns.push(t.elapsed().as_nanos() as u64);
        events += 1;
        units += out.len();
        instances += out.iter().map(|u| u.len()).sum::<usize>();
    };

    let t0 = Instant::now();

    // init: whole-field datapoints(0) + centroids(0), as the init kernel
    // performs them.
    let pts = Buffer::zeroed(ScalarType::F64, Extents::new([n, 2]));
    let ev = store_event(&fields, 0, 0, &Region::all(2), &pts);
    feed(&mut an, Event::Store(ev));
    let cts = Buffer::zeroed(ScalarType::F64, Extents::new([k, 2]));
    let ev = store_event(&fields, 1, 0, &Region::all(2), &cts);
    feed(&mut an, Event::Store(ev));

    for a in 0..ages {
        // assign(a)[x]: one-element stores into assignments(a) — the
        // fine-grained event storm of Figure 10.
        for x in 0..n {
            let ev = store_event(
                &fields,
                2,
                a,
                &Region::point(&[x]),
                &Buffer::from_vec(vec![(x % k) as i32]),
            );
            feed(&mut an, Event::Store(ev));
        }
        // refine(a)[c]: row stores closing the aging cycle.
        if a + 1 < ages {
            for c in 0..k {
                let row = Buffer::zeroed(ScalarType::F64, Extents::new([1, 2]));
                let region = Region(vec![
                    DimSel::Range { start: c, len: 1 },
                    DimSel::Range { start: 0, len: 2 },
                ]);
                let ev = store_event(&fields, 1, a + 1, &region, &row);
                feed(&mut an, Event::Store(ev));
            }
        }
    }

    StormStats {
        events,
        units,
        instances,
        elapsed_s: t0.elapsed().as_secs_f64(),
        lat_ns,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (dn, dk, dages) = if quick { (200, 20, 3) } else { (2000, 100, 10) };
    let n: usize = arg("--n", dn);
    let k: usize = arg("--k", dk);
    let ages: u64 = arg("--ages", dages);
    let reps: usize = arg("--reps", if quick { 1 } else { 3 });
    let label: String = arg("--label", "current".to_string());
    let out_name: String = arg("--out", "BENCH_analyzer.json".to_string());
    let traced = has_flag("--trace");
    let tracer = traced.then(|| Tracer::new(vec!["bench".into()], 1 << 16));

    eprintln!(
        "analyzer_throughput: n={n} k={k} ages={ages} reps={reps} label={label} trace={traced}"
    );

    let mut best: Option<StormStats> = None;
    for rep in 0..reps.max(1) {
        let s = run_storm(n, k, ages, tracer.as_ref());
        eprintln!(
            "  rep {rep}: {} events in {:.4}s  ({:.0} events/s, {} units, {} instances)",
            s.events,
            s.elapsed_s,
            s.events as f64 / s.elapsed_s,
            s.units,
            s.instances
        );
        if best.as_ref().is_none_or(|b| s.elapsed_s < b.elapsed_s) {
            best = Some(s);
        }
    }
    let mut s = best.expect("at least one rep");
    if std::env::var("LAT_DUMP").is_ok() {
        let mut worst: Vec<(u64, usize)> = s.lat_ns.iter().copied().zip(0..).collect();
        worst.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        for (ns, i) in worst.iter().take(25) {
            eprintln!("  slow event #{i}: {ns} ns");
        }
    }
    let events_per_sec = s.events as f64 / s.elapsed_s;
    s.lat_ns.sort_unstable();
    let mean_ns = s.lat_ns.iter().sum::<u64>() as f64 / s.lat_ns.len().max(1) as f64;
    let p50 = percentile(&s.lat_ns, 0.50);
    let p99 = percentile(&s.lat_ns, 0.99);
    let max = s.lat_ns.last().copied().unwrap_or(0);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"analyzer_throughput\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"shape\": \"kmeans\", \"n\": {n}, \"k\": {k}, \"ages\": {ages} }},"
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"events\": {},", s.events);
    let _ = writeln!(json, "  \"dispatch_units\": {},", s.units);
    let _ = writeln!(json, "  \"dispatched_instances\": {},", s.instances);
    let _ = writeln!(json, "  \"elapsed_s\": {:.6},", s.elapsed_s);
    let _ = writeln!(json, "  \"events_per_sec\": {events_per_sec:.1},");
    let _ = writeln!(json, "  \"dispatch_latency_ns\": {{");
    let _ = writeln!(json, "    \"mean\": {mean_ns:.0},");
    let _ = writeln!(json, "    \"p50\": {p50},");
    let _ = writeln!(json, "    \"p99\": {p99},");
    let _ = writeln!(json, "    \"max\": {max}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    print!("{json}");
    write_result(&out_name, &json);
}

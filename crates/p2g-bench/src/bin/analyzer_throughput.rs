//! Standalone dependency-analyzer throughput — the serial resource whose
//! saturation produces Figure 10's scaling collapse.
//!
//! Drives the analyzer synchronously (no worker threads, no channel) with a
//! K-means-shaped store storm: the `assign` kernel's one-element stores into
//! `assignments(a)[x]` are the fine-grained events that swamp the analyzer
//! in the paper's evaluation, and the `refine` row stores into
//! `centroids(a+1)[c][*]` close the aging cycle. Reports events/sec and
//! per-event dispatch latency, and writes a JSON artifact under `results/`.
//!
//! Usage:
//! `cargo run -p p2g-bench --bin analyzer_throughput --release -- \
//!    [--n 2000] [--k 100] [--ages 10] [--reps 3] [--quick] [--trace] \
//!    [--label after] [--out BENCH_analyzer.json]`
//!
//! `--trace` records a structured trace event per fed store (the same
//! per-store record a tracing-enabled worker performs), measuring the
//! tracing hot-path overhead against an untraced run of the same storm.
//!
//! With `--shards N` the bench switches to the **sharded storm** mode:
//! the store storm is pre-built, `--producers P` threads route it to
//! per-shard channels through the [`ShardPlan`], and N analyzer shard
//! threads drain them concurrently — the parallel analysis pipeline of
//! the sharded runtime, minus worker execution. It sweeps 1 shard vs N
//! shards on the same storm and writes `BENCH_analyzer_shard.json`.

use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2g_bench::{arg, has_flag, write_result};
use p2g_core::prelude::*;
use p2g_core::runtime::analyzer::{DependencyAnalyzer, SharedFields};
use p2g_core::runtime::events::Event;
use p2g_core::runtime::trace::{TraceEvent, Tracer};
use p2g_core::runtime::{ShardGc, ShardPlan};

mod event_shim {
    //! Builds a [`StoreEvent`] from a just-applied store the way the node's
    //! worker loop does — kept in one place so the bench tracks the event
    //! shape.
    use super::*;
    use p2g_core::field::field::StoreOutcome;
    use p2g_core::runtime::events::StoreEvent;

    pub fn store_event(
        fields: &SharedFields,
        fid: u32,
        age: u64,
        region: &Region,
        buffer: &Buffer,
    ) -> StoreEvent {
        let mut field = fields[fid as usize].write();
        let o: StoreOutcome = field.store(Age(age), region, buffer).expect("bench store");
        let extents = field
            .extents(Age(age))
            .cloned()
            .expect("age resident after store");
        StoreEvent {
            field: FieldId(fid),
            age: Age(age),
            region: region.resolved_against(&extents),
            extents,
            elements: o.stored,
            age_complete: o.age_complete,
            resized: o.resized,
            inline_dispatched: None,
        }
    }
}
use event_shim::store_event;

struct StormStats {
    events: usize,
    units: usize,
    instances: usize,
    elapsed_s: f64,
    lat_ns: Vec<u64>,
}

/// One full storm: seed, init stores, then per age `n` one-element
/// assignment stores and `k` centroid row stores, synchronously through the
/// analyzer. Returns per-event latencies and dispatch totals.
fn run_storm(n: usize, k: usize, ages: u64, tracer: Option<&Tracer>, batch: usize) -> StormStats {
    let spec = Arc::new(p2g_kmeans::pipeline::kmeans_spec(n, k, 2));
    let fields: SharedFields = Arc::new(
        spec.fields
            .iter()
            .enumerate()
            .map(|(i, d)| parking_lot::RwLock::new(Field::new(FieldId(i as u32), d.clone())))
            .collect(),
    );
    // `--batch B` chunks runnable instances into B-instance dispatch
    // units, the shape the batched execution path consumes.
    let mut options = vec![p2g_core::runtime::KernelOptions::default(); spec.kernels.len()];
    for o in &mut options {
        o.chunk_size = batch.max(1);
    }
    let mut an = DependencyAnalyzer::new(
        spec.clone(),
        options,
        HashSet::new(),
        fields.clone(),
        RunLimits::ages(ages),
    );
    an.seed();

    let mut events = 0usize;
    let mut units = 0usize;
    let mut instances = 0usize;
    let mut lat_ns: Vec<u64> = Vec::with_capacity((n + k + 2) * ages as usize + 2);

    let mut feed = |an: &mut DependencyAnalyzer, ev: Event| {
        let t = Instant::now();
        // With --trace, pay the same per-store record a tracing-enabled
        // worker pays before publishing the event.
        if let Some(tr) = tracer {
            if let Event::Store(se) = &ev {
                tr.record(
                    0,
                    TraceEvent::StoreApplied {
                        kernel: None,
                        field: se.field,
                        age: se.age.0,
                        region: se.region.clone(),
                        elements: se.elements,
                        deduped: 0,
                        age_complete: se.age_complete,
                    },
                );
            }
        }
        let out = an.on_event(&ev).expect("analyzer accepts event");
        lat_ns.push(t.elapsed().as_nanos() as u64);
        events += 1;
        units += out.len();
        instances += out.iter().map(|u| u.len()).sum::<usize>();
    };

    let t0 = Instant::now();

    // init: whole-field datapoints(0) + centroids(0), as the init kernel
    // performs them.
    let pts = Buffer::zeroed(ScalarType::F64, Extents::new([n, 2]));
    let ev = store_event(&fields, 0, 0, &Region::all(2), &pts);
    feed(&mut an, Event::Store(ev));
    let cts = Buffer::zeroed(ScalarType::F64, Extents::new([k, 2]));
    let ev = store_event(&fields, 1, 0, &Region::all(2), &cts);
    feed(&mut an, Event::Store(ev));

    for a in 0..ages {
        // assign(a)[x]: one-element stores into assignments(a) — the
        // fine-grained event storm of Figure 10.
        for x in 0..n {
            let ev = store_event(
                &fields,
                2,
                a,
                &Region::point(&[x]),
                &Buffer::from_vec(vec![(x % k) as i32]),
            );
            feed(&mut an, Event::Store(ev));
        }
        // refine(a)[c]: row stores closing the aging cycle.
        if a + 1 < ages {
            for c in 0..k {
                let row = Buffer::zeroed(ScalarType::F64, Extents::new([1, 2]));
                let region = Region(vec![
                    DimSel::Range { start: c, len: 1 },
                    DimSel::Range { start: 0, len: 2 },
                ]);
                let ev = store_event(&fields, 1, a + 1, &region, &row);
                feed(&mut an, Event::Store(ev));
            }
        }
    }

    StormStats {
        events,
        units,
        instances,
        elapsed_s: t0.elapsed().as_secs_f64(),
        lat_ns,
    }
}

/// Pre-build (and apply) the full K-means store storm against fresh
/// fields, in generation order — the sharded storm routes these from
/// producer threads instead of feeding them synchronously.
fn build_storm(n: usize, k: usize, ages: u64, fields: &SharedFields) -> Vec<Event> {
    let mut events = Vec::with_capacity((n + k) * ages as usize + 2);
    let pts = Buffer::zeroed(ScalarType::F64, Extents::new([n, 2]));
    events.push(Event::Store(store_event(
        fields,
        0,
        0,
        &Region::all(2),
        &pts,
    )));
    let cts = Buffer::zeroed(ScalarType::F64, Extents::new([k, 2]));
    events.push(Event::Store(store_event(
        fields,
        1,
        0,
        &Region::all(2),
        &cts,
    )));
    for a in 0..ages {
        for x in 0..n {
            events.push(Event::Store(store_event(
                fields,
                2,
                a,
                &Region::point(&[x]),
                &Buffer::from_vec(vec![(x % k) as i32]),
            )));
        }
        if a + 1 < ages {
            for c in 0..k {
                let row = Buffer::zeroed(ScalarType::F64, Extents::new([1, 2]));
                let region = Region(vec![
                    DimSel::Range { start: c, len: 1 },
                    DimSel::Range { start: 0, len: 2 },
                ]);
                events.push(Event::Store(store_event(fields, 1, a + 1, &region, &row)));
            }
        }
    }
    events
}

struct ShardStormStats {
    /// Store events generated by the storm.
    stored_events: usize,
    /// `on_event` calls processed across every shard (a broadcast store
    /// is analyzed once per destination shard).
    deliveries: usize,
    units: usize,
    instances: usize,
    elapsed_s: f64,
    lat_ns: Vec<u64>,
    per_shard: Vec<usize>,
}

/// The sharded storm: `producers` threads route the pre-built storm to
/// per-shard channels via the [`ShardPlan`]; `shards` analyzer threads
/// drain them concurrently, forwarding expected-extents broadcasts to
/// their peers exactly as the node's analyzer loop does. Only the routing
/// and analysis are timed — the stores themselves pre-applied.
fn run_storm_sharded(
    n: usize,
    k: usize,
    ages: u64,
    shards: usize,
    producers: usize,
) -> ShardStormStats {
    let spec = Arc::new(p2g_kmeans::pipeline::kmeans_spec(n, k, 2));
    let fields: SharedFields = Arc::new(
        spec.fields
            .iter()
            .enumerate()
            .map(|(i, d)| parking_lot::RwLock::new(Field::new(FieldId(i as u32), d.clone())))
            .collect(),
    );
    let options = vec![p2g_core::runtime::KernelOptions::default(); spec.kernels.len()];
    let events = Arc::new(build_storm(n, k, ages, &fields));
    let stored_events = events.len();
    let plan = Arc::new(ShardPlan::new(
        &spec,
        &options,
        &HashSet::new(),
        &HashSet::new(),
        shards,
    ));
    let gc = Arc::new(ShardGc::new(spec.kernels.len(), spec.fields.len(), shards));

    let (txs, rxs): (Vec<_>, Vec<_>) = (0..shards)
        .map(|_| crossbeam::channel::unbounded::<Event>())
        .unzip();
    // Deliveries routed but not yet analyzed; producers increment before
    // sending, analyzers decrement after processing (and increment for
    // each peer broadcast they originate).
    let in_flight = Arc::new(AtomicI64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let mut analyzers = Vec::with_capacity(shards);
    for s in 0..shards {
        let mut an = DependencyAnalyzer::new(
            spec.clone(),
            options.clone(),
            HashSet::new(),
            fields.clone(),
            RunLimits::ages(ages),
        );
        if shards > 1 {
            an.set_shard_scope(plan.clone(), s, gc.clone());
        }
        an.seed();
        analyzers.push(an);
    }

    let t0 = Instant::now();
    let mut shard_handles = Vec::with_capacity(shards);
    for (s, (mut an, rx)) in analyzers.into_iter().zip(rxs).enumerate() {
        let txs: Vec<_> = txs.clone();
        let in_flight = in_flight.clone();
        let done = done.clone();
        shard_handles.push(std::thread::spawn(move || {
            let mut lat = Vec::new();
            let mut units = 0usize;
            let mut instances = 0usize;
            let mut processed = 0usize;
            loop {
                match rx.recv_timeout(Duration::from_micros(500)) {
                    Ok(ev) => {
                        let t = Instant::now();
                        let out = an.on_event(&ev).expect("analyzer accepts event");
                        lat.push(t.elapsed().as_nanos() as u64);
                        processed += 1;
                        units += out.len();
                        instances += out.iter().map(|u| u.len()).sum::<usize>();
                        for bc in an.take_outbox() {
                            for (p, tx) in txs.iter().enumerate() {
                                if p != s {
                                    in_flight.fetch_add(1, Ordering::SeqCst);
                                    let _ = tx.send(bc.clone());
                                }
                            }
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        if done.load(Ordering::SeqCst) && in_flight.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            }
            (processed, units, instances, lat)
        }));
    }

    // Producers: round-robin slices of the storm, each event routed to
    // the shards owning an affected consumer instance.
    let producers = producers.max(1);
    let mut producer_handles = Vec::with_capacity(producers);
    for p in 0..producers {
        let events = events.clone();
        let txs: Vec<_> = txs.clone();
        let plan = plan.clone();
        let in_flight = in_flight.clone();
        producer_handles.push(std::thread::spawn(move || {
            for ev in events.iter().skip(p).step_by(producers) {
                let Event::Store(se) = ev else { continue };
                let mut mask = plan.store_dests(se.field, se.age.0);
                let mut s = 0usize;
                while mask != 0 {
                    if mask & 1 != 0 {
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        let _ = txs[s].send(ev.clone());
                    }
                    mask >>= 1;
                    s += 1;
                }
            }
        }));
    }
    for h in producer_handles {
        h.join().expect("producer thread");
    }
    done.store(true, Ordering::SeqCst);
    drop(txs);

    let mut deliveries = 0usize;
    let mut units = 0usize;
    let mut instances = 0usize;
    let mut lat_ns = Vec::new();
    let mut per_shard = Vec::with_capacity(shards);
    for h in shard_handles {
        let (p, u, i, mut lat) = h.join().expect("analyzer shard thread");
        per_shard.push(p);
        deliveries += p;
        units += u;
        instances += i;
        lat_ns.append(&mut lat);
    }
    ShardStormStats {
        stored_events,
        deliveries,
        units,
        instances,
        elapsed_s: t0.elapsed().as_secs_f64(),
        lat_ns,
        per_shard,
    }
}

struct CapacityStats {
    stored_events: usize,
    deliveries: usize,
    units: usize,
    instances: usize,
    /// Per-shard analysis busy time, seconds.
    busy_s: Vec<f64>,
    lat_ns: Vec<u64>,
    per_shard: Vec<usize>,
}

impl CapacityStats {
    /// The storm's critical path: the busiest shard's analysis time — the
    /// wall time a host with one core per shard would observe.
    fn critical_path_s(&self) -> f64 {
        self.busy_s.iter().copied().fold(0.0, f64::max)
    }
}

/// Deterministic per-shard capacity measurement: the storm is routed into
/// per-shard FIFO queues up front, then each shard's analyzer drains its
/// queue to exhaustion on one thread (multi-pass, so cross-shard
/// expectation broadcasts are delivered before the next round), timing
/// each shard separately. `max(busy)` is the storm's critical path when
/// every shard has its own core — the number a `>= shards`-core host
/// observes as wall time — which keeps the measurement meaningful on CI
/// hosts with fewer cores than shards, where timeshared threads cannot
/// show any wall-clock speedup and preemption pollutes per-event timers.
fn run_storm_capacity(n: usize, k: usize, ages: u64, shards: usize) -> CapacityStats {
    let spec = Arc::new(p2g_kmeans::pipeline::kmeans_spec(n, k, 2));
    let fields: SharedFields = Arc::new(
        spec.fields
            .iter()
            .enumerate()
            .map(|(i, d)| parking_lot::RwLock::new(Field::new(FieldId(i as u32), d.clone())))
            .collect(),
    );
    let options = vec![p2g_core::runtime::KernelOptions::default(); spec.kernels.len()];
    let events = build_storm(n, k, ages, &fields);
    let stored_events = events.len();
    let plan = Arc::new(ShardPlan::new(
        &spec,
        &options,
        &HashSet::new(),
        &HashSet::new(),
        shards,
    ));
    let gc = Arc::new(ShardGc::new(spec.kernels.len(), spec.fields.len(), shards));

    let mut analyzers = Vec::with_capacity(shards);
    for s in 0..shards {
        let mut an = DependencyAnalyzer::new(
            spec.clone(),
            options.clone(),
            HashSet::new(),
            fields.clone(),
            RunLimits::ages(ages),
        );
        if shards > 1 {
            an.set_shard_scope(plan.clone(), s, gc.clone());
        }
        an.seed();
        analyzers.push(an);
    }

    let mut queues: Vec<VecDeque<Event>> = (0..shards).map(|_| VecDeque::new()).collect();
    for ev in &events {
        let Event::Store(se) = ev else { continue };
        let mut mask = plan.store_dests(se.field, se.age.0);
        let mut s = 0usize;
        while mask != 0 {
            if mask & 1 != 0 {
                queues[s].push_back(ev.clone());
            }
            mask >>= 1;
            s += 1;
        }
    }

    let mut busy = vec![Duration::ZERO; shards];
    let mut per_shard = vec![0usize; shards];
    let mut lat_ns = Vec::new();
    let mut deliveries = 0usize;
    let mut units = 0usize;
    let mut instances = 0usize;
    loop {
        let mut progressed = false;
        for s in 0..shards {
            while let Some(ev) = queues[s].pop_front() {
                progressed = true;
                let t = Instant::now();
                let out = analyzers[s].on_event(&ev).expect("analyzer accepts event");
                let d = t.elapsed();
                busy[s] += d;
                lat_ns.push(d.as_nanos() as u64);
                per_shard[s] += 1;
                deliveries += 1;
                units += out.len();
                instances += out.iter().map(|u| u.len()).sum::<usize>();
                for bc in analyzers[s].take_outbox() {
                    for (p, q) in queues.iter_mut().enumerate() {
                        if p != s {
                            q.push_back(bc.clone());
                        }
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }

    CapacityStats {
        stored_events,
        deliveries,
        units,
        instances,
        busy_s: busy.iter().map(|d| d.as_secs_f64()).collect(),
        lat_ns,
        per_shard,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The sharded storm sweep: 1 shard (the serial baseline path, scope
/// unset) vs N shards on the same storm shape. Each sweep entry carries
/// two measurements:
///
/// * **capacity** (`elapsed_s` / `events_per_sec`, comparable to the
///   serial bench's schema): the deterministic per-shard drain's critical
///   path — the busiest shard's analysis time, i.e. the wall time of a
///   host with one core per shard.
/// * **threaded wall** (`wall_s` / `wall_events_per_sec`): the live
///   producer→channel→shard-thread pipeline on *this* host, whose
///   `host_cpus` bounds any observable wall speedup.
fn main_sharded(shards: usize, quick: bool) {
    let (dn, dk, dages) = if quick { (200, 20, 8) } else { (2000, 100, 16) };
    let n: usize = arg("--n", dn);
    let k: usize = arg("--k", dk);
    let ages: u64 = arg("--ages", dages);
    let reps: usize = arg("--reps", if quick { 1 } else { 3 });
    let producers: usize = arg("--producers", 1);
    let label: String = arg("--label", "current".to_string());
    let out_name: String = arg("--out", "BENCH_analyzer_shard.json".to_string());
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());

    eprintln!(
        "analyzer_throughput storm: n={n} k={k} ages={ages} reps={reps} \
         producers={producers} shards={shards} host_cpus={host_cpus} label={label}"
    );

    let counts: Vec<usize> = if shards == 1 { vec![1] } else { vec![1, shards] };
    let mut entries = Vec::new();
    for &sc in &counts {
        let mut best_cap: Option<CapacityStats> = None;
        let mut best_wall: Option<ShardStormStats> = None;
        for rep in 0..reps.max(1) {
            let c = run_storm_capacity(n, k, ages, sc);
            let w = run_storm_sharded(n, k, ages, sc, producers);
            // The deterministic drain and the live pipeline must agree on
            // the work they did — same routing, same dispatch decisions.
            assert_eq!(w.stored_events, c.stored_events, "stored-event mismatch");
            assert_eq!(w.units, c.units, "dispatch-unit mismatch");
            assert_eq!(w.instances, c.instances, "instance mismatch");
            assert_eq!(w.lat_ns.len(), c.lat_ns.len(), "delivery-count mismatch");
            assert_eq!(w.per_shard, c.per_shard, "per-shard routing mismatch");
            eprintln!(
                "  shards={sc} rep {rep}: critical path {:.4}s ({:.0} events/s, \
                 per-shard {:?}), threaded wall {:.4}s ({:.0} events/s)",
                c.critical_path_s(),
                c.deliveries as f64 / c.critical_path_s(),
                c.per_shard,
                w.elapsed_s,
                w.deliveries as f64 / w.elapsed_s,
            );
            if best_cap
                .as_ref()
                .is_none_or(|b| c.critical_path_s() < b.critical_path_s())
            {
                best_cap = Some(c);
            }
            if best_wall.as_ref().is_none_or(|b| w.elapsed_s < b.elapsed_s) {
                best_wall = Some(w);
            }
        }
        entries.push((
            best_cap.expect("at least one rep"),
            best_wall.expect("at least one rep"),
        ));
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"analyzer_shard_storm\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"shape\": \"kmeans\", \"n\": {n}, \"k\": {k}, \"ages\": {ages} }},"
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"producers\": {producers},");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"measure\": \"events_per_sec = deliveries / busiest shard's analysis time \
         (critical path, = wall on a host with one core per shard); \
         wall_events_per_sec = threaded pipeline wall on this host\","
    );
    let _ = writeln!(json, "  \"sweep\": [");
    for (i, (sc, (c, w))) in counts.iter().zip(&entries).enumerate() {
        let mut lat = c.lat_ns.clone();
        lat.sort_unstable();
        let mean_ns = lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64;
        let elapsed_s = c.critical_path_s();
        let events_per_sec = c.deliveries as f64 / elapsed_s;
        let busy: Vec<String> = c.busy_s.iter().map(|b| format!("{b:.6}")).collect();
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"shards\": {sc},");
        let _ = writeln!(json, "      \"events\": {},", c.deliveries);
        let _ = writeln!(json, "      \"stored_events\": {},", c.stored_events);
        let _ = writeln!(json, "      \"dispatch_units\": {},", c.units);
        let _ = writeln!(json, "      \"dispatched_instances\": {},", c.instances);
        let _ = writeln!(json, "      \"elapsed_s\": {elapsed_s:.6},");
        let _ = writeln!(json, "      \"events_per_sec\": {events_per_sec:.1},");
        let _ = writeln!(json, "      \"per_shard_events\": {:?},", c.per_shard);
        let _ = writeln!(json, "      \"per_shard_busy_s\": [{}],", busy.join(", "));
        let _ = writeln!(json, "      \"wall_s\": {:.6},", w.elapsed_s);
        let _ = writeln!(
            json,
            "      \"wall_events_per_sec\": {:.1},",
            w.deliveries as f64 / w.elapsed_s
        );
        let _ = writeln!(json, "      \"dispatch_latency_ns\": {{");
        let _ = writeln!(json, "        \"mean\": {mean_ns:.0},");
        let _ = writeln!(json, "        \"p50\": {},", percentile(&lat, 0.50));
        let _ = writeln!(json, "        \"p99\": {},", percentile(&lat, 0.99));
        let _ = writeln!(json, "        \"max\": {}", lat.last().copied().unwrap_or(0));
        let _ = writeln!(json, "      }}");
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let first = &entries.first().expect("sweep nonempty").0;
    let last = &entries.last().expect("sweep nonempty").0;
    let speedup = (last.deliveries as f64 / last.critical_path_s())
        / (first.deliveries as f64 / first.critical_path_s()).max(f64::MIN_POSITIVE);
    let _ = writeln!(json, "  \"speedup\": {speedup:.3}");
    let _ = writeln!(json, "}}");

    print!("{json}");
    write_result(&out_name, &json);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let shards: usize = arg("--shards", 0);
    if shards > 0 {
        main_sharded(shards, quick);
        return;
    }
    let (dn, dk, dages) = if quick { (200, 20, 3) } else { (2000, 100, 10) };
    let n: usize = arg("--n", dn);
    let k: usize = arg("--k", dk);
    let ages: u64 = arg("--ages", dages);
    let reps: usize = arg("--reps", if quick { 1 } else { 3 });
    let label: String = arg("--label", "current".to_string());
    let out_name: String = arg("--out", "BENCH_analyzer.json".to_string());
    let traced = has_flag("--trace");
    let batch: usize = arg("--batch", 1);
    let tracer = traced.then(|| Tracer::new(vec!["bench".into()], 1 << 16));

    eprintln!(
        "analyzer_throughput: n={n} k={k} ages={ages} reps={reps} label={label} trace={traced} \
         batch={batch}"
    );

    let mut best: Option<StormStats> = None;
    for rep in 0..reps.max(1) {
        let s = run_storm(n, k, ages, tracer.as_ref(), batch);
        eprintln!(
            "  rep {rep}: {} events in {:.4}s  ({:.0} events/s, {} units, {} instances)",
            s.events,
            s.elapsed_s,
            s.events as f64 / s.elapsed_s,
            s.units,
            s.instances
        );
        if best.as_ref().is_none_or(|b| s.elapsed_s < b.elapsed_s) {
            best = Some(s);
        }
    }
    let mut s = best.expect("at least one rep");
    if std::env::var("LAT_DUMP").is_ok() {
        let mut worst: Vec<(u64, usize)> = s.lat_ns.iter().copied().zip(0..).collect();
        worst.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        for (ns, i) in worst.iter().take(25) {
            eprintln!("  slow event #{i}: {ns} ns");
        }
    }
    let events_per_sec = s.events as f64 / s.elapsed_s;
    s.lat_ns.sort_unstable();
    let mean_ns = s.lat_ns.iter().sum::<u64>() as f64 / s.lat_ns.len().max(1) as f64;
    let p50 = percentile(&s.lat_ns, 0.50);
    let p99 = percentile(&s.lat_ns, 0.99);
    let max = s.lat_ns.last().copied().unwrap_or(0);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"analyzer_throughput\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"shape\": \"kmeans\", \"n\": {n}, \"k\": {k}, \"ages\": {ages}, \
         \"batch\": {batch} }},"
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"events\": {},", s.events);
    let _ = writeln!(json, "  \"dispatch_units\": {},", s.units);
    let _ = writeln!(json, "  \"dispatched_instances\": {},", s.instances);
    let _ = writeln!(json, "  \"elapsed_s\": {:.6},", s.elapsed_s);
    let _ = writeln!(json, "  \"events_per_sec\": {events_per_sec:.1},");
    let _ = writeln!(json, "  \"dispatch_latency_ns\": {{");
    let _ = writeln!(json, "    \"mean\": {mean_ns:.0},");
    let _ = writeln!(json, "    \"p50\": {p50},");
    let _ = writeln!(json, "    \"p99\": {p99},");
    let _ = writeln!(json, "    \"max\": {max}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    print!("{json}");
    write_result(&out_name, &json);
}

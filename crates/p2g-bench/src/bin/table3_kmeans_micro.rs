//! Table III — micro-benchmark of K-means in P2G: per-kernel instance
//! counts, mean dispatch time and mean kernel time.
//!
//! Paper-scale run:
//! `cargo run -p p2g-bench --bin table3_kmeans_micro --release -- --n 2000 --k 100 --kmeans-iters 10`

use p2g_bench::{arg, hwinfo, write_result};
use p2g_core::prelude::*;
use p2g_kmeans::{build_kmeans_program, KmeansConfig};

fn main() {
    let n: usize = arg("--n", 2000);
    let k: usize = arg("--k", 100);
    let kmeans_iters: u64 = arg("--kmeans-iters", 10);
    let threads: usize = arg("--threads", p2g_bench::logical_cpus());

    let config = KmeansConfig {
        n,
        k,
        iterations: kmeans_iters,
        ..KmeansConfig::default()
    };
    let (program, _) = build_kmeans_program(&config).expect("valid program");
    let node = NodeBuilder::new(program).workers(threads);
    let report = node
        .launch(RunLimits::ages(kmeans_iters))
        .and_then(|n| n.wait())
        .expect("run succeeds");

    let mut out = String::new();
    out.push_str("Table III — Micro-benchmark of K-means in P2G\n");
    out.push_str("==============================================\n");
    out.push_str(&format!(
        "n={n}, K={k}, {kmeans_iters} iterations, {threads} workers\n",
    ));
    out.push_str(&format!("host:\n{}\n", hwinfo()));
    out.push_str("measured:\n");
    out.push_str(&report.instruments.render_table());
    out.push_str(&format!(
        "\nwall time: {:.4} s\n",
        report.wall_time.as_secs_f64()
    ));
    out.push_str("\npaper reference (Opteron):\n");
    out.push_str("Kernel            Instances    Dispatch Time      Kernel Time\n");
    out.push_str("init                      1         58.00 us       9829.00 us\n");
    out.push_str("assign              2024251          4.07 us          6.95 us\n");
    out.push_str("refine                 1000          3.21 us         92.91 us\n");
    out.push_str("print                    11          1.09 us        379.36 us\n");
    out.push_str("\nnotes: our assign count is n x iterations (the paper's 2.0M count\n");
    out.push_str("implies ~1012 effective dispatch rounds for its 2000 points; our\n");
    out.push_str("scheduler dispatches each (point, iteration) instance exactly\n");
    out.push_str("once). The headline property reproduces: assign's dispatch time is\n");
    out.push_str("the same order as its kernel time, which is what saturates the\n");
    out.push_str("serial dependency analyzer in Figure 10.\n");

    print!("{out}");
    write_result("table3_kmeans_micro.txt", &out);
}

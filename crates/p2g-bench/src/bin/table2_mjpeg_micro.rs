//! Table II — micro-benchmark of MJPEG encoding in P2G: per-kernel
//! instance counts, mean dispatch time and mean kernel time.
//!
//! Paper-scale run (CIF, 50 frames, naive DCT):
//! `cargo run -p p2g-bench --bin table2_mjpeg_micro --release -- --frames 50`

use std::sync::Arc;

use p2g_bench::{arg, hwinfo, write_result};
use p2g_core::prelude::*;
use p2g_mjpeg::{build_mjpeg_program, MjpegConfig, SyntheticVideo};

fn main() {
    let frames: u64 = arg("--frames", 12);
    let threads: usize = arg("--threads", p2g_bench::logical_cpus());
    let quality: u8 = arg("--quality", 75);

    let source = Arc::new(SyntheticVideo::foreman_like(frames));
    let config = MjpegConfig {
        quality,
        max_frames: frames,
        fast_dct: false,
        dct_chunk: 1,
        ..MjpegConfig::default()
    };
    let (program, _) = build_mjpeg_program(source, config).expect("valid program");
    let node = NodeBuilder::new(program).workers(threads);
    let report = node
        .launch(RunLimits::ages(frames + 1).with_gc_window(4))
        .and_then(|n| n.wait())
        .expect("run succeeds");

    let mut out = String::new();
    out.push_str("Table II — Micro-benchmark of MJPEG encoding in P2G\n");
    out.push_str("====================================================\n");
    out.push_str(&format!(
        "synthetic Foreman-like CIF, {frames} frames, {threads} workers, naive DCT\n",
    ));
    out.push_str(&format!("host:\n{}\n", hwinfo()));
    out.push_str("measured:\n");
    out.push_str(&report.instruments.render_table());
    out.push_str(&format!(
        "\nwall time: {:.4} s\n",
        report.wall_time.as_secs_f64()
    ));
    out.push_str("\npaper reference (50 frames, Opteron):\n");
    out.push_str("Kernel            Instances    Dispatch Time      Kernel Time\n");
    out.push_str("init                      1         69.00 us         18.00 us\n");
    out.push_str("read/splityuv            51         35.50 us       1641.57 us\n");
    out.push_str("yDCT                  80784          3.07 us        170.30 us\n");
    out.push_str("uDCT                  20196          3.14 us        170.24 us\n");
    out.push_str("vDCT                  20196          3.15 us        170.58 us\n");
    out.push_str("VLC/write                51          3.09 us       2160.71 us\n");
    out.push_str("\nnotes: instance counts scale with --frames (paper: 51 read\n");
    out.push_str("instances = 50 frames + 1 end-of-stream probe; yDCT = 1584\n");
    out.push_str("blocks/frame; uDCT = vDCT = 396 blocks/frame). The paper counts\n");
    out.push_str("yDCT as 1584 x 51; we dispatch DCT instances only for frames that\n");
    out.push_str("exist, giving 1584 x 50 at --frames 50.\n");

    print!("{out}");
    write_result("table2_mjpeg_micro.txt", &out);
}

//! Figure 9 — Motion JPEG workload execution time vs worker threads.
//!
//! Protocol (paper Section VIII): encode the test sequence (Foreman CIF,
//! 50 frames — here the synthetic Foreman-like substitute documented in
//! DESIGN.md), sweeping 1..=8 worker threads with 10 iterations per count,
//! reporting mean ± standard deviation, plus the standalone single-threaded
//! encoder as the baseline reference.
//!
//! Defaults are scaled down so the bench completes quickly on small hosts;
//! reproduce the paper-scale run with:
//! `cargo run -p p2g-bench --bin fig9_mjpeg --release -- --frames 50 --iters 10 --max-threads 8`
//!
//! `--fast-dct` switches the DCT bodies to the SIMD AAN path,
//! `--dct-chunk N` chunks DCT instances, `--batch` executes
//! multi-instance units as one batched work unit, and `--adaptive` lets
//! the runtime adapt chunk sizes online — together the "after"
//! configuration of the kernel-body optimisation.

use std::sync::Arc;
use std::time::Instant;

use p2g_bench::{arg, has_flag, hwinfo, logical_cpus, sweep_workers, write_result};
use p2g_core::prelude::*;
use p2g_mjpeg::{build_mjpeg_program, encode_standalone, MjpegConfig, SyntheticVideo};

fn main() {
    let frames: u64 = arg("--frames", 12);
    let iters: usize = arg("--iters", 5);
    let max_threads: usize = arg("--max-threads", 8);
    let quality: u8 = arg("--quality", 75);
    let fast_dct = has_flag("--fast-dct");
    let dct_chunk: usize = arg("--dct-chunk", 1);
    let batch = has_flag("--batch");
    let adaptive = has_flag("--adaptive");

    let mut out = String::new();
    out.push_str("Figure 9 — Workload execution time for Motion JPEG\n");
    out.push_str("==================================================\n");
    out.push_str(&format!(
        "synthetic Foreman-like CIF (352x288), {frames} frames, quality {quality}, \
         {} DCT, chunk {dct_chunk}, batch {batch}, adaptive {adaptive}\n",
        if fast_dct { "SIMD AAN" } else { "naive" },
    ));
    out.push_str(&format!(
        "host ({} logical CPUs):\n{}\n",
        logical_cpus(),
        hwinfo()
    ));

    // Baseline: the standalone single-threaded encoder (paper: 19 s on the
    // Core i7, 30 s on the Opteron at 50 frames).
    let source = SyntheticVideo::foreman_like(frames);
    let t0 = Instant::now();
    let stream = encode_standalone(&source, quality, frames, fast_dct);
    let baseline = t0.elapsed();
    out.push_str(&format!(
        "standalone single-threaded encoder: {:.4} s ({} bytes)\n\n",
        baseline.as_secs_f64(),
        stream.len()
    ));

    let series = sweep_workers("P2G MJPEG", 1..=max_threads, iters, |threads| {
        let source = Arc::new(SyntheticVideo::foreman_like(frames));
        let config = MjpegConfig {
            quality,
            max_frames: frames,
            fast_dct,
            dct_chunk,
            ..MjpegConfig::default()
        };
        let (program, sink) = build_mjpeg_program(source, config).expect("valid program");
        let node = NodeBuilder::new(program).workers(threads);
        // --trace measures the sweep with structured tracing enabled.
        let mut limits = RunLimits::ages(frames + 1).with_gc_window(4);
        if has_flag("--trace") {
            limits = limits.with_trace();
        }
        if batch {
            limits = limits.with_batch_exec();
        }
        if adaptive {
            limits = limits.with_adaptive(AdaptiveGranularity::default());
        }
        let t0 = Instant::now();
        node.launch(limits).and_then(|n| n.wait()).expect("run succeeds");
        let dt = t0.elapsed();
        assert!(!sink.take().is_empty());
        dt
    });

    out.push_str(&series.render());
    out.push_str("\npaper reference shape: near-linear scaling 1->7 threads; the 8th\n");
    out.push_str("thread shares a core with the dedicated dependency analyzer and\n");
    out.push_str("flattens. On hosts with fewer cores than threads the curve flattens\n");
    out.push_str("at the core count (see EXPERIMENTS.md).\n");

    print!("{out}");
    let out_name: String = arg("--out", "fig9_mjpeg.txt".to_string());
    let csv_name: String = arg("--out-csv", "fig9_mjpeg.csv".to_string());
    write_result(&out_name, &out);
    write_result(&csv_name, &series.to_csv());
}

//! Figure 10 — K-means workload execution time vs worker threads.
//!
//! Protocol (paper Section VIII-B): K = 100 over 2000 random datapoints,
//! 10 iterations (fixed break-point), sweeping 1..=8 worker threads with
//! 10 timing iterations per count. The paper's result: scaling up to ~4
//! workers, then *increasing* runtime — the fine-grained `assign` kernel
//! saturates the serial dependency-analyzer thread.
//!
//! Paper-scale run:
//! `cargo run -p p2g-bench --bin fig10_kmeans --release -- --n 2000 --k 100 --kmeans-iters 10 --iters 10 --max-threads 8`

use std::time::Instant;

use p2g_bench::{arg, has_flag, hwinfo, logical_cpus, sweep_workers, write_result};
use p2g_core::prelude::*;
use p2g_kmeans::{build_kmeans_program, KmeansConfig};

fn main() {
    let n: usize = arg("--n", 2000);
    let k: usize = arg("--k", 100);
    let kmeans_iters: u64 = arg("--kmeans-iters", 10);
    let iters: usize = arg("--iters", 5);
    let max_threads: usize = arg("--max-threads", 8);

    let mut out = String::new();
    out.push_str("Figure 10 — Workload execution time for K-means\n");
    out.push_str("================================================\n");
    out.push_str(&format!(
        "n={n} datapoints, K={k}, {kmeans_iters} algorithm iterations (fixed break-point)\n",
    ));
    out.push_str(&format!(
        "host ({} logical CPUs):\n{}\n",
        logical_cpus(),
        hwinfo()
    ));

    let series = sweep_workers("P2G K-means", 1..=max_threads, iters, |threads| {
        let config = KmeansConfig {
            n,
            k,
            iterations: kmeans_iters,
            ..KmeansConfig::default()
        };
        let (program, _) = build_kmeans_program(&config).expect("valid program");
        let node = NodeBuilder::new(program).workers(threads);
        // --trace measures the sweep with structured tracing enabled.
        let mut limits = RunLimits::ages(kmeans_iters);
        if has_flag("--trace") {
            limits = limits.with_trace();
        }
        let t0 = Instant::now();
        node.launch(limits).and_then(|n| n.wait()).expect("run succeeds");
        t0.elapsed()
    });

    out.push_str(&series.render());
    out.push_str("\npaper reference shape: scales to ~4 workers, then running time\n");
    out.push_str("increases — the serial dependency analyzer becomes the bottleneck\n");
    out.push_str("because assign's dispatch time (~4 us) is comparable to its kernel\n");
    out.push_str("time (~7 us). Decreasing data granularity (--assign-chunk via the\n");
    out.push_str("granularity bench) relieves it, as the paper predicts.\n");

    print!("{out}");
    write_result("fig10_kmeans.txt", &out);
    write_result("fig10_kmeans.csv", &series.to_csv());
}

//! Remote session serving over real loopback TCP — N concurrent
//! `ServeClient` tenants streaming synthetic i420 frames into one
//! in-process serve node at live-source cadences (10–100 ms between
//! frames), the paper's "distributed real-time processing" configuration
//! measured end to end across the wire.
//!
//! Each tenant thread opens its own remote MJPEG session (its own QoS
//! class and weight), paces submits at its cadence, and measures the
//! client-observed submit→output latency per frame; the server's own
//! gauges (pushed `SessionStats`) ride along in the artifact. Writes
//! `results/BENCH_serve_tcp.json`.
//!
//! Usage:
//! `cargo run -p p2g-bench --bin serve_tcp --release -- \
//!    [--tenants 6] [--frames 100] [--width 64] [--height 64] \
//!    [--workers N] [--quick] [--label after] [--out BENCH_serve_tcp.json]`

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use p2g_bench::{arg, has_flag, hwinfo, logical_cpus, write_result};
use p2g_core::dist::{run_serve_node, RemoteStats, RetryConfig, ServeClient, ServeConfig};
use p2g_core::graph::NodeId;
use p2g_core::runtime::Qos;
use p2g_mjpeg::{mjpeg_registry, pack_i420, FrameSource, SyntheticVideo};

/// The per-tenant QoS mix: one realtime stream, a weighted and a plain
/// normal tier, and bulk tenants absorbing the leftover capacity.
fn tenant_qos(i: usize) -> Qos {
    match i % 4 {
        0 => Qos::high(),
        1 => Qos::normal().weight(3),
        2 => Qos::normal(),
        _ => Qos::bulk(),
    }
}

/// Live-source pacing spread across the 10–100 ms band.
fn tenant_cadence(i: usize) -> Duration {
    const MS: [u64; 6] = [10, 20, 33, 50, 75, 100];
    Duration::from_millis(MS[i % MS.len()])
}

struct TenantStats {
    client: u32,
    cadence_ms: u64,
    qos: Qos,
    frames: u64,
    dropped: u64,
    bytes: u64,
    elapsed: Duration,
    /// Client-observed submit→output latency per frame, nanoseconds.
    lat_ns: Vec<u64>,
    /// The server's own view (last pushed SessionStats), if any arrived.
    server: Option<RemoteStats>,
}

fn run_tenant(
    server: SocketAddr,
    i: usize,
    frames: u64,
    width: usize,
    height: usize,
    shutdown: bool,
) -> TenantStats {
    let id = i as u32 + 1;
    let qos = tenant_qos(i);
    let cadence = tenant_cadence(i);
    let client = ServeClient::connect(NodeId(id), server, RetryConfig::default())
        .expect("tenant connects");
    let session = client
        .open(
            "mjpeg",
            &[
                ("width", width as i64),
                ("height", height as i64),
                ("quality", 75),
                ("window", 8),
            ],
            qos,
            Duration::from_secs(30),
        )
        .expect("session opens");

    let video = SyntheticVideo::new(width, height, frames, 0xACE + i as u64);
    let mut submit_at: Vec<Instant> = Vec::with_capacity(frames as usize);
    let mut stats = TenantStats {
        client: id,
        cadence_ms: cadence.as_millis() as u64,
        qos,
        frames: 0,
        dropped: 0,
        bytes: 0,
        elapsed: Duration::ZERO,
        lat_ns: Vec::with_capacity(frames as usize),
        server: None,
    };
    fn take(out: p2g_core::dist::RemoteOutput, submit_at: &[Instant], stats: &mut TenantStats) {
        stats
            .lat_ns
            .push(submit_at[out.age as usize].elapsed().as_nanos() as u64);
        stats.frames += 1;
        match out.payload {
            Some(bytes) => stats.bytes += bytes.len() as u64,
            None => stats.dropped += 1,
        }
    }

    let t0 = Instant::now();
    for n in 0..frames {
        let frame = video.frame(n).expect("synthetic frame");
        let tick = Instant::now();
        submit_at.push(tick);
        session
            .submit(pack_i420(&frame), Duration::from_secs(30))
            .expect("submit admitted");
        // Wait out the cadence *receiving*, not sleeping, so measured
        // latency is delivery time rather than polling quantization.
        loop {
            let left = cadence.saturating_sub(tick.elapsed());
            if left.is_zero() {
                break;
            }
            if let Ok(Some(out)) = session.recv(left) {
                take(out, &submit_at, &mut stats);
            }
        }
    }
    session.close();
    while stats.frames < frames {
        match session.recv(Duration::from_secs(30)) {
            Ok(Some(out)) => take(out, &submit_at, &mut stats),
            other => panic!("tenant {id} lost outputs at {}: {other:?}", stats.frames),
        }
    }
    stats.elapsed = t0.elapsed();
    stats.server = session.stats();
    if shutdown {
        client.shutdown_server();
    }
    client.close();
    stats
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[((sorted.len() - 1) as f64 * p) as usize]
    }
}

fn main() {
    let quick = has_flag("--quick");
    let tenants: usize = arg("--tenants", if quick { 4 } else { 6 });
    let frames: u64 = arg("--frames", if quick { 25 } else { 100 });
    let width: usize = arg("--width", 64);
    let height: usize = arg("--height", 64);
    let workers: usize = arg("--workers", logical_cpus().min(8));
    let label: String = arg("--label", "after".to_string());
    let out: String = arg("--out", "BENCH_serve_tcp.json".to_string());

    eprintln!(
        "serve_tcp: {tenants} remote tenants x {frames} frames ({width}x{height}) \
         over loopback TCP, {workers} workers"
    );
    eprintln!("{}", hwinfo());

    // Reserve a loopback port for the node (bind at 0, reuse the number).
    let port = std::net::TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .expect("reserve port")
        .port();
    let cfg = ServeConfig {
        port,
        workers,
        stats_interval: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let node = std::thread::spawn(move || run_serve_node(mjpeg_registry(), &cfg));
    let server = SocketAddr::from(([127, 0, 0, 1], port));
    // The node announces readiness on stderr; just retry connects until
    // the listener is up (connect_retry covers the race).
    std::thread::sleep(Duration::from_millis(100));

    let t0 = Instant::now();
    let stats: Vec<TenantStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..tenants)
            .map(|i| {
                s.spawn(move || run_tenant(server, i, frames, width, height, false))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();

    // All tenants are done: one throwaway client brings the node down.
    let admin = ServeClient::connect(NodeId(999), server, RetryConfig::default())
        .expect("admin connects");
    admin.shutdown_server();
    admin.close();
    let outcome = node
        .join()
        .expect("serve thread joins")
        .expect("serve node exits cleanly");

    let frames_total: u64 = stats.iter().map(|s| s.frames).sum();
    let dropped: u64 = stats.iter().map(|s| s.dropped).sum();
    let fps = frames_total as f64 / elapsed.as_secs_f64();
    eprintln!(
        "{frames_total} frames from {tenants} tenants in {:.3}s -> {fps:.1} frames/s \
         aggregate ({dropped} dropped; server saw {} sessions, {} orphans)",
        elapsed.as_secs_f64(),
        outcome.sessions_opened,
        outcome.orphans_collected,
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"serve_tcp\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(
        json,
        "  \"hw\": \"{}\",",
        hwinfo().replace('"', "'").split_whitespace().collect::<Vec<_>>().join(" ")
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"shape\": \"remote-mjpeg-serve\", \"tenants\": {tenants}, \
         \"frames_per_tenant\": {frames}, \"width\": {width}, \"height\": {height}, \
         \"workers\": {workers}, \"transport\": \"tcp-loopback\" }},"
    );
    let _ = writeln!(
        json,
        "  \"totals\": {{ \"frames\": {frames_total}, \"dropped\": {dropped}, \
         \"elapsed_s\": {:.6}, \"fps\": {:.3}, \"sessions_opened\": {}, \
         \"sessions_rejected\": {}, \"orphans_collected\": {} }},",
        elapsed.as_secs_f64(),
        fps,
        outcome.sessions_opened,
        outcome.sessions_rejected,
        outcome.orphans_collected,
    );
    let _ = writeln!(json, "  \"tenants\": [");
    for (i, s) in stats.iter().enumerate() {
        let mut lat = s.lat_ns.clone();
        lat.sort_unstable();
        let tenant_fps = s.frames as f64 / s.elapsed.as_secs_f64().max(1e-9);
        let comma = if i + 1 == stats.len() { "" } else { "," };
        let server = match &s.server {
            Some(v) => format!(
                "{{ \"fps_milli\": {}, \"p50_latency_us\": {}, \"p95_latency_us\": {}, \
                 \"resident_ages\": {}, \"resident_bytes\": {} }}",
                v.fps_milli, v.p50_latency_us, v.p95_latency_us, v.resident_ages, v.resident_bytes
            ),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{ \"client\": {}, \"cadence_ms\": {}, \"priority\": {}, \"weight\": {}, \
             \"frames\": {}, \"dropped\": {}, \"bytes\": {}, \"fps\": {:.3}, \
             \"p50_latency_us\": {}, \"p95_latency_us\": {}, \"server\": {server} }}{comma}",
            s.client,
            s.cadence_ms,
            s.qos.class,
            s.qos.weight,
            s.frames,
            s.dropped,
            s.bytes,
            tenant_fps,
            pct(&lat, 0.50) / 1_000,
            pct(&lat, 0.95) / 1_000,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    write_result(&out, &json);
}

//! MJPEG kernel-body microbenchmark: scalar naive DCT vs scalar AAN vs
//! the SIMD AAN path actually used by the pipeline's fast bodies, plus
//! RGB↔YUV conversion throughput. Writes
//! `results/BENCH_mjpeg_kernels.json`.
//!
//! Usage:
//!   mjpeg_kernels [--blocks N] [--reps R] [--quality Q] [--quick]
//!
//! `--quick` shrinks the workload for CI smoke runs.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use p2g_bench::{arg, has_flag, write_result};
use p2g_mjpeg::dct::{
    aan_divisors, dct_quantize_aan_div, dct_quantize_aan_scalar, dct_quantize_naive,
    scaled_quant_table, simd_active, QUANT_LUMA,
};
use p2g_mjpeg::yuv::{rgb_to_yuv, rgb_to_yuv_scalar, yuv_simd_active};

/// One measured DCT variant: mean time per 8x8 block over `reps` passes.
struct Variant {
    name: &'static str,
    ns_per_block: f64,
    blocks_per_sec: f64,
}

fn bench_dct(
    name: &'static str,
    blocks: &[[u8; 64]],
    reps: usize,
    mut f: impl FnMut(&[u8; 64]) -> [i16; 64],
) -> Variant {
    // One warmup pass, then `reps` timed passes over the whole set.
    let mut sink = 0i64;
    for b in blocks {
        sink = sink.wrapping_add(f(b)[0] as i64);
    }
    let start = Instant::now();
    for _ in 0..reps {
        for b in blocks {
            sink = sink.wrapping_add(f(b)[0] as i64);
        }
    }
    let elapsed = start.elapsed();
    black_box(sink);
    let total = (blocks.len() * reps) as f64;
    let ns = elapsed.as_nanos() as f64 / total;
    Variant {
        name,
        ns_per_block: ns,
        blocks_per_sec: 1e9 / ns,
    }
}

fn main() {
    let quick = has_flag("--quick");
    // Default workload: one CIF frame's worth of luma+chroma blocks
    // (1584 + 2 x 396), many passes.
    let blocks: usize = arg("--blocks", if quick { 256 } else { 2376 });
    let reps: usize = arg("--reps", if quick { 20 } else { 400 });
    let quality: u8 = arg("--quality", 75);

    // Deterministic pseudo-random pixel data (xorshift; no external seed).
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let block_data: Vec<[u8; 64]> = (0..blocks)
        .map(|_| std::array::from_fn(|_| (next() & 0xff) as u8))
        .collect();

    let table = scaled_quant_table(&QUANT_LUMA, quality);
    let divisors = aan_divisors(&table);

    // Sanity: the SIMD path must be bit-exact against the scalar oracle
    // before its numbers mean anything.
    for b in &block_data {
        assert_eq!(
            dct_quantize_aan_div(b, &divisors),
            dct_quantize_aan_scalar(b, &table),
            "SIMD AAN diverged from the scalar oracle"
        );
    }

    eprintln!(
        "mjpeg_kernels: {blocks} blocks x {reps} reps, quality {quality}, simd {}",
        simd_active()
    );
    let naive = bench_dct("scalar_naive", &block_data, reps, |b| {
        dct_quantize_naive(b, &table)
    });
    let aan_scalar = bench_dct("scalar_aan", &block_data, reps, |b| {
        dct_quantize_aan_scalar(b, &table)
    });
    let aan_simd = bench_dct("simd_aan", &block_data, reps, |b| {
        dct_quantize_aan_div(b, &divisors)
    });
    for v in [&naive, &aan_scalar, &aan_simd] {
        eprintln!(
            "  {:>12}: {:>8.1} ns/block, {:>12.0} blocks/s",
            v.name, v.ns_per_block, v.blocks_per_sec
        );
    }

    // RGB -> YUV conversion on a CIF-sized frame, same protocol.
    let (w, h) = (352, 288);
    let rgb: Vec<u8> = (0..w * h * 3).map(|_| (next() & 0xff) as u8).collect();
    let yuv_reps = if quick { 5 } else { 100 };
    let _ = black_box(rgb_to_yuv(&rgb, w, h));
    let start = Instant::now();
    for _ in 0..yuv_reps {
        black_box(rgb_to_yuv(&rgb, w, h));
    }
    let yuv_simd_s = start.elapsed().as_secs_f64() / yuv_reps as f64;
    let _ = black_box(rgb_to_yuv_scalar(&rgb, w, h));
    let start = Instant::now();
    for _ in 0..yuv_reps {
        black_box(rgb_to_yuv_scalar(&rgb, w, h));
    }
    let yuv_scalar_s = start.elapsed().as_secs_f64() / yuv_reps as f64;
    let mpix = (w * h) as f64 / 1e6;
    eprintln!(
        "  rgb_to_yuv: scalar {:.1} Mpix/s, simd-path {:.1} Mpix/s (simd {})",
        mpix / yuv_scalar_s,
        mpix / yuv_simd_s,
        yuv_simd_active()
    );

    let speedup_simd_vs_naive = aan_simd.blocks_per_sec / naive.blocks_per_sec;
    let speedup_simd_vs_scalar_aan = aan_simd.blocks_per_sec / aan_scalar.blocks_per_sec;
    eprintln!(
        "  speedup: simd_aan vs scalar_naive {speedup_simd_vs_naive:.2}x, \
         vs scalar_aan {speedup_simd_vs_scalar_aan:.2}x"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"mjpeg_kernels\",");
    let _ = writeln!(json, "  \"label\": \"{}\",", arg("--label", "after".to_string()));
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"blocks\": {blocks}, \"quality\": {quality}, \"yuv_frame\": \"352x288\" }},"
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"simd_active\": {},", simd_active());
    let _ = writeln!(json, "  \"dct\": {{");
    for (i, v) in [&naive, &aan_scalar, &aan_simd].iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"ns_per_block\": {:.1}, \"blocks_per_sec\": {:.0} }}{}",
            v.name,
            v.ns_per_block,
            v.blocks_per_sec,
            if i < 2 { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"speedup\": {{ \"simd_aan_vs_scalar_naive\": {speedup_simd_vs_naive:.2}, \
         \"simd_aan_vs_scalar_aan\": {speedup_simd_vs_scalar_aan:.2} }},"
    );
    let _ = writeln!(
        json,
        "  \"rgb_to_yuv\": {{ \"simd_active\": {}, \"scalar_mpix_per_sec\": {:.1}, \
         \"simd_mpix_per_sec\": {:.1} }}",
        yuv_simd_active(),
        mpix / yuv_scalar_s,
        mpix / yuv_simd_s
    );
    json.push_str("}\n");
    if !quick {
        write_result("BENCH_mjpeg_kernels.json", &json);
    } else {
        eprintln!("(quick mode: result file not written)");
    }
}

//! Shared harness utilities for regenerating the paper's tables and
//! figures: host introspection (Table I), worker-thread sweeps with
//! mean ± standard deviation (Figures 9 and 10), and result persistence
//! under `results/`.

use std::fmt::Write as _;
use std::time::Duration;

/// One measured series: mean and standard deviation per worker count.
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    /// (worker threads, mean seconds, stddev seconds)
    pub points: Vec<(usize, f64, f64)>,
}

impl Series {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}\n{:>8} {:>12} {:>12}\n",
            self.label, "threads", "mean (s)", "std (s)"
        );
        for &(t, mean, std) in &self.points {
            let _ = writeln!(s, "{t:>8} {mean:>12.4} {std:>12.4}");
        }
        s
    }

    /// Render as CSV (threads,mean,std).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("threads,mean_s,std_s\n");
        for &(t, mean, std) in &self.points {
            let _ = writeln!(s, "{t},{mean:.6},{std:.6}");
        }
        s
    }
}

/// Mean and standard deviation of durations, in seconds.
pub fn mean_std(samples: &[Duration]) -> (f64, f64) {
    let xs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Sweep worker thread counts, timing `run(threads)` `iters` times each —
/// the measurement protocol of the paper's Figures 9/10 ("ranging from 1
/// worker thread to 8 worker threads with 10 iterations per worker thread
/// count ... mean running time with standard deviation").
pub fn sweep_workers(
    label: &str,
    threads: impl IntoIterator<Item = usize>,
    iters: usize,
    mut run: impl FnMut(usize) -> Duration,
) -> Series {
    let mut points = Vec::new();
    for t in threads {
        let samples: Vec<Duration> = (0..iters).map(|_| run(t)).collect();
        let (mean, std) = mean_std(&samples);
        eprintln!("  {t} threads: mean {mean:.4}s ± {std:.4}s");
        points.push((t, mean, std));
    }
    Series {
        label: label.to_string(),
        points,
    }
}

/// Host machine description — the role of the paper's Table I.
pub fn hwinfo() -> String {
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
    let model = cpuinfo
        .lines()
        .find(|l| l.starts_with("model name"))
        .and_then(|l| l.split(':').nth(1))
        .unwrap_or("unknown")
        .trim()
        .to_string();
    let physical: std::collections::HashSet<&str> = cpuinfo
        .lines()
        .filter(|l| l.starts_with("core id"))
        .collect();
    let logical = cpuinfo
        .lines()
        .filter(|l| l.starts_with("processor"))
        .count()
        .max(1);
    let meminfo = std::fs::read_to_string("/proc/meminfo").unwrap_or_default();
    let mem_kb: u64 = meminfo
        .lines()
        .find(|l| l.starts_with("MemTotal"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let mut s = String::new();
    let _ = writeln!(s, "CPU-name          {model}");
    let _ = writeln!(s, "Physical cores    {}", physical.len().max(1));
    let _ = writeln!(s, "Logical threads   {logical}");
    let _ = writeln!(s, "Memory            {} MB", mem_kb / 1024);
    s
}

/// Number of logical CPUs.
pub fn logical_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Write a result artifact under `results/` (creating the directory), or
/// verbatim when `name` is an absolute path.
pub fn write_result(name: &str, contents: &str) {
    let path = if std::path::Path::new(name).is_absolute() {
        name.to_string()
    } else {
        std::fs::create_dir_all("results").ok();
        format!("results/{name}")
    };
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// Parse `--flag value` style args with a default.
pub fn arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when a bare `--flag` is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let samples = [Duration::from_secs(1), Duration::from_secs(3)];
        let (mean, std) = mean_std(&samples);
        assert!((mean - 2.0).abs() < 1e-9);
        assert!((std - 1.0).abs() < 1e-9);
    }

    #[test]
    fn series_rendering() {
        let s = Series {
            label: "test".into(),
            points: vec![(1, 2.0, 0.1), (2, 1.0, 0.05)],
        };
        assert!(s.render().contains("threads"));
        assert!(s.to_csv().starts_with("threads,mean_s,std_s\n1,2.0"));
    }

    #[test]
    fn hwinfo_has_fields() {
        let info = hwinfo();
        assert!(info.contains("CPU-name"));
        assert!(info.contains("Logical threads"));
    }

    #[test]
    fn sweep_collects_all_points() {
        let s = sweep_workers("x", [1, 2], 3, |_| Duration::from_millis(1));
        assert_eq!(s.points.len(), 2);
        assert!(s.points.iter().all(|&(_, m, _)| m > 0.0));
    }
}

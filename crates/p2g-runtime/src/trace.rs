//! Structured run tracing: typed execution events in per-thread ring
//! buffers, merged into a [`RunTrace`] at the end of the run.
//!
//! The `Instruments` layer keeps lossy aggregate counters; this module
//! keeps the *events themselves* — per-instance dispatch, body start/end,
//! store application, retries, deadline misses, poisoning and analyzer
//! batching — with monotonic timestamps and (kernel, age, index) identity.
//! That makes orderings first-class data: the [`crate::trace_check`]
//! module asserts dependency-before-dispatch, write-once and retry-budget
//! invariants directly on the trace, and the export methods feed
//! `chrome://tracing` and JSONL tooling.
//!
//! # Overhead
//!
//! Recording is gated twice: a runtime `Option` (tracing off costs one
//! branch per would-be event) and per-thread ring buffers behind
//! uncontended mutexes (each runtime thread — worker, analyzer, watchdog —
//! writes only its own buffer; the locks are touched by another thread
//! only at capture time). Buffers are bounded: when a ring is full the
//! oldest event is dropped and counted, so the hot path never allocates
//! without bound. Enable tracing per run with
//! [`crate::RunLimits::with_trace`] or build with `--features trace` to
//! default it on everywhere.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use p2g_field::{Age, DimSel, FieldId, Region};
use p2g_graph::{KernelId, NodeId, ProgramSpec};

/// Tracing configuration for one run.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Per-thread ring-buffer capacity in events. When a buffer fills, the
    /// oldest events are dropped (and counted in [`RunTrace::dropped`]);
    /// [`crate::trace_check`] refuses to certify a lossy trace.
    pub capacity: usize,
}

impl Default for TraceOptions {
    fn default() -> TraceOptions {
        TraceOptions { capacity: 1 << 16 }
    }
}

/// One structured runtime event.
///
/// Ages are carried as raw `u64` and regions pre-resolved (no extent-
/// relative `All` selectors) so every event is meaningful on its own,
/// independent of later field growth.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The dependency analyzer dispatched one kernel instance (pushed as
    /// part of a ready unit). Recorded per instance, not per unit.
    InstanceDispatched {
        kernel: KernelId,
        age: u64,
        indices: Vec<usize>,
    },
    /// A kernel body began executing on a worker.
    BodyStart {
        kernel: KernelId,
        age: u64,
        indices: Vec<usize>,
        attempt: u32,
    },
    /// The kernel body returned (`ok`) or failed (`Err`/contained panic).
    BodyEnd {
        kernel: KernelId,
        age: u64,
        indices: Vec<usize>,
        attempt: u32,
        ok: bool,
    },
    /// A store was applied to a field. `kernel` is `None` for stores
    /// injected from another node (distributed mode); `region` is resolved
    /// against the extents at store time. `elements` counts freshly
    /// written elements, `deduped` the ones absorbed by write-once
    /// deduplication.
    StoreApplied {
        kernel: Option<KernelId>,
        field: FieldId,
        age: u64,
        region: Region,
        elements: usize,
        deduped: usize,
        age_complete: bool,
    },
    /// Failed instances were batched into one delayed retry unit.
    /// `attempt` is the attempt number the retry will run as (1-based);
    /// `budget` the kernel's configured retry budget.
    RetryScheduled {
        kernel: KernelId,
        age: u64,
        instances: usize,
        attempt: u32,
        budget: u32,
    },
    /// The watchdog flagged an instance past its soft deadline.
    DeadlineMiss {
        kernel: KernelId,
        age: u64,
        indices: Vec<usize>,
    },
    /// An instance was skipped by poison propagation.
    Poisoned {
        kernel: KernelId,
        age: u64,
        indices: Vec<usize>,
    },
    /// The analyzer drained one event batch from its channel.
    AnalyzerBatch { events: usize },
    /// Distributed: a store forward was sent to another node.
    Send {
        from: NodeId,
        to: NodeId,
        field: FieldId,
        age: u64,
    },
    /// Distributed: a store forward was received and injected.
    Recv {
        node: NodeId,
        field: FieldId,
        age: u64,
    },
    /// Distributed: the coordinator declared a node dead.
    NodeDeath { node: NodeId },
    /// Distributed: the coordinator re-planned the kernel assignment over
    /// the surviving nodes.
    Replan { survivors: Vec<NodeId> },
    /// Age GC retired every `(field, age)` slab of `field` below `below`
    /// (`collected` of them were actually resident). Streaming runs emit
    /// one per GC-limit advance; the no-store-after-retire trace invariant
    /// checks stores against these.
    AgeRetired {
        field: FieldId,
        below: u64,
        collected: usize,
    },
    /// The adaptive-granularity controller changed a kernel's chunk size
    /// (always by a factor of two, `from` to `to`). `overhead_ppm` is the
    /// dispatch-overhead fraction observed over the decision interval in
    /// parts per million; `p95_ns` the kernel's p95 per-instance body
    /// latency at decision time.
    GranularityChange {
        kernel: KernelId,
        from: usize,
        to: usize,
        overhead_ppm: u64,
        p95_ns: u64,
    },
}

impl TraceEvent {
    /// Stable name of the event kind (the `type` field of the JSONL
    /// export, and the event-schema vocabulary CI validates against).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::InstanceDispatched { .. } => "InstanceDispatched",
            TraceEvent::BodyStart { .. } => "BodyStart",
            TraceEvent::BodyEnd { .. } => "BodyEnd",
            TraceEvent::StoreApplied { .. } => "StoreApplied",
            TraceEvent::RetryScheduled { .. } => "RetryScheduled",
            TraceEvent::DeadlineMiss { .. } => "DeadlineMiss",
            TraceEvent::Poisoned { .. } => "Poisoned",
            TraceEvent::AnalyzerBatch { .. } => "AnalyzerBatch",
            TraceEvent::Send { .. } => "Send",
            TraceEvent::Recv { .. } => "Recv",
            TraceEvent::NodeDeath { .. } => "NodeDeath",
            TraceEvent::Replan { .. } => "Replan",
            TraceEvent::AgeRetired { .. } => "AgeRetired",
            TraceEvent::GranularityChange { .. } => "GranularityChange",
        }
    }

    /// Every kind name, in declaration order — the event schema.
    pub const KINDS: [&'static str; 14] = [
        "InstanceDispatched",
        "BodyStart",
        "BodyEnd",
        "StoreApplied",
        "RetryScheduled",
        "DeadlineMiss",
        "Poisoned",
        "AnalyzerBatch",
        "Send",
        "Recv",
        "NodeDeath",
        "Replan",
        "AgeRetired",
        "GranularityChange",
    ];
}

/// One recorded event: monotonic timestamp (nanoseconds since the
/// tracer's epoch), the recording thread's buffer id, and the event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub ts_ns: u64,
    pub tid: u32,
    pub event: TraceEvent,
}

struct Ring {
    buf: VecDeque<(u64, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ts: u64, event: TraceEvent) {
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((ts, event));
    }
}

/// The per-run event collector: one bounded ring buffer per runtime
/// thread, each behind its own (uncontended) mutex, sharing a monotonic
/// epoch so timestamps are comparable across threads.
pub struct Tracer {
    epoch: Instant,
    buffers: Vec<Mutex<Ring>>,
    labels: Vec<String>,
}

impl Tracer {
    /// A tracer with one buffer per label (buffer id = label index).
    pub fn new(labels: Vec<String>, capacity: usize) -> Tracer {
        let capacity = capacity.max(16);
        let buffers = labels
            .iter()
            .map(|_| {
                Mutex::new(Ring {
                    buf: VecDeque::new(),
                    capacity,
                    dropped: 0,
                })
            })
            .collect();
        Tracer {
            epoch: Instant::now(),
            buffers,
            labels,
        }
    }

    /// Nanoseconds since this tracer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record an event into buffer `tid`. Out-of-range ids fall back to
    /// buffer 0 so a mis-wired thread never panics the runtime.
    #[inline]
    pub fn record(&self, tid: u32, event: TraceEvent) {
        let ts = self.now_ns();
        let idx = (tid as usize).min(self.buffers.len().saturating_sub(1));
        self.buffers[idx].lock().push(ts, event);
    }

    /// Number of per-thread buffers.
    pub fn threads(&self) -> usize {
        self.buffers.len()
    }

    /// Merge every buffer into a time-sorted [`RunTrace`]. Intended for
    /// the end of a run, after the recording threads have quiesced.
    pub fn capture(&self, spec: Arc<ProgramSpec>) -> RunTrace {
        let mut records = Vec::new();
        let mut dropped = 0u64;
        for (tid, lock) in self.buffers.iter().enumerate() {
            let g = lock.lock();
            dropped += g.dropped;
            records.extend(g.buf.iter().map(|(ts, ev)| TraceRecord {
                ts_ns: *ts,
                tid: tid as u32,
                event: ev.clone(),
            }));
        }
        // Stores sort before other events at equal timestamps: a store is
        // recorded before the analyzer can observe it, so on a tie the
        // causal order is store-first. (Ties are possible on coarse
        // clocks.)
        records.sort_by_key(|r| {
            let rank = match r.event {
                TraceEvent::StoreApplied { .. } => 0u8,
                _ => 1,
            };
            (r.ts_ns, rank, r.tid)
        });
        RunTrace {
            spec,
            records,
            dropped,
            thread_labels: self.labels.clone(),
        }
    }
}

/// The merged, time-sorted event log of one run, attached to
/// [`crate::RunReport`] when tracing is enabled. Carries the program spec
/// so invariant checks can resolve kernel fetch/store declarations.
#[derive(Clone)]
pub struct RunTrace {
    spec: Arc<ProgramSpec>,
    /// All records, sorted by timestamp.
    pub records: Vec<TraceRecord>,
    /// Events lost to ring-buffer overflow across all threads. Nonzero
    /// means the trace is a suffix, not the whole run.
    pub dropped: u64,
    /// Buffer labels (thread names), indexed by `TraceRecord::tid`.
    pub thread_labels: Vec<String>,
}

impl std::fmt::Debug for RunTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunTrace")
            .field("records", &self.records.len())
            .field("dropped", &self.dropped)
            .field("threads", &self.thread_labels)
            .finish()
    }
}

impl RunTrace {
    /// Build a trace directly from parts (dist-level traces, tests).
    pub fn from_records(
        spec: Arc<ProgramSpec>,
        records: Vec<TraceRecord>,
        dropped: u64,
        thread_labels: Vec<String>,
    ) -> RunTrace {
        RunTrace {
            spec,
            records,
            dropped,
            thread_labels,
        }
    }

    /// The program spec the traced run executed.
    pub fn spec(&self) -> &ProgramSpec {
        &self.spec
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Event counts per kind name.
    pub fn counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut m = std::collections::BTreeMap::new();
        for r in &self.records {
            *m.entry(r.event.kind()).or_insert(0) += 1;
        }
        m
    }

    /// Records of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.event.kind() == kind)
    }

    fn kernel_name(&self, k: KernelId) -> &str {
        &self.spec.kernel(k).name
    }

    /// Serialize as JSON Lines: one object per record with `ts_ns`, `tid`
    /// and `type` fields plus event-specific fields.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            self.write_jsonl_record(&mut out, r);
            out.push('\n');
        }
        out
    }

    fn write_jsonl_record(&self, out: &mut String, r: &TraceRecord) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"ts_ns\":{},\"tid\":{},\"type\":\"{}\"",
            r.ts_ns,
            r.tid,
            r.event.kind()
        );
        match &r.event {
            TraceEvent::InstanceDispatched {
                kernel,
                age,
                indices,
            }
            | TraceEvent::DeadlineMiss {
                kernel,
                age,
                indices,
            }
            | TraceEvent::Poisoned {
                kernel,
                age,
                indices,
            } => {
                let _ = write!(
                    out,
                    ",\"kernel\":\"{}\",\"age\":{},\"indices\":{}",
                    json_escape(self.kernel_name(*kernel)),
                    age,
                    json_usize_array(indices)
                );
            }
            TraceEvent::BodyStart {
                kernel,
                age,
                indices,
                attempt,
            } => {
                let _ = write!(
                    out,
                    ",\"kernel\":\"{}\",\"age\":{},\"indices\":{},\"attempt\":{}",
                    json_escape(self.kernel_name(*kernel)),
                    age,
                    json_usize_array(indices),
                    attempt
                );
            }
            TraceEvent::BodyEnd {
                kernel,
                age,
                indices,
                attempt,
                ok,
            } => {
                let _ = write!(
                    out,
                    ",\"kernel\":\"{}\",\"age\":{},\"indices\":{},\"attempt\":{},\"ok\":{}",
                    json_escape(self.kernel_name(*kernel)),
                    age,
                    json_usize_array(indices),
                    attempt,
                    ok
                );
            }
            TraceEvent::StoreApplied {
                kernel,
                field,
                age,
                region,
                elements,
                deduped,
                age_complete,
            } => {
                match kernel {
                    Some(k) => {
                        let _ = write!(
                            out,
                            ",\"kernel\":\"{}\"",
                            json_escape(self.kernel_name(*k))
                        );
                    }
                    None => out.push_str(",\"kernel\":null"),
                }
                let fname = self
                    .spec
                    .fields
                    .get(field.idx())
                    .map(|f| f.name.as_str())
                    .unwrap_or("?");
                let _ = write!(
                    out,
                    ",\"field\":\"{}\",\"age\":{},\"region\":\"{}\",\"elements\":{},\"deduped\":{},\"age_complete\":{}",
                    json_escape(fname),
                    age,
                    region,
                    elements,
                    deduped,
                    age_complete
                );
            }
            TraceEvent::RetryScheduled {
                kernel,
                age,
                instances,
                attempt,
                budget,
            } => {
                let _ = write!(
                    out,
                    ",\"kernel\":\"{}\",\"age\":{},\"instances\":{},\"attempt\":{},\"budget\":{}",
                    json_escape(self.kernel_name(*kernel)),
                    age,
                    instances,
                    attempt,
                    budget
                );
            }
            TraceEvent::AnalyzerBatch { events } => {
                let _ = write!(out, ",\"events\":{events}");
            }
            TraceEvent::Send {
                from,
                to,
                field,
                age,
            } => {
                let _ = write!(
                    out,
                    ",\"from\":{},\"to\":{},\"field\":{},\"age\":{}",
                    from.0, to.0, field.0, age
                );
            }
            TraceEvent::Recv { node, field, age } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"field\":{},\"age\":{}",
                    node.0, field.0, age
                );
            }
            TraceEvent::NodeDeath { node } => {
                let _ = write!(out, ",\"node\":{}", node.0);
            }
            TraceEvent::Replan { survivors } => {
                let _ = write!(
                    out,
                    ",\"survivors\":{}",
                    json_usize_array(&survivors.iter().map(|n| n.0 as usize).collect::<Vec<_>>())
                );
            }
            TraceEvent::AgeRetired {
                field,
                below,
                collected,
            } => {
                let fname = self
                    .spec
                    .fields
                    .get(field.idx())
                    .map(|f| f.name.as_str())
                    .unwrap_or("?");
                let _ = write!(
                    out,
                    ",\"field\":\"{}\",\"below\":{},\"collected\":{}",
                    json_escape(fname),
                    below,
                    collected
                );
            }
            TraceEvent::GranularityChange {
                kernel,
                from,
                to,
                overhead_ppm,
                p95_ns,
            } => {
                let _ = write!(
                    out,
                    ",\"kernel\":\"{}\",\"from\":{},\"to\":{},\"overhead_ppm\":{},\"p95_ns\":{}",
                    json_escape(self.kernel_name(*kernel)),
                    from,
                    to,
                    overhead_ppm,
                    p95_ns
                );
            }
        }
        out.push('}');
    }

    /// Serialize in the Chrome trace-event format (open the output in
    /// `chrome://tracing` or Perfetto). Body executions become duration
    /// (`B`/`E`) pairs; everything else becomes instant events.
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(self.records.len() * 128 + 256);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (tid, label) in self.thread_labels.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                tid,
                json_escape(label)
            );
        }
        for r in &self.records {
            let ts_us = r.ts_ns as f64 / 1000.0;
            let (name, ph): (String, &str) = match &r.event {
                TraceEvent::BodyStart {
                    kernel,
                    age,
                    indices,
                    ..
                } => (
                    format!(
                        "{}@{}{}",
                        self.kernel_name(*kernel),
                        age,
                        fmt_indices(indices)
                    ),
                    "B",
                ),
                TraceEvent::BodyEnd {
                    kernel,
                    age,
                    indices,
                    ..
                } => (
                    format!(
                        "{}@{}{}",
                        self.kernel_name(*kernel),
                        age,
                        fmt_indices(indices)
                    ),
                    "E",
                ),
                other => (other.kind().to_string(), "i"),
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":0,\"tid\":{}",
                json_escape(&name),
                r.event.kind(),
                ph,
                ts_us,
                r.tid
            );
            if ph == "i" {
                out.push_str(",\"s\":\"t\"");
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

fn fmt_indices(indices: &[usize]) -> String {
    let mut s = String::new();
    for i in indices {
        s.push_str(&format!("[{i}]"));
    }
    s
}

fn json_usize_array(v: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&x.to_string());
    }
    s.push(']');
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Enumerate the multi-indices of a resolved region (no `All` selectors).
/// Used by the trace invariants; returns `None` when the region still
/// contains an extent-relative selector.
pub(crate) fn region_coords(region: &Region) -> Option<Vec<Vec<usize>>> {
    let mut spans = Vec::with_capacity(region.0.len());
    for sel in &region.0 {
        match *sel {
            DimSel::Index(i) => spans.push((i, 1usize)),
            DimSel::Range { start, len } => spans.push((start, len)),
            DimSel::All => return None,
        }
    }
    let total: usize = spans.iter().map(|&(_, len)| len).product();
    let mut out = Vec::with_capacity(total);
    let mut cursor: Vec<usize> = spans.iter().map(|&(s, _)| s).collect();
    if spans.iter().any(|&(_, len)| len == 0) {
        return Some(out);
    }
    loop {
        out.push(cursor.clone());
        let mut d = spans.len();
        loop {
            if d == 0 {
                return Some(out);
            }
            d -= 1;
            let (start, len) = spans[d];
            cursor[d] += 1;
            if cursor[d] < start + len {
                break;
            }
            cursor[d] = start;
        }
    }
}

/// Convenience constructor used by runtime code that records store events.
pub(crate) fn store_event(
    kernel: Option<KernelId>,
    field: FieldId,
    age: Age,
    region: Region,
    elements: usize,
    deduped: usize,
    age_complete: bool,
) -> TraceEvent {
    TraceEvent::StoreApplied {
        kernel,
        field,
        age: age.0,
        region,
        elements,
        deduped,
        age_complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2g_graph::spec::mul_sum_example;

    fn spec() -> Arc<ProgramSpec> {
        Arc::new(mul_sum_example())
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::new(vec!["w0".into()], 16);
        for i in 0..40 {
            t.record(0, TraceEvent::AnalyzerBatch { events: i });
        }
        let trace = t.capture(spec());
        assert_eq!(trace.len(), 16);
        assert_eq!(trace.dropped, 24);
        // The survivors are the newest events.
        match &trace.records[0].event {
            TraceEvent::AnalyzerBatch { events } => assert_eq!(*events, 24),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merge_sorts_across_buffers() {
        let t = Tracer::new(vec!["a".into(), "b".into()], 64);
        t.record(1, TraceEvent::AnalyzerBatch { events: 1 });
        t.record(0, TraceEvent::AnalyzerBatch { events: 2 });
        t.record(1, TraceEvent::AnalyzerBatch { events: 3 });
        let trace = t.capture(spec());
        assert_eq!(trace.len(), 3);
        let ts: Vec<u64> = trace.records.iter().map(|r| r.ts_ns).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn out_of_range_tid_is_clamped() {
        let t = Tracer::new(vec!["only".into()], 16);
        t.record(99, TraceEvent::AnalyzerBatch { events: 0 });
        assert_eq!(t.capture(spec()).len(), 1);
    }

    #[test]
    fn jsonl_one_object_per_record() {
        let t = Tracer::new(vec!["w0".into()], 64);
        t.record(
            0,
            TraceEvent::BodyStart {
                kernel: KernelId(1),
                age: 2,
                indices: vec![3],
                attempt: 0,
            },
        );
        t.record(
            0,
            TraceEvent::StoreApplied {
                kernel: Some(KernelId(1)),
                field: FieldId(0),
                age: 2,
                region: Region(vec![DimSel::Index(3)]),
                elements: 1,
                deduped: 0,
                age_complete: false,
            },
        );
        let jsonl = t.capture(spec()).to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"BodyStart\""));
        assert!(lines[0].contains("\"kernel\":\"mul2\""));
        assert!(lines[1].contains("\"type\":\"StoreApplied\""));
        assert!(lines[1].contains("\"age_complete\":false"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn chrome_json_has_balanced_body_pairs() {
        let t = Tracer::new(vec!["w0".into()], 64);
        t.record(
            0,
            TraceEvent::BodyStart {
                kernel: KernelId(0),
                age: 0,
                indices: vec![],
                attempt: 0,
            },
        );
        t.record(
            0,
            TraceEvent::BodyEnd {
                kernel: KernelId(0),
                age: 0,
                indices: vec![],
                attempt: 0,
                ok: true,
            },
        );
        let json = t.capture(spec()).to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn region_coords_enumerates_row_major() {
        let r = Region(vec![
            DimSel::Range { start: 1, len: 2 },
            DimSel::Index(4),
        ]);
        assert_eq!(
            region_coords(&r).unwrap(),
            vec![vec![1, 4], vec![2, 4]]
        );
        assert!(region_coords(&Region::all(1)).is_none());
        let empty = Region(vec![DimSel::Range { start: 0, len: 0 }]);
        assert_eq!(region_coords(&empty).unwrap(), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn counts_by_kind() {
        let t = Tracer::new(vec!["w0".into()], 64);
        t.record(0, TraceEvent::AnalyzerBatch { events: 1 });
        t.record(0, TraceEvent::AnalyzerBatch { events: 2 });
        t.record(0, TraceEvent::NodeDeath { node: NodeId(1) });
        let c = t.capture(spec()).counts();
        assert_eq!(c["AnalyzerBatch"], 2);
        assert_eq!(c["NodeDeath"], 1);
    }
}

//! Runtime errors.

use p2g_field::FieldError;

/// Errors surfaced while executing a P2G program.
#[derive(Debug)]
pub enum RuntimeError {
    /// A field operation failed (write-once violation, type mismatch...).
    Field(FieldError),
    /// A kernel body reported an error; the program is aborted.
    Kernel { kernel: String, message: String },
    /// The program referenced a kernel with no registered body.
    MissingBody { kernel: String },
    /// The program spec failed validation.
    Spec(p2g_graph::SpecError),
    /// An index variable value exceeded the encodable range (65535).
    IndexTooLarge { kernel: String, value: usize },
    /// A worker thread panicked.
    WorkerPanic,
    /// The cluster network transport failed (bind, connect, protocol).
    Net(String),
}

impl From<FieldError> for RuntimeError {
    fn from(e: FieldError) -> RuntimeError {
        RuntimeError::Field(e)
    }
}

impl From<p2g_graph::SpecError> for RuntimeError {
    fn from(e: p2g_graph::SpecError) -> RuntimeError {
        RuntimeError::Spec(e)
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Field(e) => write!(f, "field error: {e}"),
            RuntimeError::Kernel { kernel, message } => {
                write!(f, "kernel '{kernel}' failed: {message}")
            }
            RuntimeError::MissingBody { kernel } => {
                write!(f, "kernel '{kernel}' has no registered body")
            }
            RuntimeError::Spec(e) => write!(f, "invalid program: {e}"),
            RuntimeError::IndexTooLarge { kernel, value } => {
                write!(f, "kernel '{kernel}': index value {value} exceeds 65535")
            }
            RuntimeError::WorkerPanic => write!(f, "a worker thread panicked"),
            RuntimeError::Net(e) => write!(f, "network transport error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

//! Instrumentation: the per-kernel dispatch/kernel timing the paper reports
//! in Tables II and III, plus the feedback data the high-level scheduler
//! uses for repartitioning.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use p2g_field::FieldId;
use p2g_graph::KernelId;

use crate::trace::RunTrace;

/// Number of log₂ latency buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds, so the histogram spans 1 ns to ~9 minutes.
pub const LATENCY_BUCKETS: usize = 40;

const fn latency_bucket(ns: u64) -> usize {
    let ns = if ns == 0 { 1 } else { ns };
    let b = (63 - ns.leading_zeros()) as usize;
    if b >= LATENCY_BUCKETS {
        LATENCY_BUCKETS - 1
    } else {
        b
    }
}

/// Lock-free log-bucketed latency accumulator (one per kernel).
#[derive(Debug)]
pub struct LatencyCounters {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyCounters {
    fn default() -> LatencyCounters {
        LatencyCounters {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyCounters {
    fn record(&self, d: Duration) {
        let b = latency_bucket(d.as_nanos() as u64);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An owned log₂-bucketed latency histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds. Quantiles report the upper bound of the
/// bucket containing the requested rank (conservative: never understates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Raw bucket counts (bucket `i` = `[2^i, 2^(i+1))` ns).
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// The latency at quantile `q` in `[0, 1]`, as the upper bound of the
    /// bucket holding that rank. Zero when no samples were recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_nanos(1u64 << (i + 1));
            }
        }
        Duration::from_nanos(1u64 << LATENCY_BUCKETS)
    }

    /// Median latency (upper bucket bound).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th-percentile latency (upper bucket bound).
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th-percentile latency (upper bucket bound).
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }
}

/// Lock-free accumulator for one kernel definition.
#[derive(Debug, Default)]
pub struct KernelCounters {
    /// Kernel instances executed.
    pub instances: AtomicU64,
    /// Dispatch units executed (differs from `instances` when chunking).
    pub units: AtomicU64,
    /// Nanoseconds of dispatch overhead: popping the unit, assembling
    /// fetch buffers, applying stores and emitting events. (The paper's
    /// dispatch time likewise includes field allocation.)
    pub dispatch_ns: AtomicU64,
    /// Nanoseconds spent inside kernel bodies.
    pub kernel_ns: AtomicU64,
    /// Elements stored by this kernel, per target field — the edge volume
    /// feedback for the HLS.
    pub stored_elements: AtomicU64,
    /// Instance executions that failed (body `Err` or contained panic),
    /// counting every attempt.
    pub failures: AtomicU64,
    /// Retry re-dispatches scheduled by the fault policy.
    pub retries: AtomicU64,
    /// Instances the watchdog flagged past their soft deadline.
    pub deadline_misses: AtomicU64,
    /// Instances skipped by poison propagation: this kernel's own
    /// exhausted-retry instances plus transitively dependent ones.
    pub poisoned: AtomicU64,
    /// Log-bucketed per-instance body-latency histogram.
    pub latency: LatencyCounters,
}

/// A snapshot of one kernel's counters.
///
/// The timing means come in two denominators. `dispatch_time` and
/// `kernel_time` are **per-instance** means — the convention of the
/// paper's Tables II/III, where one instance is one dispatch. Under
/// chunking (`KernelOptions::chunk_size > 1`) a single dispatch unit
/// covers many instances, so the per-instance dispatch mean understates
/// the cost of one scheduler round trip; use
/// [`KernelStats::dispatch_time_per_unit`] for that reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelStats {
    pub instances: u64,
    /// Dispatch units executed (equals `instances` unless chunking merged
    /// several instances per unit).
    pub units: u64,
    /// Mean dispatch overhead **per instance** (Tables II/III convention).
    pub dispatch_time: Duration,
    /// Mean time in kernel code **per instance**.
    pub kernel_time: Duration,
    /// Total dispatch overhead across all units of this kernel.
    pub dispatch_total: Duration,
    /// Total time in kernel code across all instances.
    pub kernel_total: Duration,
    /// Total elements stored.
    pub stored_elements: u64,
    /// Failed instance executions (every attempt counts).
    pub failures: u64,
    /// Retry re-dispatches scheduled by the fault policy.
    pub retries: u64,
    /// Soft-deadline overruns flagged by the watchdog.
    pub deadline_misses: u64,
    /// Instances skipped by poison propagation.
    pub poisoned: u64,
    /// Per-instance body-latency histogram (p50/p95/p99).
    pub latency: LatencyHistogram,
}

impl KernelStats {
    /// Mean dispatch time per instance in microseconds (the unit of the
    /// paper's tables).
    pub fn dispatch_us(&self) -> f64 {
        self.dispatch_time.as_nanos() as f64 / 1000.0
    }

    /// Mean kernel time per instance in microseconds.
    pub fn kernel_us(&self) -> f64 {
        self.kernel_time.as_nanos() as f64 / 1000.0
    }

    /// Mean dispatch overhead per **dispatch unit** — the cost of one
    /// scheduler round trip. Equal to `dispatch_time` when `chunk_size`
    /// is 1; larger under chunking (one unit amortizes over many
    /// instances).
    pub fn dispatch_time_per_unit(&self) -> Duration {
        self.dispatch_total / self.units.max(1) as u32
    }

    /// Mean kernel time per dispatch unit.
    pub fn kernel_time_per_unit(&self) -> Duration {
        self.kernel_total / self.units.max(1) as u32
    }

    /// Mean dispatch time per unit in microseconds.
    pub fn dispatch_us_per_unit(&self) -> f64 {
        self.dispatch_time_per_unit().as_nanos() as f64 / 1000.0
    }
}

/// Instrumentation for one execution node.
#[derive(Debug)]
pub struct Instruments {
    kernels: Vec<(String, KernelCounters)>,
    /// Nanoseconds the dedicated dependency-analyzer thread spent inside
    /// event processing — the serial resource behind the paper's
    /// Figure-10 saturation.
    analyzer_busy_ns: AtomicU64,
    /// Events the analyzer processed.
    analyzer_events: AtomicU64,
    /// Channel drains by the analyzer loop. events / batches is the mean
    /// batch size — a gauge of how bursty the store-event load is.
    analyzer_batches: AtomicU64,
    /// Elements moved per (producer kernel, field) — aggregated into edge
    /// volumes for repartitioning.
    volumes: parking_lot::Mutex<BTreeMap<(KernelId, FieldId), u64>>,
    /// Store elements absorbed by write-once deduplication (duplicate
    /// remote deliveries and recovery re-execution). Nonzero only in
    /// distributed mode.
    deduped_elements: AtomicU64,
    /// Final poisoned-instance sets per (kernel name, age), recorded by the
    /// analyzer before it exits. Index values of every skipped instance.
    poisoned_instances: parking_lot::Mutex<PoisonedInstances>,
    /// `(field, age)` slabs retired by age GC.
    gc_ages_collected: AtomicU64,
    /// Peak simultaneously-live `(field, age)` views observed by the
    /// analyzer — the flat-memory gauge the streaming soak tests assert on.
    peak_live_ages: AtomicU64,
    /// Events processed per analyzer shard ([`crate::shard`]); one slot in
    /// single-thread mode.
    shard_events: Vec<AtomicU64>,
    /// Per-shard event-queue depth high-water mark.
    shard_queue_peak: Vec<AtomicU64>,
    /// Worker-side inline dispatches — ready successors that skipped the
    /// analyzer round trip entirely.
    inline_dispatches: AtomicU64,
    /// Instances executed through the batched work-unit path (one queue
    /// pop / one `catch_unwind` chain per multi-instance unit).
    batched_instances: AtomicU64,
    /// Chunk-size decisions made by the online granularity controller.
    granularity_changes: AtomicU64,
}

/// Poisoned-instance index vectors keyed by (kernel name, age).
pub type PoisonedInstances = BTreeMap<(String, u64), Vec<Vec<usize>>>;

impl Instruments {
    /// Create counters for `names` kernels (indexed by `KernelId::idx`).
    pub fn new(names: Vec<String>) -> Instruments {
        Instruments::new_sharded(names, 1)
    }

    /// Create counters for `names` kernels and `shards` analyzer shards.
    pub fn new_sharded(names: Vec<String>, shards: usize) -> Instruments {
        let shards = shards.max(1);
        Instruments {
            kernels: names
                .into_iter()
                .map(|n| (n, KernelCounters::default()))
                .collect(),
            analyzer_busy_ns: AtomicU64::new(0),
            analyzer_events: AtomicU64::new(0),
            analyzer_batches: AtomicU64::new(0),
            volumes: parking_lot::Mutex::new(BTreeMap::new()),
            deduped_elements: AtomicU64::new(0),
            poisoned_instances: parking_lot::Mutex::new(BTreeMap::new()),
            gc_ages_collected: AtomicU64::new(0),
            peak_live_ages: AtomicU64::new(0),
            shard_events: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_queue_peak: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            inline_dispatches: AtomicU64::new(0),
            batched_instances: AtomicU64::new(0),
            granularity_changes: AtomicU64::new(0),
        }
    }

    /// Record instances executed through the batched work-unit path.
    pub fn record_batched(&self, instances: u64) {
        self.batched_instances.fetch_add(instances, Ordering::Relaxed);
    }

    /// Instances executed through the batched path so far.
    pub fn batched_instances(&self) -> u64 {
        self.batched_instances.load(Ordering::Relaxed)
    }

    /// Record one chunk-size decision by the granularity controller.
    pub fn record_granularity_change(&self) {
        self.granularity_changes.fetch_add(1, Ordering::Relaxed);
    }

    /// Chunk-size decisions made by the granularity controller so far.
    pub fn granularity_changes(&self) -> u64 {
        self.granularity_changes.load(Ordering::Relaxed)
    }

    /// Live raw counter reads for one kernel —
    /// `(instances, units, dispatch_ns, kernel_ns)` — the monotonic inputs
    /// the granularity controller differentiates per interval.
    pub fn kernel_raw(&self, kernel: KernelId) -> (u64, u64, u64, u64) {
        let c = &self.kernels[kernel.idx()].1;
        (
            c.instances.load(Ordering::Relaxed),
            c.units.load(Ordering::Relaxed),
            c.dispatch_ns.load(Ordering::Relaxed),
            c.kernel_ns.load(Ordering::Relaxed),
        )
    }

    /// Live body-latency histogram snapshot for one kernel.
    pub fn latency_histogram(&self, kernel: KernelId) -> LatencyHistogram {
        self.kernels[kernel.idx()].1.latency.snapshot()
    }

    /// Record events processed by one analyzer shard.
    pub fn record_shard_events(&self, shard: usize, events: u64) {
        self.shard_events[shard].fetch_add(events, Ordering::Relaxed);
    }

    /// Record a shard's event-queue depth (the gauge keeps the maximum).
    pub fn record_shard_queue_depth(&self, shard: usize, depth: u64) {
        self.shard_queue_peak[shard].fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one worker-side inline dispatch.
    pub fn record_inline_dispatch(&self) {
        self.inline_dispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Events processed per analyzer shard.
    pub fn shard_events(&self) -> Vec<u64> {
        self.shard_events
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-shard event-queue depth high-water marks.
    pub fn shard_queue_peaks(&self) -> Vec<u64> {
        self.shard_queue_peak
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Worker-side inline dispatches.
    pub fn inline_dispatches(&self) -> u64 {
        self.inline_dispatches.load(Ordering::Relaxed)
    }

    /// Record retired `(field, age)` slabs and the current live-age count
    /// (the peak gauge keeps the maximum).
    pub fn record_gc(&self, collected: u64, live_ages: u64) {
        self.gc_ages_collected.fetch_add(collected, Ordering::Relaxed);
        self.peak_live_ages.fetch_max(live_ages, Ordering::Relaxed);
    }

    /// Total `(field, age)` slabs retired by age GC.
    pub fn gc_ages_collected(&self) -> u64 {
        self.gc_ages_collected.load(Ordering::Relaxed)
    }

    /// Peak simultaneously-live `(field, age)` count observed.
    pub fn peak_live_ages(&self) -> u64 {
        self.peak_live_ages.load(Ordering::Relaxed)
    }

    /// Record one failed instance execution (body `Err` or panic).
    pub fn record_failure(&self, kernel: KernelId) {
        self.kernels[kernel.idx()]
            .1
            .failures
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record retry re-dispatches scheduled by the fault policy.
    pub fn record_retries(&self, kernel: KernelId, n: u64) {
        self.kernels[kernel.idx()]
            .1
            .retries
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Record a watchdog-flagged soft-deadline overrun.
    pub fn record_deadline_miss(&self, kernel: KernelId) {
        self.kernels[kernel.idx()]
            .1
            .deadline_misses
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record an instance skipped by poison propagation, with its identity
    /// for the final report.
    pub fn record_poisoned(&self, kernel: KernelId, age: u64, indices: &[usize]) {
        self.kernels[kernel.idx()]
            .1
            .poisoned
            .fetch_add(1, Ordering::Relaxed);
        let name = self.kernels[kernel.idx()].0.clone();
        self.poisoned_instances
            .lock()
            .entry((name, age))
            .or_default()
            .push(indices.to_vec());
    }

    /// Final poisoned-instance sets per (kernel name, age).
    pub fn poisoned_instances(&self) -> PoisonedInstances {
        self.poisoned_instances.lock().clone()
    }

    /// Record store elements absorbed by deduplication.
    pub fn record_deduped(&self, elements: u64) {
        self.deduped_elements.fetch_add(elements, Ordering::Relaxed);
    }

    /// Store elements absorbed by deduplication so far.
    pub fn deduped_elements(&self) -> u64 {
        self.deduped_elements.load(Ordering::Relaxed)
    }

    /// Record one processed analyzer event and its processing time.
    pub fn record_analyzer_event(&self, busy: Duration) {
        self.analyzer_busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        self.analyzer_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Total time the analyzer spent processing events.
    pub fn analyzer_busy(&self) -> Duration {
        Duration::from_nanos(self.analyzer_busy_ns.load(Ordering::Relaxed))
    }

    /// Number of events the analyzer processed.
    pub fn analyzer_events(&self) -> u64 {
        self.analyzer_events.load(Ordering::Relaxed)
    }

    /// Record one greedy channel drain (a batch of one or more events).
    pub fn record_analyzer_batch(&self) {
        self.analyzer_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of channel drains by the analyzer loop.
    pub fn analyzer_batches(&self) -> u64 {
        self.analyzer_batches.load(Ordering::Relaxed)
    }

    /// Record one executed dispatch unit.
    pub fn record_unit(
        &self,
        kernel: KernelId,
        instances: u64,
        dispatch: Duration,
        body: Duration,
    ) {
        let c = &self.kernels[kernel.idx()].1;
        c.instances.fetch_add(instances, Ordering::Relaxed);
        c.units.fetch_add(1, Ordering::Relaxed);
        c.dispatch_ns
            .fetch_add(dispatch.as_nanos() as u64, Ordering::Relaxed);
        c.kernel_ns
            .fetch_add(body.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record one body execution's latency into the kernel's histogram.
    pub fn record_latency(&self, kernel: KernelId, elapsed: Duration) {
        self.kernels[kernel.idx()].1.latency.record(elapsed);
    }

    /// Record elements stored by a kernel into a field.
    pub fn record_store(&self, kernel: KernelId, field: FieldId, elements: u64) {
        self.kernels[kernel.idx()]
            .1
            .stored_elements
            .fetch_add(elements, Ordering::Relaxed);
        *self.volumes.lock().entry((kernel, field)).or_insert(0) += elements;
    }

    /// Snapshot one kernel's stats by id.
    pub fn kernel_by_id(&self, kernel: KernelId) -> KernelStats {
        let c = &self.kernels[kernel.idx()].1;
        let instances = c.instances.load(Ordering::Relaxed);
        let div = instances.max(1);
        let dispatch_ns = c.dispatch_ns.load(Ordering::Relaxed);
        let kernel_ns = c.kernel_ns.load(Ordering::Relaxed);
        KernelStats {
            instances,
            units: c.units.load(Ordering::Relaxed),
            dispatch_time: Duration::from_nanos(dispatch_ns / div),
            kernel_time: Duration::from_nanos(kernel_ns / div),
            dispatch_total: Duration::from_nanos(dispatch_ns),
            kernel_total: Duration::from_nanos(kernel_ns),
            stored_elements: c.stored_elements.load(Ordering::Relaxed),
            failures: c.failures.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            deadline_misses: c.deadline_misses.load(Ordering::Relaxed),
            poisoned: c.poisoned.load(Ordering::Relaxed),
            latency: c.latency.snapshot(),
        }
    }

    /// Snapshot one kernel's stats by name.
    pub fn kernel(&self, name: &str) -> Option<KernelStats> {
        self.kernels
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| self.kernel_by_id(KernelId(i as u32)))
    }

    /// All kernels with their stats, in definition order.
    pub fn all(&self) -> Vec<(String, KernelStats)> {
        (0..self.kernels.len())
            .map(|i| {
                (
                    self.kernels[i].0.clone(),
                    self.kernel_by_id(KernelId(i as u32)),
                )
            })
            .collect()
    }

    /// Per-(kernel, field) element volumes, for HLS edge weighting.
    pub fn store_volumes(&self) -> BTreeMap<(KernelId, FieldId), u64> {
        self.volumes.lock().clone()
    }

    /// Mean kernel time per kernel in microseconds, for HLS vertex
    /// weighting.
    pub fn kernel_times_us(&self) -> BTreeMap<KernelId, f64> {
        (0..self.kernels.len())
            .map(|i| {
                let id = KernelId(i as u32);
                (id, self.kernel_by_id(id).kernel_us())
            })
            .collect()
    }

    /// Render the paper's micro-benchmark table (Tables II/III format),
    /// extended with the per-kernel body-latency percentiles the
    /// granularity controller reads.
    pub fn render_table(&self) -> String {
        render_kernel_table(&self.all())
    }
}

/// Shared renderer for the live and snapshot instrument tables.
fn render_kernel_table(entries: &[(String, KernelStats)]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<16} {:>10} {:>16} {:>16} {:>10} {:>10} {:>10}\n",
        "Kernel", "Instances", "Dispatch Time", "Kernel Time", "p50", "p95", "p99"
    ));
    for (name, st) in entries {
        s.push_str(&format!(
            "{:<16} {:>10} {:>13.2} us {:>13.2} us {:>7.1} us {:>7.1} us {:>7.1} us\n",
            name,
            st.instances,
            st.dispatch_us(),
            st.kernel_us(),
            st.latency.p50().as_nanos() as f64 / 1000.0,
            st.latency.p95().as_nanos() as f64 / 1000.0,
            st.latency.p99().as_nanos() as f64 / 1000.0,
        ));
    }
    s
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// No more runnable instances (program finished or hit `max_ages`).
    Quiescent,
    /// The run completed but some instances were poisoned (exhausted their
    /// retry budget under [`crate::options::ExhaustPolicy::Poison`]) and
    /// their transitive dependents were skipped. Partial results.
    Degraded,
    /// The wall-clock deadline fired.
    DeadlineExpired,
    /// A kernel body or field operation failed.
    Failed,
}

impl Termination {
    /// True for the two "the program ran to the end of its instance space"
    /// outcomes: [`Termination::Quiescent`] and [`Termination::Degraded`].
    pub fn finished(&self) -> bool {
        matches!(self, Termination::Quiescent | Termination::Degraded)
    }
}

/// The result of running a program on an execution node.
#[derive(Debug)]
pub struct RunReport {
    pub termination: Termination,
    /// Total wall time of the run.
    pub wall_time: Duration,
    /// Final instrumentation snapshot.
    pub instruments: InstrumentsSnapshot,
    /// The merged structured event trace, when tracing was enabled
    /// ([`crate::RunLimits::with_trace`] or the `trace` cargo feature).
    pub trace: Option<RunTrace>,
}

/// An owned snapshot of [`Instruments`] usable after the node is dropped.
#[derive(Debug, Clone)]
pub struct InstrumentsSnapshot {
    entries: Vec<(String, KernelStats)>,
    volumes: BTreeMap<(KernelId, FieldId), u64>,
    analyzer_busy: Duration,
    analyzer_events: u64,
    analyzer_batches: u64,
    deduped_elements: u64,
    poisoned_instances: BTreeMap<(String, u64), Vec<Vec<usize>>>,
    gc_ages_collected: u64,
    peak_live_ages: u64,
    shard_events: Vec<u64>,
    shard_queue_peaks: Vec<u64>,
    inline_dispatches: u64,
    batched_instances: u64,
    granularity_changes: u64,
}

impl InstrumentsSnapshot {
    /// Capture a snapshot.
    pub fn capture(live: &Instruments) -> InstrumentsSnapshot {
        InstrumentsSnapshot {
            entries: live.all(),
            volumes: live.store_volumes(),
            analyzer_busy: live.analyzer_busy(),
            analyzer_events: live.analyzer_events(),
            analyzer_batches: live.analyzer_batches(),
            deduped_elements: live.deduped_elements(),
            poisoned_instances: live.poisoned_instances(),
            gc_ages_collected: live.gc_ages_collected(),
            peak_live_ages: live.peak_live_ages(),
            shard_events: live.shard_events(),
            shard_queue_peaks: live.shard_queue_peaks(),
            inline_dispatches: live.inline_dispatches(),
            batched_instances: live.batched_instances(),
            granularity_changes: live.granularity_changes(),
        }
    }

    /// Instances executed through the batched work-unit path.
    pub fn batched_instances(&self) -> u64 {
        self.batched_instances
    }

    /// Chunk-size decisions made by the online granularity controller.
    pub fn granularity_changes(&self) -> u64 {
        self.granularity_changes
    }

    /// Total `(field, age)` slabs retired by age GC during the run.
    pub fn gc_ages_collected(&self) -> u64 {
        self.gc_ages_collected
    }

    /// Peak simultaneously-live `(field, age)` count the analyzer observed
    /// — flat over a streaming run when GC keeps up.
    pub fn peak_live_ages(&self) -> u64 {
        self.peak_live_ages
    }

    /// Final poisoned-instance sets per (kernel name, age) — exactly the
    /// instances skipped by poison propagation.
    pub fn poisoned_instances(&self) -> &BTreeMap<(String, u64), Vec<Vec<usize>>> {
        &self.poisoned_instances
    }

    /// Sum of failed instance executions across kernels.
    pub fn total_failures(&self) -> u64 {
        self.entries.iter().map(|(_, s)| s.failures).sum()
    }

    /// Sum of retry re-dispatches across kernels.
    pub fn total_retries(&self) -> u64 {
        self.entries.iter().map(|(_, s)| s.retries).sum()
    }

    /// Sum of watchdog deadline misses across kernels.
    pub fn total_deadline_misses(&self) -> u64 {
        self.entries.iter().map(|(_, s)| s.deadline_misses).sum()
    }

    /// Sum of poison-skipped instances across kernels.
    pub fn total_poisoned(&self) -> u64 {
        self.entries.iter().map(|(_, s)| s.poisoned).sum()
    }

    /// Store elements absorbed by write-once deduplication (duplicate
    /// deliveries and recovery re-execution).
    pub fn deduped_elements(&self) -> u64 {
        self.deduped_elements
    }

    /// Total time the dependency analyzer spent processing events.
    pub fn analyzer_busy(&self) -> Duration {
        self.analyzer_busy
    }

    /// Events the analyzer processed.
    pub fn analyzer_events(&self) -> u64 {
        self.analyzer_events
    }

    /// Channel drains by the analyzer loop (events / batches = mean batch
    /// size).
    pub fn analyzer_batches(&self) -> u64 {
        self.analyzer_batches
    }

    /// Events processed per analyzer shard, indexed by shard.
    pub fn shard_events(&self) -> &[u64] {
        &self.shard_events
    }

    /// High-water queue depth per analyzer shard, indexed by shard.
    pub fn shard_queue_peaks(&self) -> &[u64] {
        &self.shard_queue_peaks
    }

    /// Successor instances dispatched by the worker-side inline fast path,
    /// bypassing the analyzer.
    pub fn inline_dispatches(&self) -> u64 {
        self.inline_dispatches
    }

    /// Stats for a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Body-latency percentiles `(p50, p95, p99)` for a kernel by name.
    pub fn latency_quantiles(&self, name: &str) -> Option<(Duration, Duration, Duration)> {
        self.kernel(name)
            .map(|s| (s.latency.p50(), s.latency.p95(), s.latency.p99()))
    }

    /// All kernel stats in definition order.
    pub fn all(&self) -> &[(String, KernelStats)] {
        &self.entries
    }

    /// Per-(kernel, field) stored-element volumes.
    pub fn store_volumes(&self) -> &BTreeMap<(KernelId, FieldId), u64> {
        &self.volumes
    }

    /// Render as the paper's micro-benchmark table (with latency
    /// percentile columns).
    pub fn render_table(&self) -> String {
        let mut s = render_kernel_table(&self.entries);
        if self.batched_instances > 0 || self.granularity_changes > 0 {
            s.push_str(&format!(
                "batched path     {:>10} instances {:>7} granularity changes\n",
                self.batched_instances, self.granularity_changes
            ));
        }
        if self.shard_events.len() > 1 {
            for (i, (ev, peak)) in self
                .shard_events
                .iter()
                .zip(&self.shard_queue_peaks)
                .enumerate()
            {
                s.push_str(&format!(
                    "analyzer-{:<7} {:>10} events {:>9} queue peak\n",
                    i, ev, peak
                ));
            }
            s.push_str(&format!(
                "inline fast-path {:>10} dispatches\n",
                self.inline_dispatches
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let ins = Instruments::new(vec!["a".into(), "b".into()]);
        ins.record_unit(
            KernelId(0),
            4,
            Duration::from_micros(8),
            Duration::from_micros(40),
        );
        ins.record_unit(
            KernelId(0),
            4,
            Duration::from_micros(8),
            Duration::from_micros(40),
        );
        let st = ins.kernel("a").unwrap();
        assert_eq!(st.instances, 8);
        assert_eq!(st.units, 2);
        // 16 us dispatch over 8 instances = 2 us mean.
        assert!((st.dispatch_us() - 2.0).abs() < 0.01);
        assert!((st.kernel_us() - 10.0).abs() < 0.01);
    }

    #[test]
    fn store_volume_tracking() {
        let ins = Instruments::new(vec!["a".into()]);
        ins.record_store(KernelId(0), FieldId(2), 64);
        ins.record_store(KernelId(0), FieldId(2), 64);
        assert_eq!(ins.store_volumes()[&(KernelId(0), FieldId(2))], 128);
        assert_eq!(ins.kernel("a").unwrap().stored_elements, 128);
    }

    #[test]
    fn unknown_kernel_name() {
        let ins = Instruments::new(vec!["a".into()]);
        assert!(ins.kernel("nope").is_none());
    }

    #[test]
    fn table_rendering() {
        let ins = Instruments::new(vec!["yDCT".into()]);
        ins.record_unit(
            KernelId(0),
            1,
            Duration::from_micros(3),
            Duration::from_micros(170),
        );
        let table = ins.render_table();
        assert!(table.contains("yDCT"));
        assert!(table.contains("Instances"));
        let snap = InstrumentsSnapshot::capture(&ins);
        assert!(snap.render_table().contains("yDCT"));
        assert_eq!(snap.kernel("yDCT").unwrap().instances, 1);
    }

    #[test]
    fn latency_percentiles_in_tables() {
        let ins = Instruments::new(vec!["k".into()]);
        ins.record_latency(KernelId(0), Duration::from_micros(100));
        ins.record_latency(KernelId(0), Duration::from_micros(3));
        let table = ins.render_table();
        assert!(table.contains("p50") && table.contains("p95") && table.contains("p99"));
        let snap = InstrumentsSnapshot::capture(&ins);
        assert!(snap.render_table().contains("p95"));
        let (p50, p95, p99) = snap.latency_quantiles("k").unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 >= Duration::from_micros(100));
    }

    #[test]
    fn batched_and_granularity_counters() {
        let ins = Instruments::new(vec!["k".into()]);
        ins.record_batched(16);
        ins.record_granularity_change();
        assert_eq!(ins.batched_instances(), 16);
        assert_eq!(ins.granularity_changes(), 1);
        let snap = InstrumentsSnapshot::capture(&ins);
        assert_eq!(snap.batched_instances(), 16);
        assert_eq!(snap.granularity_changes(), 1);
        assert!(snap.render_table().contains("batched path"));
    }

    #[test]
    fn kernel_raw_reads_live_counters() {
        let ins = Instruments::new(vec!["k".into()]);
        ins.record_unit(
            KernelId(0),
            4,
            Duration::from_nanos(100),
            Duration::from_nanos(400),
        );
        assert_eq!(ins.kernel_raw(KernelId(0)), (4, 1, 100, 400));
        assert_eq!(ins.latency_histogram(KernelId(0)).count(), 0);
    }
}

//! The P2G execution-node runtime: the low-level scheduler (LLS).
//!
//! A node built with [`NodeBuilder`] runs a [`Program`] — a validated
//! [`p2g_graph::ProgramSpec`] plus Rust kernel bodies — on a pool of worker
//! threads, with dependency analysis in a dedicated thread exactly as in the
//! paper's prototype (Section VI-B):
//!
//! * Kernel instances produce **events** on store/resize operations.
//! * The **dependency analyzer** subscribes to those events, finds every
//!   *new* valid combination of age and index variables whose data
//!   dependencies are now fulfilled, and pushes them onto per-kernel ready
//!   queues.
//! * **Worker threads** pop ready instances (lowest age first, so aging
//!   cycles are never starved), assemble their fetch buffers, run the kernel
//!   body, apply its stores, and emit the resulting events.
//!
//! Granularity adaptation (paper Figure 4) is exposed through
//! [`KernelOptions`]: `chunk_size` merges several instances of one kernel
//! into a single dispatch (less data parallelism, lower overhead) and
//! `fuse_with` runs a consumer kernel inline after its producer (less task
//! parallelism, elided intermediate dispatch).
//!
//! ```
//! use p2g_runtime::{Program, NodeBuilder, RunLimits};
//! use p2g_graph::spec::mul_sum_example;
//! use p2g_field::{Buffer, Value};
//!
//! let spec = mul_sum_example();
//! let mut program = Program::new(spec).unwrap();
//! program.body("init", |ctx| {
//!     ctx.store(0, Buffer::from_vec((0..5).map(|i| i + 10).collect::<Vec<i32>>()));
//!     Ok(())
//! });
//! program.body("mul2", |ctx| {
//!     let v = ctx.input(0).value(0).as_i64() as i32;
//!     ctx.store(0, Buffer::from_vec(vec![v * 2]));
//!     Ok(())
//! });
//! program.body("plus5", |ctx| {
//!     let v = ctx.input(0).value(0).as_i64() as i32;
//!     ctx.store(0, Buffer::from_vec(vec![v + 5]));
//!     Ok(())
//! });
//! program.body("print", |_ctx| Ok(()));
//!
//! let node = NodeBuilder::new(program).workers(2);
//! let report = node.launch(RunLimits::ages(3)).unwrap().wait().unwrap();
//! assert!(report.instruments.kernel("mul2").unwrap().instances > 0);
//! ```

pub mod analyzer;
pub mod error;
pub mod events;
pub mod granularity;
pub mod instance;
pub mod instrument;
pub mod node;
pub mod options;
pub mod pool;
pub mod program;
pub mod ready;
pub mod session;
pub mod shard;
pub mod timer;
pub mod trace;
pub mod trace_check;
mod watchdog;

pub use analyzer::{AgeWatchFn, DependencyAnalyzer};
pub use error::RuntimeError;
pub use events::{Event, StoreEvent};
pub use granularity::{GranularityChangeInfo, GranularityController};
pub use instance::InstanceKey;
pub use instrument::{Instruments, KernelStats, LatencyHistogram, RunReport, Termination};
pub use node::{FieldStore, NodeBuilder, NodeHandle, RunningNode, StoreTap};
pub use options::{AdaptiveGranularity, ExhaustPolicy, FaultPolicy, KernelOptions, RunLimits};
pub use pool::{Qos, WorkerPool};
pub use program::{BatchCtx, BodyResult, KernelCtx, Program};
pub use ready::QOS_CLASS_NORMAL;
pub use session::{
    Session, SessionConfig, SessionMetrics, SessionOutput, SessionReport, SessionRuntime,
    SessionSink, SubmitError, Ticket,
};
pub use shard::{ShardGc, ShardPlan};
pub use timer::TimerTable;
pub use trace::{RunTrace, TraceEvent, TraceOptions, TraceRecord, Tracer};

/// Owned copy of an age expression, used internally where borrowing the
/// program spec across a mutable analyzer call is not possible.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AgeExprCopy {
    Rel(i64),
    Const(u64),
}

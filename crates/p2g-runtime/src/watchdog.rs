//! The fault-policy watchdog: one thread per node (spawned only when some
//! kernel's [`crate::options::FaultPolicy`] needs it) that owns two pieces
//! of deferred fault-isolation state:
//!
//! * **Delayed retries** — failed instances re-dispatched after their
//!   exponential-backoff delay. The worker schedules the retry unit here
//!   (keeping its outstanding-work count), and the watchdog pushes it onto
//!   the ready queue when due — quiescence cannot be observed while a
//!   retry is pending, because the unit's count is held the whole time.
//! * **Soft deadlines** — active instances registered with a deadline and
//!   a cooperative cancellation token. An instance that overruns gets its
//!   token flagged (the body polls [`crate::KernelCtx::cancelled`] and
//!   bails out); the miss is reported back to the worker at deregister
//!   time. Threads are never killed.

use std::cmp::Reverse;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use p2g_field::Age;
use p2g_graph::KernelId;

use crate::instance::DispatchUnit;
use crate::trace::{TraceEvent, Tracer};

struct ActiveEntry {
    deadline: Instant,
    cancel: Arc<AtomicBool>,
    missed: bool,
    kernel: KernelId,
    age: Age,
    indices: Vec<usize>,
}

struct RetryEntry {
    due: Instant,
    seq: u64,
    unit: DispatchUnit,
}

impl PartialEq for RetryEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for RetryEntry {}
impl PartialOrd for RetryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RetryEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

struct Inner {
    stopped: bool,
    next_id: u64,
    seq: u64,
    active: HashMap<u64, ActiveEntry>,
    retries: std::collections::BinaryHeap<Reverse<RetryEntry>>,
}

/// Deadline-flagging and delayed-retry state shared between workers and
/// the watchdog thread (see module docs).
pub(crate) struct Watchdog {
    inner: Mutex<Inner>,
    cond: Condvar,
    /// Tracer handle + this thread's buffer id: deadline misses are traced
    /// at flag time (on the watchdog thread), not at deregister time.
    trace: Option<(Arc<Tracer>, u32)>,
}

impl Watchdog {
    pub(crate) fn new(trace: Option<(Arc<Tracer>, u32)>) -> Watchdog {
        Watchdog {
            inner: Mutex::new(Inner {
                stopped: false,
                next_id: 0,
                seq: 0,
                active: HashMap::new(),
                retries: std::collections::BinaryHeap::new(),
            }),
            cond: Condvar::new(),
            trace,
        }
    }

    /// Register a running instance with its soft deadline, cancellation
    /// token and identity; returns a registration id for
    /// [`Watchdog::deregister`].
    pub(crate) fn register(
        &self,
        deadline: Instant,
        cancel: Arc<AtomicBool>,
        kernel: KernelId,
        age: Age,
        indices: Vec<usize>,
    ) -> u64 {
        let mut g = self.inner.lock();
        let id = g.next_id;
        g.next_id += 1;
        g.active.insert(
            id,
            ActiveEntry {
                deadline,
                cancel,
                missed: false,
                kernel,
                age,
                indices,
            },
        );
        drop(g);
        // The new deadline may be earlier than whatever the thread sleeps
        // towards.
        self.cond.notify_all();
        id
    }

    /// Remove a finished instance; true when the watchdog had flagged it
    /// past its deadline (a deadline miss to record).
    pub(crate) fn deregister(&self, id: u64) -> bool {
        self.inner
            .lock()
            .active
            .remove(&id)
            .map(|e| e.missed)
            .unwrap_or(false)
    }

    /// Schedule a retry unit to be released to the ready queue at `due`.
    /// The unit's outstanding-work count stays held while it waits here.
    pub(crate) fn schedule_retry(&self, unit: DispatchUnit, due: Instant) {
        let mut g = self.inner.lock();
        let seq = g.seq;
        g.seq += 1;
        g.retries.push(Reverse(RetryEntry { due, seq, unit }));
        drop(g);
        self.cond.notify_all();
    }

    /// Stop the watchdog and drain retries that never became due. The
    /// caller must release each drained unit's outstanding-work count.
    pub(crate) fn stop(&self) -> Vec<DispatchUnit> {
        let mut g = self.inner.lock();
        g.stopped = true;
        let drained = std::mem::take(&mut g.retries)
            .into_sorted_vec()
            .into_iter()
            .map(|Reverse(e)| e.unit)
            .collect();
        drop(g);
        self.cond.notify_all();
        drained
    }

    /// Thread body: block until some retry is due (flagging overdue active
    /// instances along the way) and return the due units. `None` means the
    /// watchdog was stopped.
    pub(crate) fn next_due(&self) -> Option<Vec<DispatchUnit>> {
        let mut g = self.inner.lock();
        loop {
            if g.stopped {
                return None;
            }
            let now = Instant::now();
            for e in g.active.values_mut() {
                if !e.missed && now >= e.deadline {
                    e.missed = true;
                    e.cancel.store(true, Ordering::Relaxed);
                    if let Some((t, tid)) = &self.trace {
                        t.record(
                            *tid,
                            TraceEvent::DeadlineMiss {
                                kernel: e.kernel,
                                age: e.age.0,
                                indices: e.indices.clone(),
                            },
                        );
                    }
                }
            }
            let mut due = Vec::new();
            while g.retries.peek().is_some_and(|Reverse(top)| top.due <= now) {
                let Reverse(e) = g.retries.pop().expect("peeked");
                due.push(e.unit);
            }
            if !due.is_empty() {
                return Some(due);
            }
            let next_deadline = g
                .active
                .values()
                .filter(|e| !e.missed)
                .map(|e| e.deadline)
                .min();
            let next_retry = g.retries.peek().map(|Reverse(e)| e.due);
            let wake = match (next_deadline, next_retry) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };
            match wake {
                Some(t) => {
                    self.cond.wait_until(&mut g, t);
                }
                None => {
                    self.cond.wait(&mut g);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2g_field::Age;
    use p2g_graph::KernelId;
    use std::time::Duration;

    fn unit() -> DispatchUnit {
        DispatchUnit::new(KernelId(0), Age(0), vec![vec![]])
    }

    fn register(wd: &Watchdog, deadline: Instant, token: Arc<AtomicBool>) -> u64 {
        wd.register(deadline, token, KernelId(0), Age(0), vec![])
    }

    #[test]
    fn deadline_flags_token() {
        let wd = Arc::new(Watchdog::new(None));
        let token = Arc::new(AtomicBool::new(false));
        let id = register(&wd, Instant::now() + Duration::from_millis(5), token.clone());
        let wd2 = wd.clone();
        let h = std::thread::spawn(move || while wd2.next_due().is_some() {});
        std::thread::sleep(Duration::from_millis(30));
        assert!(token.load(Ordering::Relaxed));
        assert!(wd.deregister(id));
        wd.stop();
        h.join().unwrap();
    }

    #[test]
    fn fast_instance_not_flagged() {
        let wd = Watchdog::new(None);
        let token = Arc::new(AtomicBool::new(false));
        let id = register(&wd, Instant::now() + Duration::from_secs(60), token.clone());
        assert!(!wd.deregister(id));
        assert!(!token.load(Ordering::Relaxed));
    }

    #[test]
    fn retry_released_when_due() {
        let wd = Watchdog::new(None);
        wd.schedule_retry(unit(), Instant::now() + Duration::from_millis(5));
        let due = wd.next_due().expect("not stopped");
        assert_eq!(due.len(), 1);
    }

    #[test]
    fn stop_drains_pending_retries() {
        let wd = Watchdog::new(None);
        wd.schedule_retry(unit(), Instant::now() + Duration::from_secs(60));
        wd.schedule_retry(unit(), Instant::now() + Duration::from_secs(60));
        let drained = wd.stop();
        assert_eq!(drained.len(), 2);
        assert!(wd.next_due().is_none());
    }
}

//! The dependency analyzer: the serial heart of the low-level scheduler.
//!
//! On every store/resize event the analyzer finds all *new* valid
//! combinations of age and index variables whose fetch dependencies are now
//! fulfilled, and emits them as dispatch units (paper Section VI-B). It runs
//! in a dedicated thread — which is exactly why the paper's K-means workload
//! stops scaling past a handful of workers, an effect the Figure-10 bench
//! reproduces.
//!
//! # Incremental dependency analysis
//!
//! The analyzer is *delta-driven*: its per-event cost is proportional to the
//! stored region, not to the kernel instance spaces. Three pieces make this
//! work:
//!
//! * **Views** — a per-(field, age) record of extents and accounted
//!   elements, built purely from store events. The hot path never takes a
//!   field lock; the event itself carries the resolved region and post-store
//!   extents (captured inside the store's write lock), so views converge on
//!   field ground truth as events drain.
//! * **Pending tables** — per-(kernel, age) remaining-dependency counters,
//!   one per instance, created lazily when the binding fetches' views first
//!   exist. A store decrements exactly the counters of instances whose fetch
//!   regions contain the stored elements, found by *inverting* the fetch
//!   patterns (stored coordinate → instance rectangle) instead of
//!   enumerating the instance space. An instance whose counter hits zero is
//!   dispatched (if its gates are open).
//! * **Gates** — whole-field and whole-dimension fetches don't count
//!   elements; they wait for view completeness and settled extents. Gate
//!   state is cached per table and recomputed only for tables the event
//!   could have affected; a closed→open transition sweeps the table for
//!   ready instances.
//!
//! Kernels whose fetch shapes the inversion doesn't cover (a fixed index
//! mixed with a whole dimension) fall back to the original
//! enumerate-and-check path ([`DependencyAnalyzer::try_generate`]), which
//! also serves as the correctness oracle: [`Event::Reassign`] triggers
//! [`DependencyAnalyzer::rescan`], a full resynchronization of views and
//! tables from field ground truth followed by oracle-path dispatch.
//!
//! The analyzer also implements:
//! * **source-kernel sequencing** — a fetch-less kernel with an age
//!   variable (the MJPEG reader) gets its next age dispatched only after the
//!   previous instance completed *and stored something*; an instance that
//!   stores nothing ends the stream.
//! * **ordered-kernel gating** — instances of kernels marked ordered are
//!   released one age at a time (bitstream writers).
//! * **age garbage collection** — with a configured window, field ages far
//!   enough behind the field's newest age are reclaimed.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;

use p2g_field::bitmap::remap_for_resize;
use p2g_field::{Age, Bitmap, Extents, Field, FieldId, ShapedBitmap};
use p2g_graph::spec::{AgeExpr, IndexSel, KernelSpec};
use p2g_graph::{KernelId, ProgramSpec};

use crate::events::{Event, StoreEvent};
use crate::instance::DispatchUnit;
use crate::options::{KernelOptions, RunLimits};
use crate::shard::{ShardGc, ShardPlan};

/// Shared handle to the node's fields.
pub type SharedFields = Arc<Vec<RwLock<Field>>>;

/// Age-watch callback: `(age, poisoned)` fired on the analyzer thread when
/// every instance of the watched kernel at `age` has completed (or been
/// poisoned), in strictly increasing age order.
pub type AgeWatchFn = Arc<dyn Fn(u64, bool) + Send + Sync>;

/// A registered age watch: a frontier over one kernel's completed ages.
struct AgeWatch {
    kernel: KernelId,
    frontier: u64,
    callback: AgeWatchFn,
}

/// How the incremental path accounts one fetch declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchKind {
    /// Every dimension is `All`: no counters; the fetch is satisfied when
    /// the view is complete and its extents settled (a gate).
    WholeField,
    /// No `All` dimension: the fetch selects exactly one element per
    /// instance; one counter unit.
    Pointwise,
    /// `Var` and `All` dimensions only: a row/slab per instance. Counters
    /// track the slab's unaccounted elements; the `All` extents must also
    /// be settled (a gate), and extent growth bumps every counter by the
    /// slab growth.
    RowLike,
}

/// Sharded-analyzer scope ([`crate::shard`]): the slice of the
/// `(kernel, age)` space this analyzer instance owns, plus the shared
/// cross-shard GC frontiers.
struct ShardScope {
    plan: Arc<ShardPlan>,
    shard: usize,
    gc: Arc<ShardGc>,
}

/// Event-derived knowledge of one (field, age): the extents seen so far and
/// which elements have been accounted into pending tables.
struct FieldView {
    extents: Extents,
    accounted: Bitmap,
}

/// Remaining-dependency counters for one (kernel, age): one slot per
/// instance of the (current) instance space.
struct PendingTable {
    /// Index-variable ranges the counters are laid out against (row-major).
    ranges: Extents,
    /// Unaccounted fetch elements per instance; zero ⇒ dispatchable once
    /// the gates open.
    remaining: Vec<u32>,
    /// Cached conjunction of the kernel's whole-field/settledness gates at
    /// this age.
    gates_open: bool,
}

/// See module docs.
pub struct DependencyAnalyzer {
    spec: Arc<ProgramSpec>,
    options: Vec<KernelOptions>,
    fused_consumers: HashSet<KernelId>,
    fields: SharedFields,
    limits: RunLimits,
    /// Instances already dispatched (or held), per (kernel, age).
    dispatched: HashMap<(u32, u64), ShapedBitmap>,
    /// Kernels consuming each field (deduplicated), indexed by field.
    consumers: Vec<Vec<KernelId>>,
    /// For each kernel, the (fetch, dim) binding each index var's range.
    bindings: Vec<Vec<(usize, usize)>>,
    /// Per kernel, per fetch: how the incremental path accounts it.
    fetch_kinds: Vec<Vec<FetchKind>>,
    /// Kernels the incremental path covers; the rest use the
    /// enumerate-and-check oracle path.
    eligible: Vec<bool>,
    /// Event-derived (field, age) views — extents + accounted elements.
    views: HashMap<(u32, u64), FieldView>,
    /// Ages with a view, per field (replaces resident-age field reads on
    /// the hot path).
    view_ages: Vec<BTreeSet<u64>>,
    /// Pending-instance tables, per (kernel, age).
    tables: HashMap<(u32, u64), PendingTable>,
    /// Ages with a pending table, per kernel (constant-age fetch fan-out).
    table_ages: Vec<BTreeSet<u64>>,
    /// Ordered kernels: the age currently allowed to dispatch.
    ordered_next: HashMap<u32, u64>,
    /// Ordered kernels: units dispatched but not completed at the current
    /// age.
    ordered_outstanding: HashMap<u32, usize>,
    /// Ordered kernels: units held for future ages.
    held: HashMap<u32, BTreeMap<u64, Vec<DispatchUnit>>>,
    /// Highest age stored per field, for GC.
    field_max_age: Vec<u64>,
    /// Distributed mode: only these kernels run on this node. `None` runs
    /// everything (single-node mode).
    assigned: Option<HashSet<KernelId>>,
    /// Expected extents per (field, age) dimension, derived by propagating
    /// index-variable ranges from fetched fields to stored fields (the
    /// paper: "these extents are then propagated to the respective fields
    /// impacted by this resize"). Without this, a whole-field fetch of an
    /// implicitly-sized field could observe a transiently-complete prefix.
    expected_extents: HashMap<(u32, u64), Vec<Option<usize>>>,
    /// Kernel instances completed (UnitDone), per (kernel, age) — drives
    /// consumer-aware garbage collection.
    completed: HashMap<(u32, u64), usize>,
    /// Monotone cache: the smallest age of each kernel that is not yet
    /// fully dispatched + completed.
    gc_floor: HashMap<u32, u64>,
    /// Store elements absorbed by write-once dedup (duplicate remote
    /// deliveries, recovery re-injection). Drained by the analyzer loop
    /// into the node's instruments.
    deduped: u64,
    /// Poisoned store regions per (field, age): the would-have-been stores
    /// of instances that exhausted their retry budget under
    /// [`crate::options::ExhaustPolicy::Poison`]. Regions may contain
    /// `All` selectors (intersection tests are `All`-aware), so they need
    /// no extents to be meaningful.
    poison: HashMap<(u32, u64), Vec<p2g_field::Region>>,
    /// Instances poisoned per (kernel, age) — the dedupe set and the
    /// oracle-checkable record of exactly which instances were skipped.
    poisoned_instances: HashMap<(u32, u64), HashSet<Vec<usize>>>,
    /// Worklist of instances awaiting poisoning (transitive propagation).
    pending_poison: Vec<(KernelId, u64, Vec<usize>)>,
    /// Newly poisoned instances since the last drain, for the node's
    /// instruments.
    poisoned_drain: Vec<(KernelId, u64, Vec<usize>)>,
    /// True once anything was poisoned: the run terminates
    /// [`crate::instrument::Termination::Degraded`] instead of `Quiescent`.
    degraded: bool,
    /// Tracer handle + the analyzer thread's buffer id: remote stores are
    /// applied here (not on a worker), so their `StoreApplied` events are
    /// recorded here too.
    tracer: Option<(Arc<crate::trace::Tracer>, u32)>,
    /// Registered age watches (session output notification).
    watches: Vec<AgeWatch>,
    /// Smallest un-collected age per field: the last GC limit applied.
    /// Gates the analyzer-state prune to once per limit advance.
    field_gc_floor: Vec<u64>,
    /// `(field, age)` slabs retired by GC since the last drain.
    gc_collected: u64,
    /// Sharded mode: this instance's slice of the `(kernel, age)` space.
    /// `None` (single-thread mode) behaves exactly as before sharding.
    scope: Option<ShardScope>,
    /// Sharded mode: `(field, age)` keys whose expected extents grew since
    /// the last [`DependencyAnalyzer::take_outbox`] — broadcast to peers.
    outbox_keys: Vec<(u32, u64)>,
    /// Adaptive mode: the online chunk-size controller consulted (instead
    /// of the static `chunk_size`) when chunking runnable instances.
    granularity: Option<Arc<crate::granularity::GranularityController>>,
}

impl DependencyAnalyzer {
    /// Build the analyzer for a program.
    pub fn new(
        spec: Arc<ProgramSpec>,
        options: Vec<KernelOptions>,
        fused_consumers: HashSet<KernelId>,
        fields: SharedFields,
        limits: RunLimits,
    ) -> DependencyAnalyzer {
        let nf = spec.fields.len();
        let nk = spec.kernels.len();
        let mut consumers: Vec<Vec<KernelId>> = vec![Vec::new(); nf];
        {
            let mut seen: Vec<HashSet<u32>> = vec![HashSet::new(); nf];
            for k in &spec.kernels {
                for fe in &k.fetches {
                    if seen[fe.field.idx()].insert(k.id.0) {
                        consumers[fe.field.idx()].push(k.id);
                    }
                }
            }
        }
        let bindings =
            spec.kernels
                .iter()
                .map(|k| {
                    (0..k.index_vars as usize)
                        .map(|v| {
                            k.fetches
                                .iter()
                                .enumerate()
                                .find_map(|(fi, fe)| {
                                    fe.dims.iter().position(|d| {
                                    matches!(d, IndexSel::Var(iv) if iv.0 as usize == v)
                                })
                                .map(|dim| (fi, dim))
                                })
                                .expect("validated: every index var bound by a fetch")
                        })
                        .collect()
                })
                .collect();
        let mut eligible = vec![true; nk];
        let mut fetch_kinds: Vec<Vec<FetchKind>> = Vec::with_capacity(nk);
        for k in &spec.kernels {
            let mut kinds = Vec::with_capacity(k.fetches.len());
            for fe in &k.fetches {
                let has_all = fe.dims.iter().any(|d| matches!(d, IndexSel::All));
                let has_const = fe.dims.iter().any(|d| matches!(d, IndexSel::Const(_)));
                let kind = if !has_all {
                    FetchKind::Pointwise
                } else if fe.dims.iter().all(|d| matches!(d, IndexSel::All)) {
                    FetchKind::WholeField
                } else if !has_const {
                    FetchKind::RowLike
                } else {
                    // Fixed index mixed with a whole dimension: the stored
                    // coordinate → instance inversion doesn't cover it.
                    eligible[k.id.idx()] = false;
                    FetchKind::Pointwise
                };
                kinds.push(kind);
            }
            fetch_kinds.push(kinds);
        }
        DependencyAnalyzer {
            options,
            fused_consumers,
            fields,
            limits,
            dispatched: HashMap::new(),
            consumers,
            bindings,
            fetch_kinds,
            eligible,
            views: HashMap::new(),
            view_ages: vec![BTreeSet::new(); nf],
            tables: HashMap::new(),
            table_ages: vec![BTreeSet::new(); nk],
            ordered_next: HashMap::new(),
            ordered_outstanding: HashMap::new(),
            held: HashMap::new(),
            field_max_age: vec![0; nf],
            assigned: None,
            expected_extents: HashMap::new(),
            completed: HashMap::new(),
            gc_floor: HashMap::new(),
            deduped: 0,
            poison: HashMap::new(),
            poisoned_instances: HashMap::new(),
            pending_poison: Vec::new(),
            poisoned_drain: Vec::new(),
            degraded: false,
            tracer: None,
            watches: Vec::new(),
            field_gc_floor: vec![0; nf],
            gc_collected: 0,
            scope: None,
            outbox_keys: Vec::new(),
            granularity: None,
            spec,
        }
    }

    /// Attach the run's granularity controller: [`Self::chunk_size_for`]
    /// then follows its live per-kernel targets.
    pub fn set_granularity(
        &mut self,
        controller: Arc<crate::granularity::GranularityController>,
    ) {
        self.granularity = Some(controller);
    }

    /// The chunk size to cut `kernel`'s runnable instances into right now:
    /// the controller's live target when adaptation covers this kernel,
    /// the static [`KernelOptions::chunk_size`] otherwise.
    fn chunk_size_for(&self, kernel: KernelId) -> usize {
        if let Some(g) = &self.granularity {
            let c = g.chunk_for(kernel);
            if c > 0 {
                return c;
            }
        }
        self.options[kernel.idx()].chunk_size.max(1)
    }

    /// Drain the dedup tally accumulated since the last call.
    pub fn take_deduped(&mut self) -> u64 {
        std::mem::take(&mut self.deduped)
    }

    /// Drain the instances poisoned since the last call.
    pub fn take_poisoned(&mut self) -> Vec<(KernelId, u64, Vec<usize>)> {
        std::mem::take(&mut self.poisoned_drain)
    }

    /// True once any instance was poisoned — the run is degraded.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Restrict dispatch to an assigned kernel subset (distributed mode).
    pub fn set_assigned(&mut self, assigned: HashSet<KernelId>) {
        self.assigned = Some(assigned);
    }

    /// Attach the node's tracer (with the analyzer thread's buffer id) so
    /// remote-store applications are traced.
    pub fn set_tracer(&mut self, tracer: Arc<crate::trace::Tracer>, tid: u32) {
        self.tracer = Some((tracer, tid));
    }

    /// Watch `kernel`'s age frontier: the callback fires once per age, in
    /// increasing order, when every instance of that age has completed or
    /// been poisoned. The session layer watches the terminal kernel to
    /// learn when a frame's output is ready.
    pub fn set_age_watch(&mut self, kernel: KernelId, callback: AgeWatchFn) {
        self.watches.push(AgeWatch {
            kernel,
            frontier: 0,
            callback,
        });
    }

    /// Drain the GC tally accumulated since the last call.
    pub fn take_gc_collected(&mut self) -> u64 {
        std::mem::take(&mut self.gc_collected)
    }

    /// Enter sharded mode: this analyzer owns shard `shard` of `plan` and
    /// coordinates age GC through the shared frontiers in `gc`.
    pub fn set_shard_scope(&mut self, plan: Arc<ShardPlan>, shard: usize, gc: Arc<ShardGc>) {
        self.scope = Some(ShardScope { plan, shard, gc });
    }

    /// Drain the expected-extents broadcasts accumulated since the last
    /// call (sharded mode; always empty otherwise). The caller must deliver
    /// these to every peer shard *before* dispatching the units returned by
    /// the same `on_event` call: per-shard FIFO delivery then guarantees an
    /// expectation arrives ahead of any store produced under it.
    pub fn take_outbox(&mut self) -> Vec<Event> {
        if self.outbox_keys.is_empty() {
            return Vec::new();
        }
        let mut keys = std::mem::take(&mut self.outbox_keys);
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter()
            .filter_map(|(f, a)| {
                self.expected_extents
                    .get(&(f, a))
                    .map(|dims| Event::ShardExpect {
                        field: FieldId(f),
                        age: Age(a),
                        dims: dims.clone(),
                    })
            })
            .collect()
    }

    /// True when this analyzer owns `(kid, a)` — always, outside sharded
    /// mode.
    fn owns(&self, kid: KernelId, a: u64) -> bool {
        match &self.scope {
            None => true,
            Some(sc) => sc.plan.owns(kid, a, sc.shard),
        }
    }

    /// Live `(field, age)` views — the analyzer's notion of resident ages,
    /// sampled by the node's instruments for the peak-residency gauge.
    pub fn live_ages(&self) -> usize {
        self.views.len()
    }

    /// True when this node runs the given kernel.
    fn runs(&self, kid: KernelId) -> bool {
        self.assigned.as_ref().is_none_or(|s| s.contains(&kid))
    }

    /// Whether instances of `k` may exist at age `a` under the run limits.
    fn age_allowed(&self, k: &KernelSpec, a: u64) -> bool {
        if !k.has_age_var {
            return a == 0;
        }
        match self.limits.max_ages {
            Some(m) => a < m,
            None => true,
        }
    }

    /// Initial dispatch units: every source kernel's first instance.
    pub fn seed(&mut self) -> Vec<DispatchUnit> {
        let mut out = Vec::new();
        let source_ids: Vec<KernelId> = self
            .spec
            .kernels
            .iter()
            .filter(|k| k.is_source() && !self.fused_consumers.contains(&k.id))
            .map(|k| k.id)
            .filter(|&id| self.runs(id) && self.owns(id, 0))
            .collect();
        for id in source_ids {
            if !self.age_allowed(self.spec.kernel(id), 0) {
                continue;
            }
            if self.mark_dispatched(id, 0, &[]) {
                self.emit(DispatchUnit::new(id, Age(0), vec![vec![]]), &mut out);
            }
        }
        out
    }

    /// Handle one event, returning newly runnable dispatch units. An
    /// error (write-once conflict applying a remote store) aborts the run.
    pub fn on_event(&mut self, ev: &Event) -> Result<Vec<DispatchUnit>, p2g_field::FieldError> {
        let mut out = Vec::new();
        match ev {
            Event::Store(se) => self.on_store(se, &mut out),
            Event::RemoteStore {
                field,
                age,
                region,
                buffer,
            } => {
                // Apply the forwarded store to the local replica, then
                // treat it like a local store. Write-once dedup makes the
                // apply idempotent, so at-least-once delivery (retries,
                // duplicates, recovery re-injection) is safe; a
                // *conflicting* duplicate value means two nodes produced
                // the same element differently — a partitioning bug
                // surfaced deterministically.
                let (o, resolved, extents) = {
                    let mut f = self.fields[field.idx()].write();
                    let o = f.store_idempotent(*age, region, buffer)?;
                    let extents = f.extents(*age).cloned().expect("age resident after store");
                    let resolved = region.resolved_against(&extents);
                    (o, resolved, extents)
                };
                self.deduped += o.deduped as u64;
                if let Some((t, tid)) = &self.tracer {
                    t.record(
                        *tid,
                        crate::trace::store_event(
                            None,
                            *field,
                            *age,
                            resolved.clone(),
                            o.stored,
                            o.deduped,
                            o.age_complete,
                        ),
                    );
                }
                let se = StoreEvent {
                    field: *field,
                    age: *age,
                    region: resolved,
                    extents,
                    elements: o.stored,
                    age_complete: o.age_complete,
                    resized: o.resized,
                    inline_dispatched: None,
                };
                self.on_store(&se, &mut out);
            }
            Event::Reassign { kernels } => {
                self.assigned = Some(kernels.clone());
                // Seed newly-owned source kernels (the dispatched set
                // dedups sources this node already ran) and rescan
                // resident field data for instances that are now ours.
                let seeded = self.seed();
                out.extend(seeded);
                self.rescan(&mut out);
            }
            Event::UnitDone {
                kernel,
                age,
                instances,
                stored_any,
                retried,
            } => self.on_unit_done(*kernel, *age, *instances, *stored_any, *retried, &mut out),
            Event::KernelFailure {
                kernel,
                age,
                indices,
                ..
            } => self.pending_poison.push((*kernel, age.0, indices.clone())),
            Event::Failure(_) => {}
            Event::ShardExpect { field, age, dims } => self.on_shard_expect(*field, *age, dims),
        }
        self.process_poison(&mut out);
        self.advance_watches();
        Ok(out)
    }

    /// Fire every watch whose next age is now fully finished. Poisoned
    /// instances count as finished (with the poisoned flag), so a dropped
    /// frame still produces an (empty) notification instead of a stall.
    fn advance_watches(&mut self) {
        for i in 0..self.watches.len() {
            loop {
                let (kid, a) = {
                    let w = &self.watches[i];
                    (w.kernel, w.frontier)
                };
                if !self.watch_age_done(kid, a) {
                    break;
                }
                let poisoned = self
                    .poisoned_instances
                    .get(&(kid.0, a))
                    .is_some_and(|s| !s.is_empty());
                let callback = self.watches[i].callback.clone();
                self.watches[i].frontier = a + 1;
                callback(a, poisoned);
            }
        }
    }

    /// The watch done-predicate, mirroring [`Self::advance_ordered`]: the
    /// instance space is known, fully dispatched, and fully completed.
    fn watch_age_done(&mut self, kid: KernelId, a: u64) -> bool {
        if !self.age_allowed(self.spec.kernel(kid), a) {
            return false;
        }
        let Some(space) = self.instance_space(kid, a) else {
            return false;
        };
        let d = self.dispatched.get(&(kid.0, a)).map_or(0, |s| s.count());
        let c = *self.completed.get(&(kid.0, a)).unwrap_or(&0);
        d >= space && c >= d
    }

    /// Merge a peer shard's expected-extents broadcast. Expectations only
    /// ever grow, and growth can only *close* settledness gates, so a
    /// changed merge re-derives the affected tables' cached gate state;
    /// re-opening (with its table sweep) happens on the store path as
    /// usual — a broadcast carries no new data elements, so it can never
    /// make an instance newly runnable.
    fn on_shard_expect(&mut self, field: FieldId, age: Age, dims: &[Option<usize>]) {
        let ndim = self.spec.fields[field.idx()].ndim;
        let entry = self
            .expected_extents
            .entry((field.0, age.0))
            .or_insert_with(|| vec![None; ndim]);
        let mut changed = false;
        for (slot, d) in entry.iter_mut().zip(dims) {
            if let Some(n) = d {
                if slot.is_none_or(|cur| cur < *n) {
                    *slot = Some(*n);
                    changed = true;
                }
            }
        }
        if !changed {
            return;
        }
        for kid in self.consumers[field.idx()].clone() {
            if self.fused_consumers.contains(&kid) {
                continue;
            }
            for a2 in self.affected_ages(kid, field, age) {
                let key = (kid.0, a2);
                if self.tables.contains_key(&key) && !self.table_gate(kid, a2) {
                    self.tables.get_mut(&key).expect("checked above").gates_open = false;
                }
            }
        }
    }

    /// Record a worker-side inline dispatch ([`crate::shard`] fast path):
    /// re-derive the consumer instance the worker ran from its single
    /// pointwise fetch — the same Var mapping the worker used — and mark it
    /// dispatched before any accounting, so the analyzer-side dispatch
    /// paths dedup against it.
    fn note_inline_dispatch(&mut self, cid: KernelId, se: &StoreEvent) {
        let k = self.spec.kernel(cid);
        let Some(fe) = k.fetches.first() else { return };
        let AgeExpr::Rel(t) = fe.age else { return };
        if (se.age.0 as i64) < t {
            return;
        }
        let ca = (se.age.0 as i64 - t) as u64;
        if !self.owns(cid, ca) {
            return; // only the owning shard tracks this instance
        }
        let Ok(spans) = se.region.resolve(&se.extents) else {
            return;
        };
        if spans.iter().any(|&(_, l)| l != 1) {
            return; // the fast path only fires on single-point stores
        }
        let coord: Vec<usize> = spans.iter().map(|&(s, _)| s).collect();
        let mut idx = vec![0usize; k.index_vars as usize];
        for (d, sel) in fe.dims.iter().enumerate() {
            if let IndexSel::Var(v) = sel {
                idx[v.0 as usize] = coord[d];
            }
        }
        self.mark_dispatched(cid, ca, &idx);
    }

    /// Drain the poison worklist: each entry poisons one instance, which
    /// may queue its transitive dependents back onto the worklist.
    fn process_poison(&mut self, out: &mut Vec<DispatchUnit>) {
        while let Some((kid, a, idx)) = self.pending_poison.pop() {
            self.poison_one(kid, a, idx, out);
        }
    }

    /// Poison one instance: record it, mark it dispatched + completed (it
    /// will never run, but quiescence and ordered/GC accounting must see it
    /// as finished), poison its would-have-been store regions, and queue
    /// every dependent instance those regions feed.
    fn poison_one(&mut self, kid: KernelId, a: u64, idx: Vec<usize>, out: &mut Vec<DispatchUnit>) {
        if !self
            .poisoned_instances
            .entry((kid.0, a))
            .or_default()
            .insert(idx.clone())
        {
            return;
        }
        self.degraded = true;
        // Sharded mode: the traversal itself is replicated on every shard
        // (KernelFailure is broadcast and the walk is deterministic from
        // the spec), but completion accounting and the instrument drain
        // must happen exactly once — on the owning shard.
        if self.owns(kid, a) {
            self.poisoned_drain.push((kid, a, idx.clone()));
            // A transitively poisoned instance was never dispatched; a
            // directly failed one already was (mark_dispatched dedups).
            // Either way it counts as completed — its UnitDone (if any)
            // reported successes only.
            self.mark_dispatched(kid, a, &idx);
            *self.completed.entry((kid.0, a)).or_insert(0) += 1;
        }

        let k = self.spec.kernel(kid).clone();
        let fused = self.options[kid.idx()].fuse_consumer;
        for st in &k.stores {
            let ta = st.age.resolve(Age(a));
            let region = crate::program::resolve_region(&st.dims, &idx);
            self.poison
                .entry((st.field.0, ta.0))
                .or_default()
                .push(region.clone());
            // Non-fused consumers: invert the poisoned region into their
            // instance spaces.
            for cid in self.consumers[st.field.idx()].clone() {
                if self.fused_consumers.contains(&cid) {
                    continue;
                }
                for ca in self.affected_ages(cid, st.field, ta) {
                    self.queue_poison_dependents(cid, ca, st.field, ta, &region);
                }
            }
            // A fused consumer never dispatches separately: derive its
            // instance directly from the producer's store pattern (the
            // same Var mapping the worker uses to run it inline).
            if let Some(cid) = fused {
                let cspec = self.spec.kernel(cid);
                if let Some(fe) = cspec.fetches.first() {
                    if fe.field == st.field {
                        for ca in self.affected_ages(cid, st.field, ta) {
                            let mut cidx = vec![0usize; cspec.index_vars as usize];
                            for (sel_p, sel_c) in st.dims.iter().zip(&fe.dims) {
                                if let (IndexSel::Var(pv), IndexSel::Var(cv)) = (sel_p, sel_c) {
                                    cidx[cv.0 as usize] = idx[pv.0 as usize];
                                }
                            }
                            self.pending_poison.push((cid, ca, cidx));
                        }
                    }
                }
            }
        }

        // A poisoned source instance must not end the stream: later ages
        // are independent reads (frame dropping, not stream truncation).
        if k.is_source() && k.has_age_var {
            let next = a + 1;
            if self.age_allowed(&k, next)
                && self.owns(kid, next)
                && self.mark_dispatched(kid, next, &[])
            {
                self.emit(DispatchUnit::new(kid, Age(next), vec![vec![]]), out);
            }
        }
        // The poisoned instance may have been the one gating an ordered
        // kernel's age advancement. Ordered kernels are pinned, so only
        // their home shard holds the gating state.
        if self.options[kid.idx()].ordered && self.owns(kid, a) {
            self.advance_ordered(kid, out);
        }
    }

    /// Queue for poisoning every instance of `cid` at age `ca` whose fetch
    /// of (`field`, `fa`) intersects the poisoned `region`. Instance ranges
    /// come from [`DependencyAnalyzer::known_extent`]; when a binding range
    /// is still unknown the scan is skipped — [`DependencyAnalyzer::
    /// ensure_table`] re-scans when the space becomes known.
    fn queue_poison_dependents(
        &mut self,
        cid: KernelId,
        ca: u64,
        field: FieldId,
        fa: Age,
        region: &p2g_field::Region,
    ) {
        let k = self.spec.kernel(cid);
        if k.is_source() || !self.age_allowed(k, ca) {
            return;
        }
        let nvars = k.index_vars as usize;
        let mut ranges = Vec::with_capacity(nvars);
        for &(fi, dim) in &self.bindings[cid.idx()] {
            let fe = &k.fetches[fi];
            let bfa = fe.age.resolve(Age(ca));
            match self.known_extent(fe.field, bfa, dim) {
                Some(r) => ranges.push(r),
                None => return,
            }
        }
        if ranges.contains(&0) {
            return;
        }
        // Which fetches of cid read the poisoned (field, age)?
        let hit_fetches: Vec<Vec<IndexSel>> = k
            .fetches
            .iter()
            .filter(|fe| fe.field == field && fe.age.resolve(Age(ca)) == fa)
            .map(|fe| fe.dims.clone())
            .collect();
        if hit_fetches.is_empty() {
            return;
        }
        let mut idx = vec![0usize; nvars];
        loop {
            let hits = hit_fetches
                .iter()
                .any(|dims| fetch_hits_region(dims, &idx, region));
            if hits
                && !self
                    .poisoned_instances
                    .get(&(cid.0, ca))
                    .is_some_and(|s| s.contains(&idx))
            {
                self.pending_poison.push((cid, ca, idx.clone()));
            }
            // Advance odometer.
            let mut d = nvars;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < ranges[d] {
                    break;
                }
                idx[d] = 0;
                if d == 0 {
                    return;
                }
            }
        }
    }

    /// Re-scan the poison map against (kid, a)'s fetches — called when the
    /// kernel's instance space first becomes (or grows) known, catching
    /// dependents [`DependencyAnalyzer::queue_poison_dependents`] could not
    /// enumerate earlier.
    fn poison_scan_kernel(&mut self, kid: KernelId, a: u64) {
        if self.poison.is_empty() {
            return;
        }
        let k = self.spec.kernel(kid).clone();
        for fe in &k.fetches {
            let fa = fe.age.resolve(Age(a));
            let Some(regions) = self.poison.get(&(fe.field.0, fa.0)).cloned() else {
                continue;
            };
            for region in regions {
                self.queue_poison_dependents(kid, a, fe.field, fa, &region);
            }
        }
    }

    /// The best-known extent of (field, age) along dimension `d`:
    /// statically declared extents, then propagated expectations, then the
    /// event-derived view. `None` while genuinely unknown.
    fn known_extent(&self, field: FieldId, age: Age, d: usize) -> Option<usize> {
        if let Some(ext) = &self.spec.fields[field.idx()].initial_extents {
            return Some(ext.dim(d));
        }
        if let Some(exp) = self.expected_extents.get(&(field.0, age.0)) {
            if let Some(n) = exp[d] {
                return Some(n);
            }
        }
        self.views.get(&(field.0, age.0)).map(|v| v.extents.dim(d))
    }

    /// Re-derive runnable instances from all resident field data — used
    /// after a [`Event::Reassign`] so kernels this node just inherited
    /// catch up on data that arrived while another node owned them, and as
    /// the recovery/correctness oracle for the incremental path. Views are
    /// resynchronized from field ground truth (events this analyzer never
    /// saw may have been replayed into the fields), pending tables are
    /// dropped — future store events recreate them from the synced views —
    /// and the enumerate-and-check path dispatches everything currently
    /// runnable. The dispatched set makes this idempotent.
    fn rescan(&mut self, out: &mut Vec<DispatchUnit>) {
        // Resync views with the fields.
        self.views.clear();
        for va in &mut self.view_ages {
            va.clear();
        }
        for fi in 0..self.fields.len() {
            let field = self.fields[fi].read();
            for age in field.resident_ages().collect::<Vec<_>>() {
                let Some(ad) = field.age_data(age) else {
                    continue;
                };
                self.views.insert(
                    (fi as u32, age.0),
                    FieldView {
                        extents: ad.extents().clone(),
                        accounted: ad.written().clone(),
                    },
                );
                self.view_ages[fi].insert(age.0);
            }
        }
        // Drop stale pending tables. Anything runnable *now* is dispatched
        // below; anything that becomes runnable later necessarily gets a
        // store event, which recreates its table from the synced views.
        self.tables.clear();
        for ta in &mut self.table_ages {
            ta.clear();
        }

        for fi in 0..self.fields.len() {
            let field = FieldId(fi as u32);
            let resident: Vec<u64> = self.view_ages[fi].iter().copied().collect();
            let consumer_ids = self.consumers[fi].clone();
            for &kid in &consumer_ids {
                if self.fused_consumers.contains(&kid) {
                    continue;
                }
                for &ra in &resident {
                    let ages = self.affected_ages(kid, field, Age(ra));
                    let mut changed = Vec::new();
                    self.propagate_extents(kid, &ages, &mut changed);
                    if self.runs(kid) {
                        for a in ages {
                            self.try_generate(kid, a, out);
                        }
                    }
                }
            }
        }
    }

    fn on_store(&mut self, se: &StoreEvent, out: &mut Vec<DispatchUnit>) {
        // Worker-side inline dispatch: mark before anything else so every
        // analyzer-side dispatch path dedups against it.
        if let Some(cid) = se.inline_dispatched {
            self.note_inline_dispatch(cid, se);
        }
        // Track the field's frontier and garbage collect behind it.
        let fmax = &mut self.field_max_age[se.field.idx()];
        if se.age.0 > *fmax {
            *fmax = se.age.0;
        }
        let fmax = *fmax;
        if let Some(w) = self.limits.gc_window {
            if self.scope.is_none() {
                if fmax > w {
                    let limit = self.gc_limit(se.field, fmax - w);
                    // The prune runs once per limit advance, not per store
                    // event: retire the field slabs, then every piece of
                    // analyzer state scoped below the new floor — streaming
                    // runs would otherwise grow views/tables/dispatched/
                    // completed maps without bound even though the field
                    // data itself is collected.
                    if limit > self.field_gc_floor[se.field.idx()] {
                        let collected = self.fields[se.field.idx()]
                            .write()
                            .collect_below(Age(limit));
                        self.field_gc_floor[se.field.idx()] = limit;
                        self.gc_collected += collected as u64;
                        if let Some((t, tid)) = &self.tracer {
                            t.record(
                                *tid,
                                crate::trace::TraceEvent::AgeRetired {
                                    field: se.field,
                                    below: limit,
                                    collected,
                                },
                            );
                        }
                        let f = se.field.0;
                        self.views.retain(|&(vf, va), _| vf != f || va >= limit);
                        self.view_ages[se.field.idx()].retain(|&a| a >= limit);
                        self.poison.retain(|&(pf, pa), _| pf != f || pa >= limit);
                        self.expected_extents
                            .retain(|&(ef, ea), _| ef != f || ea >= limit);
                        self.prune_kernel_state();
                    }
                }
            } else {
                // Sharded GC: retirement goes through the shared floor so
                // exactly one shard collects the field slabs; every shard
                // then prunes its local state as it observes the floor
                // advance. Each shard's window bound uses its own frontier
                // view; the shared `claim_retire` fetch_max makes the
                // outcome the max over shards, and `gc_limit` clamps by the
                // *global* min consumer frontier, so no live age retires.
                let gc = self.scope.as_ref().expect("sharded").gc.clone();
                if fmax > w {
                    let limit = self.gc_limit(se.field, fmax - w);
                    if limit > 0 && gc.claim_retire(se.field, limit) < limit {
                        let collected = self.fields[se.field.idx()]
                            .write()
                            .collect_below(Age(limit));
                        self.gc_collected += collected as u64;
                        if let Some((t, tid)) = &self.tracer {
                            t.record(
                                *tid,
                                crate::trace::TraceEvent::AgeRetired {
                                    field: se.field,
                                    below: limit,
                                    collected,
                                },
                            );
                        }
                    }
                }
                let floor = gc.retire_floor(se.field);
                if floor > self.field_gc_floor[se.field.idx()] {
                    self.field_gc_floor[se.field.idx()] = floor;
                    let f = se.field.0;
                    self.views.retain(|&(vf, va), _| vf != f || va >= floor);
                    self.view_ages[se.field.idx()].retain(|&a| a >= floor);
                    self.poison.retain(|&(pf, pa), _| pf != f || pa >= floor);
                    self.expected_extents
                        .retain(|&(ef, ea), _| ef != f || ea >= floor);
                    self.prune_kernel_state();
                }
                // An event below the floor is stale (its slabs are gone);
                // rebuilding a view for it would leak state that no later
                // event prunes.
                if se.age.0 < self.field_gc_floor[se.field.idx()] {
                    return;
                }
            }
        }

        // Update this (field, age)'s view: union-grow the extents (worker
        // events can arrive out of store order) and remap the accounted
        // bitmap. Fresh elements are accounted *after* the pending tables
        // are brought up to date (step order prevents double-counting).
        let vkey = (se.field.0, se.age.0);
        let old_view_extents: Option<Extents> = match self.views.get_mut(&vkey) {
            Some(view) => {
                let old = view.extents.clone();
                let target = view.extents.union(&se.extents);
                if target != view.extents {
                    view.accounted = remap_for_resize(&view.accounted, &view.extents, &target);
                    view.extents = target;
                }
                Some(old)
            }
            None => {
                self.views.insert(
                    vkey,
                    FieldView {
                        extents: se.extents.clone(),
                        accounted: Bitmap::new(se.extents.len()),
                    },
                );
                self.view_ages[se.field.idx()].insert(se.age.0);
                None
            }
        };

        // The kernel ages this store may affect, per consumer.
        let consumer_ids = self.consumers[se.field.idx()].clone();
        let mut affected: Vec<(KernelId, Vec<u64>)> = Vec::with_capacity(consumer_ids.len());
        for &kid in &consumer_ids {
            if self.fused_consumers.contains(&kid) {
                continue;
            }
            affected.push((kid, self.affected_ages(kid, se.field, se.age)));
        }

        // Propagate expected extents downstream (cluster-global knowledge,
        // so it ignores the node-local kernel assignment). Growth of an
        // expectation can only *close* settledness gates, so the gates of
        // the changed fields' consumers are rechecked below.
        let mut expected_changed: Vec<(u32, u64)> = Vec::new();
        for (kid, ages) in &affected {
            self.propagate_extents(*kid, ages, &mut expected_changed);
        }
        let mut gate_check: HashSet<(u32, u64)> = HashSet::new();
        expected_changed.sort_unstable();
        expected_changed.dedup();
        for (f, ta) in expected_changed {
            for kid2 in self.consumers[f as usize].clone() {
                if self.fused_consumers.contains(&kid2) {
                    continue;
                }
                for a2 in self.affected_ages(kid2, FieldId(f), Age(ta)) {
                    gate_check.insert((kid2.0, a2));
                }
            }
        }

        // Bring consumer pending tables up to date: create lazily, bump
        // row-like counters for slab growth, grow the instance space for
        // binding-extent growth. Ineligible kernels use the oracle path.
        for (kid, ages) in &affected {
            if !self.eligible[kid.idx()] {
                if self.runs(*kid) {
                    for &a in ages {
                        self.try_generate(*kid, a, out);
                    }
                }
                continue;
            }
            for &a in ages {
                if !self.age_allowed(self.spec.kernel(*kid), a) {
                    continue;
                }
                self.ensure_table(*kid, a, se, old_view_extents.as_ref());
                gate_check.insert((kid.0, a));
            }
        }

        // Decrement phase: account each fresh element and decrement the
        // counters of every instance whose fetch regions contain it, via
        // the inverted fetch patterns. Collect counters that hit zero.
        let mut zeros: HashMap<(u32, u64), Vec<usize>> = HashMap::new();
        self.account_and_decrement(se, &mut zeros);

        // Gate recompute + dispatch. A closed→open gate transition sweeps
        // the whole table (zeros accumulated while closed, initial zeros);
        // an open gate dispatches this event's transitions; a closed gate
        // drops them (a future sweep picks them up).
        let mut keys: Vec<(u32, u64)> = gate_check
            .into_iter()
            .chain(zeros.keys().copied())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            if !self.tables.contains_key(&key) {
                continue;
            }
            let open = self.table_gate(KernelId(key.0), key.1);
            let table = self.tables.get_mut(&key).expect("checked above");
            let was_open = table.gates_open;
            table.gates_open = open;
            if !open {
                continue;
            }
            if !was_open {
                self.sweep_table(KernelId(key.0), key.1, out);
            } else if let Some(lins) = zeros.remove(&key) {
                self.dispatch_ready(KernelId(key.0), key.1, lins, out);
            }
        }
    }

    /// Create or update the pending table of (kid, a) for a store on
    /// `se.field`: bump row-like counters for slab growth of the stored
    /// view, then grow the instance space if a binding extent grew. Tables
    /// are created once every binding fetch has a view; counters are
    /// initialized from the views *before* this event's elements are
    /// accounted, so the decrement phase sees them as pending.
    fn ensure_table(&mut self, kid: KernelId, a: u64, se: &StoreEvent, old_ext: Option<&Extents>) {
        let k = self.spec.kernel(kid);
        if k.is_source() || !self.owns(kid, a) {
            return;
        }
        let key = (kid.0, a);
        if !self.tables.contains_key(&key) {
            let Some(ranges) = self.table_ranges(kid, a) else {
                return; // a binding view is still missing
            };
            let len = ranges.len();
            let mut remaining = vec![0u32; len];
            for (lin, slot) in remaining.iter_mut().enumerate() {
                let idx = ranges.delinearize(lin);
                *slot = self.instance_missing(kid, a, &idx);
            }
            self.tables.insert(
                key,
                PendingTable {
                    ranges,
                    remaining,
                    // Always start closed; the caller's gate recompute
                    // performs the initial sweep if the gates are open.
                    gates_open: false,
                },
            );
            self.table_ages[kid.idx()].insert(a);
            // The instance space just became enumerable: dependents of any
            // earlier poison can now be found.
            self.poison_scan_kernel(kid, a);
            return;
        }

        // Slab growth: the stored view's extents grew, so every row-like
        // fetch of it now spans more elements — all of them unaccounted.
        // The bump applies uniformly to every instance (the slab shape
        // does not depend on the instance's fixed coordinates).
        let view_ext = self
            .views
            .get(&(se.field.0, se.age.0))
            .map(|v| v.extents.clone())
            .expect("view exists for the stored field");
        let grew = old_ext.is_none_or(|o| *o != view_ext);
        if grew {
            let mut bump = 0u64;
            for (fi, fe) in k.fetches.iter().enumerate() {
                if fe.field != se.field
                    || fe.age.resolve(Age(a)) != se.age
                    || self.fetch_kinds[kid.idx()][fi] != FetchKind::RowLike
                {
                    continue;
                }
                let new_slab: usize = fe
                    .dims
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, IndexSel::All))
                    .map(|(d, _)| view_ext.dim(d))
                    .product();
                let old_slab: usize = match old_ext {
                    None => 0,
                    Some(o) => fe
                        .dims
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| matches!(s, IndexSel::All))
                        .map(|(d, _)| o.dim(d))
                        .product(),
                };
                bump += (new_slab - old_slab) as u64;
            }
            if bump > 0 {
                let table = self.tables.get_mut(&key).expect("checked above");
                for slot in &mut table.remaining {
                    *slot += bump as u32;
                }
            }
        }

        // Instance-space growth: a binding extent grew. Old instances keep
        // their counters (remapped into the new row-major layout); new
        // instances are initialized from the views.
        if let Some(new_ranges) = self.table_ranges(kid, a) {
            let old_ranges = self.tables[&key].ranges.clone();
            if new_ranges != old_ranges {
                let target = old_ranges.union(&new_ranges);
                let mut remaining = vec![0u32; target.len()];
                for (lin, slot) in remaining.iter_mut().enumerate() {
                    let idx = target.delinearize(lin);
                    *slot = match old_ranges.linearize(&idx) {
                        Some(old_lin) => self.tables[&key].remaining[old_lin],
                        None => self.instance_missing(kid, a, &idx),
                    };
                }
                let table = self.tables.get_mut(&key).expect("checked above");
                table.ranges = target.clone();
                table.remaining = remaining;
                if let Some(bm) = self.dispatched.get_mut(&key) {
                    bm.grow(&target);
                }
                // New instances appeared: re-check them against the poison
                // map.
                self.poison_scan_kernel(kid, a);
            }
        }
    }

    /// The instance-space shape of (kid, a) from the binding fetches'
    /// views; `None` while some binding view is missing.
    fn table_ranges(&self, kid: KernelId, a: u64) -> Option<Extents> {
        let k = self.spec.kernel(kid);
        let mut dims = Vec::with_capacity(k.index_vars as usize);
        for &(fi, dim) in &self.bindings[kid.idx()] {
            let fe = &k.fetches[fi];
            let fa = fe.age.resolve(Age(a));
            let view = self.views.get(&(fe.field.0, fa.0))?;
            dims.push(view.extents.dim(dim));
        }
        Some(Extents(dims))
    }

    /// Count the unaccounted fetch elements of instance `idx` of (kid, a)
    /// against the current views — the initial value of its pending
    /// counter. Whole-field fetches contribute nothing (gates); a missing
    /// view contributes the full pointwise element, and nothing for a
    /// row-like slab (its extent is zero until the view exists, and its
    /// settledness gate is closed until then).
    fn instance_missing(&self, kid: KernelId, a: u64, idx: &[usize]) -> u32 {
        let k = self.spec.kernel(kid);
        let kinds = &self.fetch_kinds[kid.idx()];
        let mut missing = 0u32;
        let mut coord: Vec<usize> = Vec::new();
        for (fi, fe) in k.fetches.iter().enumerate() {
            let fa = fe.age.resolve(Age(a));
            match kinds[fi] {
                FetchKind::WholeField => {}
                FetchKind::Pointwise => {
                    coord.clear();
                    coord.extend(fe.dims.iter().map(|s| match s {
                        IndexSel::Var(v) => idx[v.0 as usize],
                        IndexSel::Const(c) => *c,
                        IndexSel::All => unreachable!("pointwise has no All dim"),
                    }));
                    let accounted = self.views.get(&(fe.field.0, fa.0)).is_some_and(|view| {
                        view.extents
                            .linearize(&coord)
                            .is_some_and(|lin| view.accounted.get(lin))
                    });
                    if !accounted {
                        missing += 1;
                    }
                }
                FetchKind::RowLike => {
                    let Some(view) = self.views.get(&(fe.field.0, fa.0)) else {
                        continue;
                    };
                    // The slab: Var dims fixed by the instance, All dims
                    // spanning the view extents. A fixed coordinate out of
                    // the view's extents leaves the whole slab unaccounted.
                    let mut in_bounds = true;
                    let spans: Vec<(usize, usize)> = fe
                        .dims
                        .iter()
                        .enumerate()
                        .map(|(d, s)| match s {
                            IndexSel::Var(v) => {
                                let c = idx[v.0 as usize];
                                if c >= view.extents.dim(d) {
                                    in_bounds = false;
                                }
                                (c, 1)
                            }
                            IndexSel::All => (0, view.extents.dim(d)),
                            IndexSel::Const(_) => unreachable!("row-like has no Const dim"),
                        })
                        .collect();
                    let slab: usize = spans.iter().map(|&(_, l)| l).product();
                    if !in_bounds {
                        missing += slab as u32;
                        continue;
                    }
                    missing += count_unaccounted(&spans, &view.extents, &view.accounted);
                }
            }
        }
        missing
    }

    /// Account every fresh element of the store into its view, and for
    /// each one decrement the pending counters of every instance whose
    /// inverted fetch pattern contains it. Counters hitting zero are
    /// collected into `zeros` by table linear index.
    fn account_and_decrement(
        &mut self,
        se: &StoreEvent,
        zeros: &mut HashMap<(u32, u64), Vec<usize>>,
    ) {
        // The inversion plan: each eligible consumer fetch of this field
        // whose resolved age matches, with the kernel ages it feeds.
        struct Plan {
            kid: KernelId,
            fetch: usize,
            ages: Vec<u64>,
        }
        let mut plans: Vec<Plan> = Vec::new();
        for &kid in &self.consumers[se.field.idx()] {
            if self.fused_consumers.contains(&kid) || !self.eligible[kid.idx()] {
                continue;
            }
            let k = self.spec.kernel(kid);
            for (fi, fe) in k.fetches.iter().enumerate() {
                if fe.field != se.field || self.fetch_kinds[kid.idx()][fi] == FetchKind::WholeField
                {
                    continue;
                }
                let ages: Vec<u64> = match fe.age {
                    AgeExpr::Rel(t) => {
                        if !k.has_age_var {
                            if se.age.0 as i64 == t {
                                vec![0]
                            } else {
                                continue;
                            }
                        } else if se.age.0 as i64 >= t {
                            vec![(se.age.0 as i64 - t) as u64]
                        } else {
                            continue;
                        }
                    }
                    AgeExpr::Const(c) => {
                        if se.age.0 != c {
                            continue;
                        }
                        // A constant-age store feeds every existing table.
                        self.table_ages[kid.idx()].iter().copied().collect()
                    }
                };
                let ages: Vec<u64> = ages
                    .into_iter()
                    .filter(|&a| self.tables.contains_key(&(kid.0, a)))
                    .collect();
                if !ages.is_empty() {
                    plans.push(Plan {
                        kid,
                        fetch: fi,
                        ages,
                    });
                }
            }
        }

        // Walk the stored region's coordinates against the (union-grown)
        // view extents; the event's region is pre-resolved so it stays
        // valid under the larger extents.
        let view = self
            .views
            .get_mut(&vkey_of(se))
            .expect("view created above");
        let view_extents = view.extents.clone();
        let Ok(spans) = se.region.resolve(&view_extents) else {
            return; // malformed event; rescan recovers
        };
        let ndim = spans.len();
        let mut coord: Vec<usize> = spans.iter().map(|&(s, _)| s).collect();
        if spans.iter().any(|&(_, l)| l == 0) {
            return;
        }
        let mut fixed: Vec<Option<usize>> = Vec::new();
        loop {
            // Mark accounted; skip elements already accounted (idempotent
            // replays, deduped remote stores).
            let lin = view_extents
                .linearize(&coord)
                .expect("region coordinate within view extents");
            let view = self.views.get_mut(&vkey_of(se)).expect("view exists");
            if view.accounted.set(lin) {
                for plan in &plans {
                    let k = self.spec.kernel(plan.kid);
                    let fe = &k.fetches[plan.fetch];
                    // Invert the fetch pattern at this coordinate: Var
                    // dims pin the instance rectangle, Const dims filter,
                    // All dims leave it free.
                    fixed.clear();
                    fixed.resize(k.index_vars as usize, None);
                    let mut applies = true;
                    for (d, s) in fe.dims.iter().enumerate() {
                        match s {
                            IndexSel::Var(v) => {
                                let vi = v.0 as usize;
                                match fixed[vi] {
                                    None => fixed[vi] = Some(coord[d]),
                                    Some(prev) if prev == coord[d] => {}
                                    Some(_) => {
                                        applies = false;
                                        break;
                                    }
                                }
                            }
                            IndexSel::Const(c) => {
                                if coord[d] != *c {
                                    applies = false;
                                    break;
                                }
                            }
                            IndexSel::All => {}
                        }
                    }
                    if !applies {
                        continue;
                    }
                    for &a in &plan.ages {
                        let key = (plan.kid.0, a);
                        let Some(table) = self.tables.get_mut(&key) else {
                            continue;
                        };
                        decrement_rectangle(table, &fixed, |table_lin| {
                            zeros.entry(key).or_default().push(table_lin);
                        });
                    }
                }
            }
            // Advance the region odometer.
            let mut d = ndim;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                coord[d] += 1;
                if coord[d] < spans[d].0 + spans[d].1 {
                    break;
                }
                coord[d] = spans[d].0;
                if d == 0 {
                    return;
                }
            }
        }
    }

    /// The conjunction of (kid, a)'s whole-field and settledness gates
    /// against the current views.
    fn table_gate(&self, kid: KernelId, a: u64) -> bool {
        let k = self.spec.kernel(kid);
        let kinds = &self.fetch_kinds[kid.idx()];
        for (fi, fe) in k.fetches.iter().enumerate() {
            let fa = fe.age.resolve(Age(a));
            match kinds[fi] {
                FetchKind::Pointwise => {}
                FetchKind::WholeField => {
                    let Some(view) = self.views.get(&(fe.field.0, fa.0)) else {
                        return false;
                    };
                    if view.accounted.count() != view.extents.len()
                        || !self.extents_settled(fe.field, fa, &view.extents)
                    {
                        return false;
                    }
                }
                FetchKind::RowLike => {
                    let Some(view) = self.views.get(&(fe.field.0, fa.0)) else {
                        return false;
                    };
                    if !self.extents_settled(fe.field, fa, &view.extents) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Dispatch every instance of (kid, a) with a zero counter that has
    /// not been dispatched yet — the closed→open gate transition.
    fn sweep_table(&mut self, kid: KernelId, a: u64, out: &mut Vec<DispatchUnit>) {
        let table = &self.tables[&(kid.0, a)];
        let ready: Vec<usize> = (0..table.remaining.len())
            .filter(|&lin| table.remaining[lin] == 0)
            .collect();
        self.dispatch_ready(kid, a, ready, out);
    }

    /// Dispatch the given table linear indices of (kid, a), skipping
    /// already-dispatched instances, in row-major order, chunked.
    fn dispatch_ready(
        &mut self,
        kid: KernelId,
        a: u64,
        mut lins: Vec<usize>,
        out: &mut Vec<DispatchUnit>,
    ) {
        if lins.is_empty() || !self.runs(kid) {
            return;
        }
        lins.sort_unstable();
        lins.dedup();
        let ranges = self.tables[&(kid.0, a)].ranges.clone();
        // Pre-grow the dispatched bitmap to the full instance space once —
        // growing it per instance would remap the bitmap O(instances)
        // times.
        let bm = self
            .dispatched
            .entry((kid.0, a))
            .or_insert_with(|| ShapedBitmap::new(ranges.clone()));
        bm.grow(&ranges);
        let mut runnable: Vec<Vec<usize>> = Vec::new();
        for lin in lins {
            let idx = ranges.delinearize(lin);
            if bm.set(&idx) {
                runnable.push(idx);
            }
        }
        let chunk = self.chunk_size_for(kid);
        for group in runnable.chunks(chunk) {
            self.emit(DispatchUnit::new(kid, Age(a), group.to_vec()), out);
        }
    }

    /// For kernel `kid`, carry the index-variable ranges observed on its
    /// fetched fields' views over to the extents expected of the kernel's
    /// store targets at the given instance ages. Expectations that grew are
    /// appended to `changed` as (field, age) so settledness gates can be
    /// rechecked.
    ///
    /// Every fetch participates, not just those of the field that
    /// triggered the event: a kernel whose store extent is derived from a
    /// constant-age fetch (k-means `assign`: `datapoints(0)[x]` sizing
    /// `assignments(a)`) must have the expectation propagated at *every*
    /// age, including ages the constant-age field never stores at again.
    fn propagate_extents(&mut self, kid: KernelId, ages: &[u64], changed: &mut Vec<(u32, u64)>) {
        let k = self.spec.kernel(kid);
        let mut updates: Vec<(u32, u64, usize, usize)> = Vec::new();
        for fe in &k.fetches {
            for a in ages {
                let fa = fe.age.resolve(Age(*a));
                let Some(view) = self.views.get(&(fe.field.0, fa.0)) else {
                    continue;
                };
                let ext = &view.extents;
                for (d, sel) in fe.dims.iter().enumerate() {
                    let IndexSel::Var(v) = sel else { continue };
                    let range = ext.dim(d);
                    for st in &k.stores {
                        let ta = st.age.resolve(Age(*a));
                        for (d2, sel2) in st.dims.iter().enumerate() {
                            if matches!(sel2, IndexSel::Var(v2) if v2 == v) {
                                updates.push((st.field.0, ta.0, d2, range));
                            }
                        }
                    }
                }
            }
        }
        for (f, a, d, range) in updates {
            let ndim = self.spec.fields[f as usize].ndim;
            let entry = self
                .expected_extents
                .entry((f, a))
                .or_insert_with(|| vec![None; ndim]);
            let slot = &mut entry[d];
            let before = *slot;
            *slot = Some(slot.map_or(range, |cur| cur.max(range)));
            if *slot != before {
                changed.push((f, a));
                if self.scope.is_some() {
                    self.outbox_keys.push((f, a));
                }
            }
        }
    }

    /// True when the known extents of (field, age) have reached every
    /// expected (propagated) extent — guards against dispatching consumers
    /// of implicitly-sized fields on a transiently-complete prefix.
    fn extents_settled(&self, field: FieldId, age: Age, ext: &p2g_field::Extents) -> bool {
        match self.expected_extents.get(&(field.0, age.0)) {
            None => true,
            Some(exp) => exp
                .iter()
                .enumerate()
                .all(|(d, e)| e.is_none_or(|n| ext.dim(d) >= n)),
        }
    }

    /// The instance ages of kernel `k` whose fetches the stored (field,
    /// age) may satisfy.
    fn affected_ages(&self, kid: KernelId, field: FieldId, fa: Age) -> Vec<u64> {
        let k = self.spec.kernel(kid);
        let mut ages = Vec::new();
        for fe in &k.fetches {
            if fe.field != field {
                continue;
            }
            match fe.age {
                AgeExpr::Rel(t) => {
                    if !k.has_age_var {
                        // A rel expression degenerates to age 0 for
                        // age-less kernels.
                        if fa.0 as i64 == t {
                            ages.push(0);
                        }
                    } else if fa.0 as i64 >= t {
                        ages.push((fa.0 as i64 - t) as u64);
                    }
                }
                AgeExpr::Const(c) => {
                    if fa.0 != c {
                        continue;
                    }
                    if !k.has_age_var {
                        ages.push(0);
                    } else {
                        // A constant-age fetch can unblock any age whose
                        // *other* (relative) fetches already have data;
                        // derive candidates from those fields' view ages.
                        let mut any_rel = false;
                        for other in &k.fetches {
                            if let AgeExpr::Rel(t) = other.age {
                                any_rel = true;
                                for &ra in &self.view_ages[other.field.idx()] {
                                    if ra as i64 >= t {
                                        ages.push((ra as i64 - t) as u64);
                                    }
                                }
                            }
                        }
                        if !any_rel {
                            ages.push(0);
                        }
                    }
                }
            }
        }
        ages.sort_unstable();
        ages.dedup();
        ages
    }

    fn on_unit_done(
        &mut self,
        kernel: KernelId,
        age: Age,
        instances: usize,
        stored_any: bool,
        retried: bool,
        out: &mut Vec<DispatchUnit>,
    ) {
        // `instances` counts the *successes* of this execution; failed
        // instances complete either through their retry unit's UnitDone or
        // through poisoning.
        *self.completed.entry((kernel.0, age.0)).or_insert(0) += instances;
        // A unit with a pending retry is not finished: its retry unit
        // reports the final UnitDone, which drives sequencing and ordered
        // gating then.
        if retried {
            return;
        }
        let k = self.spec.kernel(kernel);
        // Source sequencing: schedule the next age after this one finished
        // and actually produced data ("the read loop ends when the kernel
        // stops storing to the next age").
        if k.is_source() && k.has_age_var && stored_any {
            let next = age.0 + 1;
            if self.age_allowed(k, next) && self.mark_dispatched(kernel, next, &[]) {
                self.emit(DispatchUnit::new(kernel, Age(next), vec![vec![]]), out);
            }
        }
        // Ordered gating: when the current age drains, advance and release
        // held units.
        if self.options[kernel.idx()].ordered {
            let outst = self.ordered_outstanding.entry(kernel.0).or_insert(0);
            *outst = outst.saturating_sub(1);
            if *outst == 0 {
                let next = self.ordered_next.entry(kernel.0).or_insert(0);
                *next = (*next).max(age.0 + 1);
            }
            self.advance_ordered(kernel, out);
        }
    }

    /// Release ordered-kernel work for the currently allowed age, and skip
    /// over finished ages (in particular ages whose instances were all
    /// poisoned — they are marked dispatched + completed without a unit
    /// ever running, so nothing else would advance the gate past them).
    fn advance_ordered(&mut self, kid: KernelId, out: &mut Vec<DispatchUnit>) {
        loop {
            if self.ordered_outstanding.get(&kid.0).copied().unwrap_or(0) > 0 {
                return;
            }
            let next = *self.ordered_next.entry(kid.0).or_insert(0);
            if let Some(units) = self
                .held
                .get_mut(&kid.0)
                .and_then(|per_age| per_age.remove(&next))
            {
                if !units.is_empty() {
                    for u in units {
                        *self.ordered_outstanding.entry(kid.0).or_insert(0) += 1;
                        out.push(u);
                    }
                    return;
                }
            }
            // Nothing held at the allowed age: advance past it only when
            // it is demonstrably finished (fully dispatched + completed).
            // Field ground truth may be missing for a poisoned age (its
            // inputs were never stored); fall back to known extents.
            let space = match self.instance_space(kid, next) {
                Some(s) => s,
                None => {
                    let k = self.spec.kernel(kid);
                    let mut s = 1usize;
                    let mut known = true;
                    for &(fi, dim) in &self.bindings[kid.idx()] {
                        let fe = &k.fetches[fi];
                        let fa = fe.age.resolve(Age(next));
                        match self.known_extent(fe.field, fa, dim) {
                            Some(r) => s *= r,
                            None => {
                                known = false;
                                break;
                            }
                        }
                    }
                    if !known {
                        return;
                    }
                    s
                }
            };
            let d = self.dispatched.get(&(kid.0, next)).map_or(0, |s| s.count());
            let c = *self.completed.get(&(kid.0, next)).unwrap_or(&0);
            if d >= space && c >= d {
                self.ordered_next.insert(kid.0, next + 1);
                continue;
            }
            return;
        }
    }

    /// Record an instance as dispatched; false when already dispatched.
    fn mark_dispatched(&mut self, kernel: KernelId, age: u64, indices: &[usize]) -> bool {
        let shape = Extents(indices.iter().map(|&i| i + 1).collect());
        let bm = self
            .dispatched
            .entry((kernel.0, age))
            .or_insert_with(|| ShapedBitmap::new(shape.clone()));
        bm.grow(&shape);
        bm.set(indices)
    }

    /// Route a unit to the output, respecting ordered gating.
    fn emit(&mut self, unit: DispatchUnit, out: &mut Vec<DispatchUnit>) {
        let kid = unit.kernel;
        if self.options[kid.idx()].ordered {
            let next = *self.ordered_next.entry(kid.0).or_insert(0);
            if unit.age.0 > next {
                self.held
                    .entry(kid.0)
                    .or_default()
                    .entry(unit.age.0)
                    .or_default()
                    .push(unit);
                return;
            }
            *self.ordered_outstanding.entry(kid.0).or_insert(0) += 1;
        }
        out.push(unit);
    }

    /// Size of kernel `kid`'s instance space at age `a`, when its binding
    /// extents are known and settled; `None` while undetermined.
    fn instance_space(&self, kid: KernelId, a: u64) -> Option<usize> {
        let k = self.spec.kernel(kid);
        if k.is_source() {
            return Some(1);
        }
        let mut space = 1usize;
        for &(fi, dim) in &self.bindings[kid.idx()] {
            let fe = &k.fetches[fi];
            let fa = fe.age.resolve(Age(a));
            let field = self.fields[fe.field.idx()].read();
            let ext = field.extents(fa)?.clone();
            drop(field);
            if !self.extents_settled(fe.field, fa, &ext) {
                return None;
            }
            space *= ext.dim(dim);
        }
        Some(space)
    }

    /// The smallest age of `kid` whose instances are not all dispatched and
    /// completed — no field age that `kid` still needs may be collected.
    /// `u64::MAX` when the kernel can never run again (age cap reached).
    fn kernel_safe_age(&mut self, kid: KernelId) -> u64 {
        if let Some(sc) = &self.scope {
            if sc.plan.is_pinned(kid) && sc.plan.unit_owner(kid, 0) != sc.shard {
                // A peer shard owns every age of this pinned kernel; its
                // published frontier is the binding one. (Without this the
                // skip-non-owned loop below would never terminate.)
                let shard = sc.shard;
                sc.gc.publish_kernel_frontier(kid, shard, u64::MAX);
                return u64::MAX;
            }
        }
        let mut a = *self.gc_floor.get(&kid.0).unwrap_or(&0);
        loop {
            let k = self.spec.kernel(kid);
            if !self.age_allowed(k, a) {
                a = u64::MAX;
                break;
            }
            if !self.owns(kid, a) {
                // A peer shard owns this age; the global frontier is the
                // min over every shard's published slot, so skipping it
                // here is sound.
                a += 1;
                continue;
            }
            let Some(space) = self.instance_space(kid, a) else {
                break;
            };
            let d = self.dispatched.get(&(kid.0, a)).map_or(0, |s| s.count());
            let c = *self.completed.get(&(kid.0, a)).unwrap_or(&0);
            if d < space || c < d {
                break;
            }
            a += 1;
        }
        if a != u64::MAX {
            self.gc_floor.insert(kid.0, a);
        }
        if let Some(sc) = &self.scope {
            sc.gc.publish_kernel_frontier(kid, sc.shard, a);
        }
        a
    }

    /// Prune per-(kernel, age) accounting below each kernel's finished
    /// frontier. Every pruned age is fully dispatched *and* completed (the
    /// `gc_floor` invariant), so its UnitDone and Store events have all
    /// drained — nothing can reference the dropped entries again. The
    /// floor additionally respects ordered gating and age watches, whose
    /// frontiers read dispatch/completion counts at their own pace.
    fn prune_kernel_state(&mut self) {
        let nk = self.spec.kernels.len();
        let mut floors = Vec::with_capacity(nk);
        for k in 0..nk {
            let kid = k as u32;
            // kernel_safe_age (not the bare cache): source kernels are
            // nobody's consumer, so gc_limit never advances their floor.
            let mut f = self.kernel_safe_age(KernelId(kid));
            if self.options[k].ordered {
                f = f.min(*self.ordered_next.get(&kid).unwrap_or(&0));
            }
            for w in &self.watches {
                if w.kernel.idx() == k {
                    f = f.min(w.frontier);
                }
            }
            floors.push(f);
        }
        self.tables.retain(|&(k, a), _| a >= floors[k as usize]);
        for (k, ages) in self.table_ages.iter_mut().enumerate() {
            let f = floors[k];
            ages.retain(|&a| a >= f);
        }
        self.dispatched.retain(|&(k, a), _| a >= floors[k as usize]);
        self.completed.retain(|&(k, a), _| a >= floors[k as usize]);
        self.poisoned_instances
            .retain(|&(k, a), _| a >= floors[k as usize]);
    }

    /// The exclusive upper bound of collectible ages for `field`:
    /// the window bound, clamped so no (current or future) consumer
    /// instance can still fetch a collected age. Constant-age fetches pin
    /// their age forever (the k-means `datapoints(0)` pattern).
    fn gc_limit(&mut self, field: FieldId, window_bound: u64) -> u64 {
        let mut limit = window_bound;
        let consumer_ids = self.consumers[field.idx()].clone();
        for kid in consumer_ids {
            // Fused consumers read the producer's staged buffer, never the
            // field itself.
            if self.fused_consumers.contains(&kid) {
                continue;
            }
            let fetch_ages: Vec<crate::AgeExprCopy> = self
                .spec
                .kernel(kid)
                .fetches
                .iter()
                .filter(|fe| fe.field == field)
                .map(|fe| match fe.age {
                    AgeExpr::Rel(t) => crate::AgeExprCopy::Rel(t),
                    AgeExpr::Const(c) => crate::AgeExprCopy::Const(c),
                })
                .collect();
            for fa in fetch_ages {
                match fa {
                    crate::AgeExprCopy::Rel(t) => {
                        // Refresh (and publish) the local frontier, then
                        // clamp by the *global* one in sharded mode — a
                        // peer may own ages this shard has skipped over.
                        let local = self.kernel_safe_age(kid);
                        let safe = match &self.scope {
                            None => local,
                            Some(sc) => sc.gc.kernel_frontier(kid),
                        };
                        limit = limit.min(safe.saturating_add(t.max(0) as u64));
                    }
                    crate::AgeExprCopy::Const(c) => {
                        limit = limit.min(c);
                    }
                }
            }
        }
        limit
    }

    /// Enumerate kernel `kid`'s instance space at age `a`, dispatching
    /// every not-yet-dispatched instance whose fetches are all satisfied.
    /// This is the slow enumerate-and-check path, kept for kernels the
    /// incremental inversion doesn't cover and as the rescan/recovery
    /// oracle. It reads field ground truth (locks), not views.
    fn try_generate(&mut self, kid: KernelId, a: u64, out: &mut Vec<DispatchUnit>) {
        let spec = self.spec.clone();
        let k = spec.kernel(kid);
        if !self.age_allowed(k, a) || k.is_source() || !self.owns(kid, a) {
            return;
        }
        let nvars = k.index_vars as usize;

        // Index-variable ranges from their binding fetches' extents.
        let mut ranges = Vec::with_capacity(nvars);
        for &(fi, dim) in &self.bindings[kid.idx()] {
            let fe = &k.fetches[fi];
            let fa = fe.age.resolve(Age(a));
            let field = self.fields[fe.field.idx()].read();
            match field.extents(fa) {
                Some(e) => ranges.push(e.dim(dim)),
                None => return, // no data for the binding age yet
            }
        }
        if ranges.contains(&0) {
            return;
        }
        let space: usize = ranges.iter().product::<usize>().max(1);
        if let Some(set) = self.dispatched.get(&(kid.0, a)) {
            if set.count() >= space {
                return; // everything already dispatched at this extent
            }
        }
        // Pre-grow the dispatched bitmap to the full instance space so the
        // per-instance marks below never trigger a remap.
        let full = Extents(ranges.clone());
        let bm = self
            .dispatched
            .entry((kid.0, a))
            .or_insert_with(|| ShapedBitmap::new(full.clone()));
        bm.grow(&full);

        // Enumerate the instance space (mixed radix odometer).
        let mut runnable: Vec<Vec<usize>> = Vec::new();
        let mut idx = vec![0usize; nvars];
        loop {
            let seen = self
                .dispatched
                .get(&(kid.0, a))
                .is_some_and(|s| s.get(&idx));
            if !seen && self.instance_runnable(k, a, &idx) {
                self.mark_dispatched(kid, a, &idx);
                runnable.push(idx.clone());
            }
            // Advance odometer.
            let mut d = nvars;
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < ranges[d] {
                    break;
                }
                idx[d] = 0;
                if d == 0 {
                    d = usize::MAX;
                    break;
                }
            }
            if nvars == 0 || d == usize::MAX {
                break;
            }
        }

        // Chunk runnable instances into dispatch units (data granularity).
        let chunk = self.chunk_size_for(kid);
        for group in runnable.chunks(chunk) {
            self.emit(DispatchUnit::new(kid, Age(a), group.to_vec()), out);
        }
    }

    /// True when every fetch of instance (k, a, idx) is fully written.
    fn instance_runnable(&self, k: &KernelSpec, a: u64, indices: &[usize]) -> bool {
        for fe in &k.fetches {
            let fa = fe.age.resolve(Age(a));
            let field = self.fields[fe.field.idx()].read();
            // Fetches spanning whole dimensions must wait until the
            // field's extents have settled (implicit-resize propagation).
            if fe.dims.iter().any(|d| matches!(d, IndexSel::All)) {
                match field.extents(fa) {
                    Some(ext) => {
                        if !self.extents_settled(fe.field, fa, &ext.clone()) {
                            return false;
                        }
                    }
                    None => return false,
                }
            }
            let whole_field = fe.dims.iter().all(|d| matches!(d, IndexSel::All));
            if whole_field {
                if !field.is_complete(fa) {
                    return false;
                }
                continue;
            }
            let region = crate::program::resolve_region(&fe.dims, indices);
            if !field.region_written(fa, &region) {
                return false;
            }
        }
        true
    }

    /// Test/diagnostic helper: total instances dispatched for a kernel.
    pub fn dispatched_count(&self, kid: KernelId) -> usize {
        self.dispatched
            .iter()
            .filter(|&(&(k, _), _)| k == kid.0)
            .map(|(_, s)| s.count())
            .sum()
    }
}

#[inline]
fn vkey_of(se: &StoreEvent) -> (u32, u64) {
    (se.field.0, se.age.0)
}

/// Does the fetch `dims` of an instance with index values `idx` intersect
/// the poisoned `region`? `All` on either side matches the whole dimension,
/// so no extents are needed.
fn fetch_hits_region(dims: &[IndexSel], idx: &[usize], region: &p2g_field::Region) -> bool {
    dims.iter().zip(&region.0).all(|(sel, rsel)| {
        let v = match sel {
            IndexSel::Var(iv) => idx[iv.0 as usize],
            IndexSel::Const(c) => *c,
            IndexSel::All => return !matches!(rsel, p2g_field::DimSel::Range { len: 0, .. }),
        };
        match *rsel {
            p2g_field::DimSel::Index(i) => v == i,
            p2g_field::DimSel::Range { start, len } => v >= start && v < start + len,
            p2g_field::DimSel::All => true,
        }
    })
}

/// Count unaccounted elements of the rectangle `spans` (start, len per
/// dimension) under `extents`.
fn count_unaccounted(spans: &[(usize, usize)], extents: &Extents, accounted: &Bitmap) -> u32 {
    let total: usize = spans.iter().map(|&(_, l)| l).product();
    if total == 0 {
        return 0;
    }
    let mut coord: Vec<usize> = spans.iter().map(|&(s, _)| s).collect();
    let mut missing = 0u32;
    loop {
        let lin = extents
            .linearize(&coord)
            .expect("slab coordinate within extents");
        if !accounted.get(lin) {
            missing += 1;
        }
        let mut d = spans.len();
        loop {
            if d == 0 {
                return missing;
            }
            d -= 1;
            coord[d] += 1;
            if coord[d] < spans[d].0 + spans[d].1 {
                break;
            }
            coord[d] = spans[d].0;
            if d == 0 {
                return missing;
            }
        }
    }
}

/// Decrement every counter in the instance rectangle given by `fixed`
/// (Some pins a variable, None leaves it free), invoking `on_zero` with
/// the table linear index of each counter that transitions to zero.
/// Rectangles with a pinned value outside the table's ranges are skipped
/// entirely — those instances don't exist yet, and when the table grows
/// they are initialized from the views (which already account the
/// element).
fn decrement_rectangle(
    table: &mut PendingTable,
    fixed: &[Option<usize>],
    mut on_zero: impl FnMut(usize),
) {
    let nvars = fixed.len();
    debug_assert_eq!(nvars, table.ranges.ndim());
    let mut coord = vec![0usize; nvars];
    for (v, f) in fixed.iter().enumerate() {
        if let Some(c) = *f {
            if c >= table.ranges.dim(v) {
                return;
            }
            coord[v] = c;
        }
    }
    loop {
        let lin = table
            .ranges
            .linearize(&coord)
            .expect("rectangle coordinate within table ranges");
        let slot = &mut table.remaining[lin];
        debug_assert!(*slot > 0, "counter underflow: element decremented twice");
        *slot = slot.saturating_sub(1);
        if *slot == 0 {
            on_zero(lin);
        }
        // Advance over the free variables only.
        let mut d = nvars;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            if fixed[d].is_some() {
                if d == 0 {
                    return;
                }
                continue;
            }
            coord[d] += 1;
            if coord[d] < table.ranges.dim(d) {
                break;
            }
            coord[d] = 0;
            if d == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::StoreEvent;
    use p2g_field::{Buffer, FieldDef, Region};
    use p2g_graph::spec::mul_sum_example;

    fn setup() -> (DependencyAnalyzer, SharedFields, Arc<ProgramSpec>) {
        let spec = Arc::new(mul_sum_example());
        let fields: SharedFields = Arc::new(
            spec.fields
                .iter()
                .enumerate()
                .map(|(i, d)| RwLock::new(Field::new(p2g_field::FieldId(i as u32), d.clone())))
                .collect(),
        );
        let options = vec![KernelOptions::default(); spec.kernels.len()];
        let an = DependencyAnalyzer::new(
            spec.clone(),
            options,
            HashSet::new(),
            fields.clone(),
            RunLimits::ages(3),
        );
        (an, fields, spec)
    }

    fn store_whole(fields: &SharedFields, fid: usize, age: u64, data: Vec<i32>) -> StoreEvent {
        let mut field = fields[fid].write();
        let out = field
            .store(Age(age), &Region::all(1), &Buffer::from_vec(data))
            .unwrap();
        let extents = field.extents(Age(age)).cloned().unwrap();
        let region = Region::all(extents.ndim()).resolved_against(&extents);
        StoreEvent {
            field: p2g_field::FieldId(fid as u32),
            age: Age(age),
            region,
            extents,
            elements: out.stored,
            age_complete: out.age_complete,
            resized: out.resized,
            inline_dispatched: None,
        }
    }

    #[test]
    fn seed_emits_sources_once() {
        let (mut an, _, spec) = setup();
        let units = an.seed();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].kernel, spec.kernel_by_name("init").unwrap());
        // Seeding again emits nothing (already dispatched).
        assert!(an.seed().is_empty());
    }

    #[test]
    fn store_unblocks_element_consumers() {
        let (mut an, fields, spec) = setup();
        an.seed();
        // init stores m_data(0) fully: mul2 gets 5 instances, print still
        // blocked (needs p_data too).
        let ev = store_whole(&fields, 0, 0, vec![10, 11, 12, 13, 14]);
        let units = an.on_event(&Event::Store(ev)).unwrap();
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        assert_eq!(units.len(), 5);
        assert!(units.iter().all(|u| u.kernel == mul2));
        let mut xs: Vec<usize> = units.iter().map(|u| u.instances[0][0]).collect();
        xs.sort_unstable();
        assert_eq!(xs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn print_unblocks_when_both_fields_complete() {
        let (mut an, fields, spec) = setup();
        an.seed();
        let ev = store_whole(&fields, 0, 0, vec![1, 2, 3]);
        an.on_event(&Event::Store(ev)).unwrap();
        let ev = store_whole(&fields, 1, 0, vec![2, 4, 6]);
        let units = an.on_event(&Event::Store(ev)).unwrap();
        let print = spec.kernel_by_name("print").unwrap();
        assert!(units.iter().any(|u| u.kernel == print));
    }

    #[test]
    fn no_duplicate_dispatch() {
        let (mut an, fields, spec) = setup();
        an.seed();
        let ev = store_whole(&fields, 0, 0, vec![1, 2, 3]);
        let first = an.on_event(&Event::Store(ev.clone())).unwrap();
        assert_eq!(first.len(), 3);
        // Replay of the same event produces nothing new.
        let second = an.on_event(&Event::Store(ev)).unwrap();
        assert!(second.is_empty());
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        assert_eq!(an.dispatched_count(mul2), 3);
    }

    #[test]
    fn max_ages_caps_instances() {
        let (mut an, fields, _) = setup();
        an.seed();
        // Ages 0..3 allowed (max_ages = 3); age 3 store must not generate
        // mul2 instances at age 3.
        for age in 0..4 {
            let ev = store_whole(&fields, 0, age, vec![1]);
            let units = an.on_event(&Event::Store(ev)).unwrap();
            if age < 3 {
                assert!(!units.is_empty(), "age {age} should dispatch");
            } else {
                assert!(units.is_empty(), "age {age} is beyond max_ages");
            }
        }
    }

    #[test]
    fn source_sequencing_follows_stored_any() {
        // A source kernel with an age variable re-arms only when the prior
        // instance stored data.
        let mut spec = ProgramSpec::new();
        let out_f = spec.add_field(FieldDef::new("frames", p2g_field::ScalarType::I32, 1));
        spec.add_kernel(p2g_graph::spec::KernelSpec {
            id: KernelId(0),
            name: "read".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![],
            stores: vec![p2g_graph::spec::StoreDecl {
                field: out_f,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
        });
        let spec = Arc::new(spec);
        let fields: SharedFields = Arc::new(
            spec.fields
                .iter()
                .enumerate()
                .map(|(i, d)| RwLock::new(Field::new(p2g_field::FieldId(i as u32), d.clone())))
                .collect(),
        );
        let mut an = DependencyAnalyzer::new(
            spec.clone(),
            vec![KernelOptions::default()],
            HashSet::new(),
            fields,
            RunLimits::unbounded(),
        );
        let units = an.seed();
        assert_eq!(units.len(), 1);
        // Completing with data: next age dispatched.
        let units = an
            .on_event(&Event::UnitDone {
                kernel: KernelId(0),
                age: Age(0),
                instances: 1,
                stored_any: true,
                retried: false,
            })
            .unwrap();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].age, Age(1));
        // Completing without data (EOF): stream ends.
        let units = an
            .on_event(&Event::UnitDone {
                kernel: KernelId(0),
                age: Age(1),
                instances: 1,
                stored_any: false,
                retried: false,
            })
            .unwrap();
        assert!(units.is_empty());
    }

    #[test]
    fn ordered_kernel_releases_in_age_order() {
        let (mut an, fields, spec) = setup();
        let print = spec.kernel_by_name("print").unwrap();
        an.options[print.idx()].ordered = true;
        an.seed();

        // Complete age 0 and age 1 data for both fields, but deliver age 1
        // completions first — print(1) must be held until print(0) is done.
        for age in [1u64, 0] {
            let ev = store_whole(&fields, 0, age, vec![1, 2]);
            an.on_event(&Event::Store(ev)).unwrap();
        }
        let mut print_units = Vec::new();
        for age in [1u64, 0] {
            let ev = store_whole(&fields, 1, age, vec![2, 4]);
            print_units.extend(
                an.on_event(&Event::Store(ev))
                    .unwrap()
                    .into_iter()
                    .filter(|u| u.kernel == print),
            );
        }
        // Only age 0 released so far.
        assert_eq!(print_units.len(), 1);
        assert_eq!(print_units[0].age, Age(0));
        // Completing age 0 releases age 1.
        let released = an
            .on_event(&Event::UnitDone {
                kernel: print,
                age: Age(0),
                instances: 1,
                stored_any: false,
                retried: false,
            })
            .unwrap();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].age, Age(1));
    }

    #[test]
    fn chunking_merges_instances() {
        let (mut an, fields, spec) = setup();
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        an.options[mul2.idx()].chunk_size = 5;
        an.seed();
        let ev = store_whole(&fields, 0, 0, vec![1, 2, 3, 4, 5]);
        let units: Vec<_> = an
            .on_event(&Event::Store(ev))
            .unwrap()
            .into_iter()
            .filter(|u| u.kernel == mul2)
            .collect();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].len(), 5);
    }

    #[test]
    fn element_stores_dispatch_incrementally() {
        // One-element stores unlock exactly the matching instance, without
        // rescanning the space — the delta path the K-means storm relies
        // on.
        let (mut an, fields, spec) = setup();
        an.seed();
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        // Pre-size the age with a first element so extents are known.
        for x in 0..4usize {
            let ev = {
                let mut field = fields[0].write();
                let region = Region(vec![p2g_field::DimSel::Range { start: x, len: 1 }]);
                let out = field
                    .store(Age(0), &region, &Buffer::from_vec(vec![x as i32]))
                    .unwrap();
                let extents = field.extents(Age(0)).cloned().unwrap();
                StoreEvent {
                    field: p2g_field::FieldId(0),
                    age: Age(0),
                    region: region.resolved_against(&extents),
                    extents,
                    elements: out.stored,
                    age_complete: out.age_complete,
                    resized: out.resized,
                    inline_dispatched: None,
                }
            };
            let units: Vec<_> = an
                .on_event(&Event::Store(ev))
                .unwrap()
                .into_iter()
                .filter(|u| u.kernel == mul2)
                .collect();
            // Implicit sizing grows the field one element at a time; every
            // store unlocks exactly the new instance.
            assert_eq!(units.len(), 1, "store {x} should unlock one instance");
            assert_eq!(units[0].instances, vec![vec![x]]);
        }
        assert_eq!(an.dispatched_count(mul2), 4);
    }

    #[test]
    fn gc_respects_lagging_consumers() {
        // Consumers that have not completed pin their ages: storing far
        // ahead must not collect ages whose consumer instances are still
        // outstanding.
        let (mut an, fields, _) = setup();
        an.limits = RunLimits::ages(10).with_gc_window(1);
        an.seed();
        for age in 0..4 {
            let ev = store_whole(&fields, 0, age, vec![1]);
            an.on_event(&Event::Store(ev)).unwrap();
        }
        // mul2 instances were dispatched but never completed; print never
        // became runnable. Nothing may be collected.
        let resident: Vec<u64> = fields[0].read().resident_ages().map(|a| a.0).collect();
        assert_eq!(resident, vec![0, 1, 2, 3]);
    }

    #[test]
    fn gc_collects_behind_completed_consumers() {
        // A private pipeline (source → sink) where the sink completes each
        // age: old ages fall to the window GC.
        let mut spec = ProgramSpec::new();
        let f = spec.add_field(p2g_field::FieldDef::new(
            "stream",
            p2g_field::ScalarType::I32,
            1,
        ));
        spec.add_kernel(p2g_graph::spec::KernelSpec {
            id: KernelId(0),
            name: "src".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![],
            stores: vec![p2g_graph::spec::StoreDecl {
                field: f,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
        });
        spec.add_kernel(p2g_graph::spec::KernelSpec {
            id: KernelId(0),
            name: "sink".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![p2g_graph::spec::FetchDecl {
                field: f,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
            stores: vec![],
        });
        let spec = Arc::new(spec);
        let fields: SharedFields = Arc::new(
            spec.fields
                .iter()
                .enumerate()
                .map(|(i, d)| RwLock::new(Field::new(p2g_field::FieldId(i as u32), d.clone())))
                .collect(),
        );
        let mut an = DependencyAnalyzer::new(
            spec.clone(),
            vec![KernelOptions::default(); 2],
            HashSet::new(),
            fields.clone(),
            RunLimits::ages(20).with_gc_window(2),
        );
        an.seed();
        let sink = spec.kernel_by_name("sink").unwrap();
        for age in 0..8u64 {
            let ev = store_whole(&fields, 0, age, vec![1, 2]);
            let units = an.on_event(&Event::Store(ev)).unwrap();
            // Complete the sink instance for this age immediately.
            for u in units.iter().filter(|u| u.kernel == sink) {
                an.on_event(&Event::UnitDone {
                    kernel: sink,
                    age: u.age,
                    instances: u.len(),
                    stored_any: false,
                    retried: false,
                })
                .unwrap();
            }
        }
        // Window 2 behind age 7, consumers fully caught up → ages < 5
        // collected.
        let resident: Vec<u64> = fields[0].read().resident_ages().map(|a| a.0).collect();
        assert_eq!(resident, vec![5, 6, 7]);
    }

    #[test]
    fn gc_never_collects_const_fetched_ages() {
        // The k-means pattern: datapoints(0) is fetched at a constant age
        // by every iteration and must survive any window.
        let mut spec = ProgramSpec::new();
        let f_const = spec.add_field(p2g_field::FieldDef::new(
            "points",
            p2g_field::ScalarType::I32,
            1,
        ));
        let f_aged = spec.add_field(p2g_field::FieldDef::new(
            "state",
            p2g_field::ScalarType::I32,
            1,
        ));
        spec.add_kernel(p2g_graph::spec::KernelSpec {
            id: KernelId(0),
            name: "step".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![
                p2g_graph::spec::FetchDecl {
                    field: f_const,
                    age: AgeExpr::Const(0),
                    dims: vec![IndexSel::All],
                },
                p2g_graph::spec::FetchDecl {
                    field: f_aged,
                    age: AgeExpr::Rel(0),
                    dims: vec![IndexSel::All],
                },
            ],
            stores: vec![],
        });
        let spec = Arc::new(spec);
        let fields: SharedFields = Arc::new(
            spec.fields
                .iter()
                .enumerate()
                .map(|(i, d)| RwLock::new(Field::new(p2g_field::FieldId(i as u32), d.clone())))
                .collect(),
        );
        let mut an = DependencyAnalyzer::new(
            spec.clone(),
            vec![KernelOptions::default(); spec.kernels.len()],
            HashSet::new(),
            fields.clone(),
            RunLimits::ages(50).with_gc_window(1),
        );
        an.seed();
        // Store the const field at age 0, then push the aged field far
        // ahead; age 0 of the const field must survive.
        let ev = store_whole(&fields, 0, 0, vec![1, 2, 3]);
        an.on_event(&Event::Store(ev)).unwrap();
        for age in 0..6 {
            let ev = store_whole(&fields, 1, age, vec![9]);
            let units = an.on_event(&Event::Store(ev)).unwrap();
            for u in units {
                let (k, a, n) = (u.kernel, u.age, u.len());
                an.on_event(&Event::UnitDone {
                    kernel: k,
                    age: a,
                    instances: n,
                    stored_any: false,
                    retried: false,
                })
                .unwrap();
            }
        }
        assert!(
            fields[0].read().is_complete(Age(0)),
            "const-fetched field must never be collected"
        );
    }
}

//! The dependency analyzer: the serial heart of the low-level scheduler.
//!
//! On every store/resize event the analyzer finds all *new* valid
//! combinations of age and index variables whose fetch dependencies are now
//! fulfilled, and emits them as dispatch units (paper Section VI-B). It runs
//! in a dedicated thread — which is exactly why the paper's K-means workload
//! stops scaling past a handful of workers, an effect the Figure-10 bench
//! reproduces.
//!
//! The analyzer also implements:
//! * **source-kernel sequencing** — a fetch-less kernel with an age
//!   variable (the MJPEG reader) gets its next age dispatched only after the
//!   previous instance completed *and stored something*; an instance that
//!   stores nothing ends the stream.
//! * **ordered-kernel gating** — instances of kernels marked ordered are
//!   released one age at a time (bitstream writers).
//! * **age garbage collection** — with a configured window, field ages far
//!   enough behind the field's newest age are reclaimed.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;

use p2g_field::{Age, Field, FieldId};
use p2g_graph::spec::{AgeExpr, IndexSel, KernelSpec};
use p2g_graph::{KernelId, ProgramSpec};

use crate::events::{Event, StoreEvent};
use crate::instance::{DispatchUnit, PackedIndices};
use crate::options::{KernelOptions, RunLimits};

/// Shared handle to the node's fields.
pub type SharedFields = Arc<Vec<RwLock<Field>>>;

/// See module docs.
pub struct DependencyAnalyzer {
    spec: Arc<ProgramSpec>,
    options: Vec<KernelOptions>,
    fused_consumers: HashSet<KernelId>,
    fields: SharedFields,
    limits: RunLimits,
    /// Instances already dispatched (or held), per (kernel, age).
    dispatched: HashMap<(u32, u64), HashSet<PackedIndices>>,
    /// Kernels consuming each field (deduplicated), indexed by field.
    consumers: Vec<Vec<KernelId>>,
    /// For each kernel, the (fetch, dim) binding each index var's range.
    bindings: Vec<Vec<(usize, usize)>>,
    /// Ordered kernels: the age currently allowed to dispatch.
    ordered_next: HashMap<u32, u64>,
    /// Ordered kernels: units dispatched but not completed at the current
    /// age.
    ordered_outstanding: HashMap<u32, usize>,
    /// Ordered kernels: units held for future ages.
    held: HashMap<u32, BTreeMap<u64, Vec<DispatchUnit>>>,
    /// Highest age stored per field, for GC.
    field_max_age: Vec<u64>,
    /// Distributed mode: only these kernels run on this node. `None` runs
    /// everything (single-node mode).
    assigned: Option<HashSet<KernelId>>,
    /// Expected extents per (field, age) dimension, derived by propagating
    /// index-variable ranges from fetched fields to stored fields (the
    /// paper: "these extents are then propagated to the respective fields
    /// impacted by this resize"). Without this, a whole-field fetch of an
    /// implicitly-sized field could observe a transiently-complete prefix.
    expected_extents: HashMap<(u32, u64), Vec<Option<usize>>>,
    /// Kernel instances completed (UnitDone), per (kernel, age) — drives
    /// consumer-aware garbage collection.
    completed: HashMap<(u32, u64), usize>,
    /// Monotone cache: the smallest age of each kernel that is not yet
    /// fully dispatched + completed.
    gc_floor: HashMap<u32, u64>,
    /// Store elements absorbed by write-once dedup (duplicate remote
    /// deliveries, recovery re-injection). Drained by the analyzer loop
    /// into the node's instruments.
    deduped: u64,
}

impl DependencyAnalyzer {
    /// Build the analyzer for a program.
    pub fn new(
        spec: Arc<ProgramSpec>,
        options: Vec<KernelOptions>,
        fused_consumers: HashSet<KernelId>,
        fields: SharedFields,
        limits: RunLimits,
    ) -> DependencyAnalyzer {
        let nf = spec.fields.len();
        let mut consumers: Vec<Vec<KernelId>> = vec![Vec::new(); nf];
        for k in &spec.kernels {
            for fe in &k.fetches {
                if !consumers[fe.field.idx()].contains(&k.id) {
                    consumers[fe.field.idx()].push(k.id);
                }
            }
        }
        let bindings =
            spec.kernels
                .iter()
                .map(|k| {
                    (0..k.index_vars as usize)
                        .map(|v| {
                            k.fetches
                                .iter()
                                .enumerate()
                                .find_map(|(fi, fe)| {
                                    fe.dims.iter().position(|d| {
                                    matches!(d, IndexSel::Var(iv) if iv.0 as usize == v)
                                })
                                .map(|dim| (fi, dim))
                                })
                                .expect("validated: every index var bound by a fetch")
                        })
                        .collect()
                })
                .collect();
        DependencyAnalyzer {
            options,
            fused_consumers,
            fields,
            limits,
            dispatched: HashMap::new(),
            consumers,
            bindings,
            ordered_next: HashMap::new(),
            ordered_outstanding: HashMap::new(),
            held: HashMap::new(),
            field_max_age: vec![0; nf],
            assigned: None,
            expected_extents: HashMap::new(),
            completed: HashMap::new(),
            gc_floor: HashMap::new(),
            deduped: 0,
            spec,
        }
    }

    /// Drain the dedup tally accumulated since the last call.
    pub fn take_deduped(&mut self) -> u64 {
        std::mem::take(&mut self.deduped)
    }

    /// Restrict dispatch to an assigned kernel subset (distributed mode).
    pub fn set_assigned(&mut self, assigned: HashSet<KernelId>) {
        self.assigned = Some(assigned);
    }

    /// True when this node runs the given kernel.
    fn runs(&self, kid: KernelId) -> bool {
        self.assigned.as_ref().is_none_or(|s| s.contains(&kid))
    }

    /// Whether instances of `k` may exist at age `a` under the run limits.
    fn age_allowed(&self, k: &KernelSpec, a: u64) -> bool {
        if !k.has_age_var {
            return a == 0;
        }
        match self.limits.max_ages {
            Some(m) => a < m,
            None => true,
        }
    }

    /// Initial dispatch units: every source kernel's first instance.
    pub fn seed(&mut self) -> Vec<DispatchUnit> {
        let mut out = Vec::new();
        let source_ids: Vec<KernelId> = self
            .spec
            .kernels
            .iter()
            .filter(|k| k.is_source() && !self.fused_consumers.contains(&k.id))
            .map(|k| k.id)
            .filter(|&id| self.runs(id))
            .collect();
        for id in source_ids {
            if !self.age_allowed(self.spec.kernel(id), 0) {
                continue;
            }
            if self.mark_dispatched(id, 0, &[]) {
                self.emit(
                    DispatchUnit {
                        kernel: id,
                        age: Age(0),
                        instances: vec![vec![]],
                    },
                    &mut out,
                );
            }
        }
        out
    }

    /// Handle one event, returning newly runnable dispatch units. An
    /// error (write-once conflict applying a remote store) aborts the run.
    pub fn on_event(&mut self, ev: &Event) -> Result<Vec<DispatchUnit>, p2g_field::FieldError> {
        let mut out = Vec::new();
        match ev {
            Event::Store(se) => self.on_store(se, &mut out),
            Event::RemoteStore {
                field,
                age,
                region,
                buffer,
            } => {
                // Apply the forwarded store to the local replica, then
                // treat it like a local store. Write-once dedup makes the
                // apply idempotent, so at-least-once delivery (retries,
                // duplicates, recovery re-injection) is safe; a
                // *conflicting* duplicate value means two nodes produced
                // the same element differently — a partitioning bug
                // surfaced deterministically.
                let outcome = self.fields[field.idx()]
                    .write()
                    .store_idempotent(*age, region, buffer);
                let o = outcome?;
                self.deduped += o.deduped as u64;
                let se = StoreEvent {
                    field: *field,
                    age: *age,
                    elements: o.stored,
                    age_complete: o.age_complete,
                    resized: o.resized,
                };
                self.on_store(&se, &mut out);
            }
            Event::Reassign { kernels } => {
                self.assigned = Some(kernels.clone());
                // Seed newly-owned source kernels (the dispatched set
                // dedups sources this node already ran) and rescan
                // resident field data for instances that are now ours.
                let seeded = self.seed();
                out.extend(seeded);
                self.rescan(&mut out);
            }
            Event::UnitDone {
                kernel,
                age,
                instances,
                stored_any,
            } => self.on_unit_done(*kernel, *age, *instances, *stored_any, &mut out),
            Event::Failure(_) => {}
        }
        Ok(out)
    }

    /// Re-derive runnable instances from all resident field data — used
    /// after a [`Event::Reassign`] so kernels this node just inherited
    /// catch up on data that arrived while another node owned them. The
    /// dispatched set makes this idempotent.
    fn rescan(&mut self, out: &mut Vec<DispatchUnit>) {
        for fi in 0..self.fields.len() {
            let field = FieldId(fi as u32);
            let resident: Vec<u64> = self.fields[fi].read().resident_ages().map(|a| a.0).collect();
            let consumer_ids = self.consumers[fi].clone();
            for &kid in &consumer_ids {
                if self.fused_consumers.contains(&kid) {
                    continue;
                }
                for &ra in &resident {
                    let ages = self.affected_ages(kid, field, Age(ra));
                    self.propagate_extents(kid, field, &ages);
                    if self.runs(kid) {
                        for a in ages {
                            self.try_generate(kid, a, out);
                        }
                    }
                }
            }
        }
    }

    fn on_store(&mut self, se: &StoreEvent, out: &mut Vec<DispatchUnit>) {
        // Track the field's frontier and garbage collect behind it.
        let fmax = &mut self.field_max_age[se.field.idx()];
        if se.age.0 > *fmax {
            *fmax = se.age.0;
        }
        let fmax = *fmax;
        if let Some(w) = self.limits.gc_window {
            if fmax > w {
                let limit = self.gc_limit(se.field, fmax - w);
                if limit > 0 {
                    self.fields[se.field.idx()].write().collect_below(Age(limit));
                }
            }
        }

        // Propagate extents downstream, then attempt dispatch. Extent
        // propagation is cluster-global knowledge, so it ignores the
        // node-local kernel assignment.
        let consumer_ids = self.consumers[se.field.idx()].clone();
        for &kid in &consumer_ids {
            if self.fused_consumers.contains(&kid) {
                continue;
            }
            let ages = self.affected_ages(kid, se.field, se.age);
            self.propagate_extents(kid, se.field, &ages);
        }
        for kid in consumer_ids {
            if self.fused_consumers.contains(&kid) || !self.runs(kid) {
                continue;
            }
            let ages = self.affected_ages(kid, se.field, se.age);
            for a in ages {
                self.try_generate(kid, a, out);
            }
        }
    }

    /// For kernel `kid` consuming `field`, carry the index-variable ranges
    /// observed on `field` over to the extents expected of the kernel's
    /// store targets at the affected ages.
    fn propagate_extents(&mut self, kid: KernelId, field: FieldId, ages: &[u64]) {
        let k = self.spec.kernel(kid);
        let mut updates: Vec<(u32, u64, usize, usize)> = Vec::new();
        for fe in &k.fetches {
            if fe.field != field {
                continue;
            }
            for a in ages {
                let fa = fe.age.resolve(Age(*a));
                let Some(ext) = self.fields[field.idx()].read().extents(fa).cloned() else {
                    continue;
                };
                for (d, sel) in fe.dims.iter().enumerate() {
                    let IndexSel::Var(v) = sel else { continue };
                    let range = ext.dim(d);
                    for st in &k.stores {
                        let ta = st.age.resolve(Age(*a));
                        for (d2, sel2) in st.dims.iter().enumerate() {
                            if matches!(sel2, IndexSel::Var(v2) if v2 == v) {
                                updates.push((st.field.0, ta.0, d2, range));
                            }
                        }
                    }
                }
            }
        }
        for (f, a, d, range) in updates {
            let ndim = self.spec.fields[f as usize].ndim;
            let entry = self
                .expected_extents
                .entry((f, a))
                .or_insert_with(|| vec![None; ndim]);
            let slot = &mut entry[d];
            *slot = Some(slot.map_or(range, |cur| cur.max(range)));
        }
    }

    /// True when the known extents of (field, age) have reached every
    /// expected (propagated) extent — guards against dispatching consumers
    /// of implicitly-sized fields on a transiently-complete prefix.
    fn extents_settled(&self, field: FieldId, age: Age, ext: &p2g_field::Extents) -> bool {
        match self.expected_extents.get(&(field.0, age.0)) {
            None => true,
            Some(exp) => exp
                .iter()
                .enumerate()
                .all(|(d, e)| e.is_none_or(|n| ext.dim(d) >= n)),
        }
    }

    /// The instance ages of kernel `k` whose fetches the stored (field,
    /// age) may satisfy.
    fn affected_ages(&self, kid: KernelId, field: FieldId, fa: Age) -> Vec<u64> {
        let k = self.spec.kernel(kid);
        let mut ages = Vec::new();
        for fe in &k.fetches {
            if fe.field != field {
                continue;
            }
            match fe.age {
                AgeExpr::Rel(t) => {
                    if !k.has_age_var {
                        // A rel expression degenerates to age 0 for
                        // age-less kernels.
                        if fa.0 as i64 == t {
                            ages.push(0);
                        }
                    } else if fa.0 as i64 >= t {
                        ages.push((fa.0 as i64 - t) as u64);
                    }
                }
                AgeExpr::Const(c) => {
                    if fa.0 != c {
                        continue;
                    }
                    if !k.has_age_var {
                        ages.push(0);
                    } else {
                        // A constant-age fetch can unblock any age whose
                        // *other* (relative) fetches already have data;
                        // derive candidates from those fields' resident
                        // ages.
                        let mut any_rel = false;
                        for other in &k.fetches {
                            if let AgeExpr::Rel(t) = other.age {
                                any_rel = true;
                                let resident: Vec<u64> = self.fields[other.field.idx()]
                                    .read()
                                    .resident_ages()
                                    .map(|a| a.0)
                                    .collect();
                                for ra in resident {
                                    if ra as i64 >= t {
                                        ages.push((ra as i64 - t) as u64);
                                    }
                                }
                            }
                        }
                        if !any_rel {
                            ages.push(0);
                        }
                    }
                }
            }
        }
        ages.sort_unstable();
        ages.dedup();
        ages
    }

    fn on_unit_done(
        &mut self,
        kernel: KernelId,
        age: Age,
        instances: usize,
        stored_any: bool,
        out: &mut Vec<DispatchUnit>,
    ) {
        *self.completed.entry((kernel.0, age.0)).or_insert(0) += instances;
        let k = self.spec.kernel(kernel);
        // Source sequencing: schedule the next age after this one finished
        // and actually produced data ("the read loop ends when the kernel
        // stops storing to the next age").
        if k.is_source() && k.has_age_var && stored_any {
            let next = age.0 + 1;
            if self.age_allowed(k, next) && self.mark_dispatched(kernel, next, &[]) {
                self.emit(
                    DispatchUnit {
                        kernel,
                        age: Age(next),
                        instances: vec![vec![]],
                    },
                    out,
                );
            }
        }
        // Ordered gating: when the current age drains, advance and release
        // held units.
        if self.options[kernel.idx()].ordered {
            let outst = self.ordered_outstanding.entry(kernel.0).or_insert(0);
            *outst = outst.saturating_sub(1);
            if *outst == 0 {
                let next = self.ordered_next.entry(kernel.0).or_insert(0);
                *next = (*next).max(age.0 + 1);
                let release_age = *next;
                if let Some(per_age) = self.held.get_mut(&kernel.0) {
                    if let Some(units) = per_age.remove(&release_age) {
                        for u in units {
                            *self.ordered_outstanding.entry(kernel.0).or_insert(0) += 1;
                            out.push(u);
                        }
                    }
                }
            }
        }
    }

    /// Record an instance as dispatched; false when already dispatched.
    fn mark_dispatched(&mut self, kernel: KernelId, age: u64, indices: &[usize]) -> bool {
        let packed = PackedIndices::pack(indices).expect("index values fit 16 bits");
        self.dispatched
            .entry((kernel.0, age))
            .or_default()
            .insert(packed)
    }

    /// Route a unit to the output, respecting ordered gating.
    fn emit(&mut self, unit: DispatchUnit, out: &mut Vec<DispatchUnit>) {
        let kid = unit.kernel;
        if self.options[kid.idx()].ordered {
            let next = *self.ordered_next.entry(kid.0).or_insert(0);
            if unit.age.0 > next {
                self.held
                    .entry(kid.0)
                    .or_default()
                    .entry(unit.age.0)
                    .or_default()
                    .push(unit);
                return;
            }
            *self.ordered_outstanding.entry(kid.0).or_insert(0) += 1;
        }
        out.push(unit);
    }

    /// Size of kernel `kid`'s instance space at age `a`, when its binding
    /// extents are known and settled; `None` while undetermined.
    fn instance_space(&self, kid: KernelId, a: u64) -> Option<usize> {
        let k = self.spec.kernel(kid);
        if k.is_source() {
            return Some(1);
        }
        let mut space = 1usize;
        for &(fi, dim) in &self.bindings[kid.idx()] {
            let fe = &k.fetches[fi];
            let fa = fe.age.resolve(Age(a));
            let field = self.fields[fe.field.idx()].read();
            let ext = field.extents(fa)?.clone();
            drop(field);
            if !self.extents_settled(fe.field, fa, &ext) {
                return None;
            }
            space *= ext.dim(dim);
        }
        Some(space)
    }

    /// The smallest age of `kid` whose instances are not all dispatched and
    /// completed — no field age that `kid` still needs may be collected.
    /// `u64::MAX` when the kernel can never run again (age cap reached).
    fn kernel_safe_age(&mut self, kid: KernelId) -> u64 {
        let mut a = *self.gc_floor.get(&kid.0).unwrap_or(&0);
        loop {
            let k = self.spec.kernel(kid);
            if !self.age_allowed(k, a) {
                a = u64::MAX;
                break;
            }
            let Some(space) = self.instance_space(kid, a) else { break };
            let d = self.dispatched.get(&(kid.0, a)).map_or(0, |s| s.len());
            let c = *self.completed.get(&(kid.0, a)).unwrap_or(&0);
            if d < space || c < d {
                break;
            }
            a += 1;
        }
        if a != u64::MAX {
            self.gc_floor.insert(kid.0, a);
        }
        a
    }

    /// The exclusive upper bound of collectible ages for `field`:
    /// the window bound, clamped so no (current or future) consumer
    /// instance can still fetch a collected age. Constant-age fetches pin
    /// their age forever (the k-means `datapoints(0)` pattern).
    fn gc_limit(&mut self, field: FieldId, window_bound: u64) -> u64 {
        let mut limit = window_bound;
        let consumer_ids = self.consumers[field.idx()].clone();
        for kid in consumer_ids {
            // Fused consumers read the producer's staged buffer, never the
            // field itself.
            if self.fused_consumers.contains(&kid) {
                continue;
            }
            let fetch_ages: Vec<crate::AgeExprCopy> = self
                .spec
                .kernel(kid)
                .fetches
                .iter()
                .filter(|fe| fe.field == field)
                .map(|fe| match fe.age {
                    AgeExpr::Rel(t) => crate::AgeExprCopy::Rel(t),
                    AgeExpr::Const(c) => crate::AgeExprCopy::Const(c),
                })
                .collect();
            for fa in fetch_ages {
                match fa {
                    crate::AgeExprCopy::Rel(t) => {
                        let safe = self.kernel_safe_age(kid);
                        limit = limit.min(safe.saturating_add(t.max(0) as u64));
                    }
                    crate::AgeExprCopy::Const(c) => {
                        limit = limit.min(c);
                    }
                }
            }
        }
        limit
    }

    /// Enumerate kernel `kid`'s instance space at age `a`, dispatching
    /// every not-yet-dispatched instance whose fetches are all satisfied.
    fn try_generate(&mut self, kid: KernelId, a: u64, out: &mut Vec<DispatchUnit>) {
        let k = self.spec.kernel(kid);
        if !self.age_allowed(k, a) || k.is_source() {
            return;
        }
        let nvars = k.index_vars as usize;

        // Index-variable ranges from their binding fetches' extents.
        let mut ranges = Vec::with_capacity(nvars);
        for &(fi, dim) in &self.bindings[kid.idx()] {
            let fe = &k.fetches[fi];
            let fa = fe.age.resolve(Age(a));
            let field = self.fields[fe.field.idx()].read();
            match field.extents(fa) {
                Some(e) => ranges.push(e.dim(dim)),
                None => return, // no data for the binding age yet
            }
        }
        if ranges.contains(&0) {
            return;
        }
        let space: usize = ranges.iter().product::<usize>().max(1);
        if let Some(set) = self.dispatched.get(&(kid.0, a)) {
            if set.len() >= space {
                return; // everything already dispatched at this extent
            }
        }

        // Enumerate the instance space (mixed radix odometer).
        let mut runnable: Vec<Vec<usize>> = Vec::new();
        let mut idx = vec![0usize; nvars];
        loop {
            let packed = PackedIndices::pack(&idx).expect("index values fit 16 bits");
            let seen = self
                .dispatched
                .get(&(kid.0, a))
                .is_some_and(|s| s.contains(&packed));
            if !seen && self.instance_runnable(k, a, &idx) {
                self.dispatched
                    .entry((kid.0, a))
                    .or_default()
                    .insert(packed);
                runnable.push(idx.clone());
            }
            // Advance odometer.
            let mut d = nvars;
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < ranges[d] {
                    break;
                }
                idx[d] = 0;
                if d == 0 {
                    d = usize::MAX;
                    break;
                }
            }
            if nvars == 0 || d == usize::MAX {
                break;
            }
        }

        // Chunk runnable instances into dispatch units (data granularity).
        let chunk = self.options[kid.idx()].chunk_size.max(1);
        for group in runnable.chunks(chunk) {
            self.emit(
                DispatchUnit {
                    kernel: kid,
                    age: Age(a),
                    instances: group.to_vec(),
                },
                out,
            );
        }
    }

    /// True when every fetch of instance (k, a, idx) is fully written.
    fn instance_runnable(&self, k: &KernelSpec, a: u64, indices: &[usize]) -> bool {
        for fe in &k.fetches {
            let fa = fe.age.resolve(Age(a));
            let field = self.fields[fe.field.idx()].read();
            // Fetches spanning whole dimensions must wait until the
            // field's extents have settled (implicit-resize propagation).
            if fe.dims.iter().any(|d| matches!(d, IndexSel::All)) {
                match field.extents(fa) {
                    Some(ext) => {
                        if !self.extents_settled(fe.field, fa, &ext.clone()) {
                            return false;
                        }
                    }
                    None => return false,
                }
            }
            let whole_field = fe.dims.iter().all(|d| matches!(d, IndexSel::All));
            if whole_field {
                if !field.is_complete(fa) {
                    return false;
                }
                continue;
            }
            let region = crate::program::resolve_region(&fe.dims, indices);
            if !field.region_written(fa, &region) {
                return false;
            }
        }
        true
    }

    /// Test/diagnostic helper: total instances dispatched for a kernel.
    pub fn dispatched_count(&self, kid: KernelId) -> usize {
        self.dispatched
            .iter()
            .filter(|&(&(k, _), _)| k == kid.0)
            .map(|(_, s)| s.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::StoreEvent;
    use p2g_field::{Buffer, FieldDef, Region};
    use p2g_graph::spec::mul_sum_example;

    fn setup() -> (DependencyAnalyzer, SharedFields, Arc<ProgramSpec>) {
        let spec = Arc::new(mul_sum_example());
        let fields: SharedFields = Arc::new(
            spec.fields
                .iter()
                .enumerate()
                .map(|(i, d)| RwLock::new(Field::new(p2g_field::FieldId(i as u32), d.clone())))
                .collect(),
        );
        let options = vec![KernelOptions::default(); spec.kernels.len()];
        let an = DependencyAnalyzer::new(
            spec.clone(),
            options,
            HashSet::new(),
            fields.clone(),
            RunLimits::ages(3),
        );
        (an, fields, spec)
    }

    fn store_whole(fields: &SharedFields, fid: usize, age: u64, data: Vec<i32>) -> StoreEvent {
        let out = fields[fid]
            .write()
            .store(Age(age), &Region::all(1), &Buffer::from_vec(data))
            .unwrap();
        StoreEvent {
            field: p2g_field::FieldId(fid as u32),
            age: Age(age),
            elements: out.stored,
            age_complete: out.age_complete,
            resized: out.resized,
        }
    }

    #[test]
    fn seed_emits_sources_once() {
        let (mut an, _, spec) = setup();
        let units = an.seed();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].kernel, spec.kernel_by_name("init").unwrap());
        // Seeding again emits nothing (already dispatched).
        assert!(an.seed().is_empty());
    }

    #[test]
    fn store_unblocks_element_consumers() {
        let (mut an, fields, spec) = setup();
        an.seed();
        // init stores m_data(0) fully: mul2 gets 5 instances, print still
        // blocked (needs p_data too).
        let ev = store_whole(&fields, 0, 0, vec![10, 11, 12, 13, 14]);
        let units = an.on_event(&Event::Store(ev)).unwrap();
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        assert_eq!(units.len(), 5);
        assert!(units.iter().all(|u| u.kernel == mul2));
        let mut xs: Vec<usize> = units.iter().map(|u| u.instances[0][0]).collect();
        xs.sort_unstable();
        assert_eq!(xs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn print_unblocks_when_both_fields_complete() {
        let (mut an, fields, spec) = setup();
        an.seed();
        let ev = store_whole(&fields, 0, 0, vec![1, 2, 3]);
        an.on_event(&Event::Store(ev)).unwrap();
        let ev = store_whole(&fields, 1, 0, vec![2, 4, 6]);
        let units = an.on_event(&Event::Store(ev)).unwrap();
        let print = spec.kernel_by_name("print").unwrap();
        assert!(units.iter().any(|u| u.kernel == print));
    }

    #[test]
    fn no_duplicate_dispatch() {
        let (mut an, fields, spec) = setup();
        an.seed();
        let ev = store_whole(&fields, 0, 0, vec![1, 2, 3]);
        let first = an.on_event(&Event::Store(ev.clone())).unwrap();
        assert_eq!(first.len(), 3);
        // Replay of the same event produces nothing new.
        let second = an.on_event(&Event::Store(ev)).unwrap();
        assert!(second.is_empty());
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        assert_eq!(an.dispatched_count(mul2), 3);
    }

    #[test]
    fn max_ages_caps_instances() {
        let (mut an, fields, _) = setup();
        an.seed();
        // Ages 0..3 allowed (max_ages = 3); age 3 store must not generate
        // mul2 instances at age 3.
        for age in 0..4 {
            let ev = store_whole(&fields, 0, age, vec![1]);
            let units = an.on_event(&Event::Store(ev)).unwrap();
            if age < 3 {
                assert!(!units.is_empty(), "age {age} should dispatch");
            } else {
                assert!(units.is_empty(), "age {age} is beyond max_ages");
            }
        }
    }

    #[test]
    fn source_sequencing_follows_stored_any() {
        // A source kernel with an age variable re-arms only when the prior
        // instance stored data.
        let mut spec = ProgramSpec::new();
        let out_f = spec.add_field(FieldDef::new("frames", p2g_field::ScalarType::I32, 1));
        spec.add_kernel(p2g_graph::spec::KernelSpec {
            id: KernelId(0),
            name: "read".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![],
            stores: vec![p2g_graph::spec::StoreDecl {
                field: out_f,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
        });
        let spec = Arc::new(spec);
        let fields: SharedFields = Arc::new(
            spec.fields
                .iter()
                .enumerate()
                .map(|(i, d)| RwLock::new(Field::new(p2g_field::FieldId(i as u32), d.clone())))
                .collect(),
        );
        let mut an = DependencyAnalyzer::new(
            spec.clone(),
            vec![KernelOptions::default()],
            HashSet::new(),
            fields,
            RunLimits::unbounded(),
        );
        let units = an.seed();
        assert_eq!(units.len(), 1);
        // Completing with data: next age dispatched.
        let units = an
            .on_event(&Event::UnitDone {
                kernel: KernelId(0),
                age: Age(0),
                instances: 1,
                stored_any: true,
            })
            .unwrap();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].age, Age(1));
        // Completing without data (EOF): stream ends.
        let units = an
            .on_event(&Event::UnitDone {
                kernel: KernelId(0),
                age: Age(1),
                instances: 1,
                stored_any: false,
            })
            .unwrap();
        assert!(units.is_empty());
    }

    #[test]
    fn ordered_kernel_releases_in_age_order() {
        let (mut an, fields, spec) = setup();
        let print = spec.kernel_by_name("print").unwrap();
        an.options[print.idx()].ordered = true;
        an.seed();

        // Complete age 0 and age 1 data for both fields, but deliver age 1
        // completions first — print(1) must be held until print(0) is done.
        for age in [1u64, 0] {
            let ev = store_whole(&fields, 0, age, vec![1, 2]);
            an.on_event(&Event::Store(ev)).unwrap();
        }
        let mut print_units = Vec::new();
        for age in [1u64, 0] {
            let ev = store_whole(&fields, 1, age, vec![2, 4]);
            print_units.extend(
                an.on_event(&Event::Store(ev))
                    .unwrap()
                    .into_iter()
                    .filter(|u| u.kernel == print),
            );
        }
        // Only age 0 released so far.
        assert_eq!(print_units.len(), 1);
        assert_eq!(print_units[0].age, Age(0));
        // Completing age 0 releases age 1.
        let released = an
            .on_event(&Event::UnitDone {
                kernel: print,
                age: Age(0),
                instances: 1,
                stored_any: false,
            })
            .unwrap();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].age, Age(1));
    }

    #[test]
    fn chunking_merges_instances() {
        let (mut an, fields, spec) = setup();
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        an.options[mul2.idx()].chunk_size = 5;
        an.seed();
        let ev = store_whole(&fields, 0, 0, vec![1, 2, 3, 4, 5]);
        let units: Vec<_> = an
            .on_event(&Event::Store(ev))
            .unwrap()
            .into_iter()
            .filter(|u| u.kernel == mul2)
            .collect();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].len(), 5);
    }

    #[test]
    fn gc_respects_lagging_consumers() {
        // Consumers that have not completed pin their ages: storing far
        // ahead must not collect ages whose consumer instances are still
        // outstanding.
        let (mut an, fields, _) = setup();
        an.limits = RunLimits::ages(10).with_gc_window(1);
        an.seed();
        for age in 0..4 {
            let ev = store_whole(&fields, 0, age, vec![1]);
            an.on_event(&Event::Store(ev)).unwrap();
        }
        // mul2 instances were dispatched but never completed; print never
        // became runnable. Nothing may be collected.
        let resident: Vec<u64> = fields[0].read().resident_ages().map(|a| a.0).collect();
        assert_eq!(resident, vec![0, 1, 2, 3]);
    }

    #[test]
    fn gc_collects_behind_completed_consumers() {
        // A private pipeline (source → sink) where the sink completes each
        // age: old ages fall to the window GC.
        let mut spec = ProgramSpec::new();
        let f = spec.add_field(p2g_field::FieldDef::new(
            "stream",
            p2g_field::ScalarType::I32,
            1,
        ));
        spec.add_kernel(p2g_graph::spec::KernelSpec {
            id: KernelId(0),
            name: "src".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![],
            stores: vec![p2g_graph::spec::StoreDecl {
                field: f,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
        });
        spec.add_kernel(p2g_graph::spec::KernelSpec {
            id: KernelId(0),
            name: "sink".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![p2g_graph::spec::FetchDecl {
                field: f,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
            stores: vec![],
        });
        let spec = Arc::new(spec);
        let fields: SharedFields = Arc::new(
            spec.fields
                .iter()
                .enumerate()
                .map(|(i, d)| RwLock::new(Field::new(p2g_field::FieldId(i as u32), d.clone())))
                .collect(),
        );
        let mut an = DependencyAnalyzer::new(
            spec.clone(),
            vec![KernelOptions::default(); 2],
            HashSet::new(),
            fields.clone(),
            RunLimits::ages(20).with_gc_window(2),
        );
        an.seed();
        let sink = spec.kernel_by_name("sink").unwrap();
        for age in 0..8u64 {
            let ev = store_whole(&fields, 0, age, vec![1, 2]);
            let units = an.on_event(&Event::Store(ev)).unwrap();
            // Complete the sink instance for this age immediately.
            for u in units.iter().filter(|u| u.kernel == sink) {
                an.on_event(&Event::UnitDone {
                    kernel: sink,
                    age: u.age,
                    instances: u.len(),
                    stored_any: false,
                })
                .unwrap();
            }
        }
        // Window 2 behind age 7, consumers fully caught up → ages < 5
        // collected.
        let resident: Vec<u64> = fields[0].read().resident_ages().map(|a| a.0).collect();
        assert_eq!(resident, vec![5, 6, 7]);
    }

    #[test]
    fn gc_never_collects_const_fetched_ages() {
        // The k-means pattern: datapoints(0) is fetched at a constant age
        // by every iteration and must survive any window.
        let mut spec = ProgramSpec::new();
        let f_const = spec.add_field(p2g_field::FieldDef::new(
            "points",
            p2g_field::ScalarType::I32,
            1,
        ));
        let f_aged = spec.add_field(p2g_field::FieldDef::new(
            "state",
            p2g_field::ScalarType::I32,
            1,
        ));
        spec.add_kernel(p2g_graph::spec::KernelSpec {
            id: KernelId(0),
            name: "step".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![
                p2g_graph::spec::FetchDecl {
                    field: f_const,
                    age: AgeExpr::Const(0),
                    dims: vec![IndexSel::All],
                },
                p2g_graph::spec::FetchDecl {
                    field: f_aged,
                    age: AgeExpr::Rel(0),
                    dims: vec![IndexSel::All],
                },
            ],
            stores: vec![],
        });
        let spec = Arc::new(spec);
        let fields: SharedFields = Arc::new(
            spec.fields
                .iter()
                .enumerate()
                .map(|(i, d)| RwLock::new(Field::new(p2g_field::FieldId(i as u32), d.clone())))
                .collect(),
        );
        let mut an = DependencyAnalyzer::new(
            spec.clone(),
            vec![KernelOptions::default(); spec.kernels.len()],
            HashSet::new(),
            fields.clone(),
            RunLimits::ages(50).with_gc_window(1),
        );
        an.seed();
        // Store the const field at age 0, then push the aged field far
        // ahead; age 0 of the const field must survive.
        let ev = store_whole(&fields, 0, 0, vec![1, 2, 3]);
        an.on_event(&Event::Store(ev)).unwrap();
        for age in 0..6 {
            let ev = store_whole(&fields, 1, age, vec![9]);
            let units = an.on_event(&Event::Store(ev)).unwrap();
            for u in units {
                let (k, a, n) = (u.kernel, u.age, u.len());
                an.on_event(&Event::UnitDone {
                    kernel: k,
                    age: a,
                    instances: n,
                    stored_any: false,
                })
                .unwrap();
            }
        }
        assert!(
            fields[0].read().is_complete(Age(0)),
            "const-fetched field must never be collected"
        );
    }
}

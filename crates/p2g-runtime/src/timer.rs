//! Global timers for deadline support.
//!
//! The paper's kernel language lets a program declare a global timer
//! (`timer t1`), poll it from a kernel (`t1 + 100ms`) and reset it
//! (`t1 = now`). A timeout steers the body down an alternate code path that
//! stores to a different field, creating new dependencies — e.g. skipping
//! the encode of a frame whose playback deadline already passed.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A table of named global timers shared by every kernel instance of a
/// program.
#[derive(Debug, Default)]
pub struct TimerTable {
    timers: Mutex<HashMap<String, Instant>>,
}

impl TimerTable {
    /// Empty table.
    pub fn new() -> TimerTable {
        TimerTable::default()
    }

    /// Declare a timer, starting it now. Re-declaring resets it.
    pub fn declare(&self, name: &str) {
        self.timers.lock().insert(name.to_string(), Instant::now());
    }

    /// Reset a timer to now (`t1 = now`). Declares it if unknown.
    pub fn reset(&self, name: &str) {
        self.declare(name);
    }

    /// Time elapsed since the timer was last reset. `None` for unknown
    /// timers.
    pub fn elapsed(&self, name: &str) -> Option<Duration> {
        self.timers.lock().get(name).map(|t| t.elapsed())
    }

    /// Poll a deadline condition (`t1 + timeout` in the kernel language):
    /// true when `timeout` has passed since the last reset. Unknown timers
    /// are never expired.
    pub fn expired(&self, name: &str, timeout: Duration) -> bool {
        self.elapsed(name).is_some_and(|e| e > timeout)
    }

    /// Names of all declared timers.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.timers.lock().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_poll() {
        let t = TimerTable::new();
        t.declare("t1");
        assert!(!t.expired("t1", Duration::from_secs(60)));
        assert!(t.elapsed("t1").is_some());
    }

    #[test]
    fn expiry_after_timeout() {
        let t = TimerTable::new();
        t.declare("t1");
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.expired("t1", Duration::from_millis(1)));
        t.reset("t1");
        assert!(!t.expired("t1", Duration::from_millis(1)));
    }

    #[test]
    fn unknown_timer_never_expired() {
        let t = TimerTable::new();
        assert!(!t.expired("nope", Duration::ZERO));
        assert!(t.elapsed("nope").is_none());
    }

    #[test]
    fn names_sorted() {
        let t = TimerTable::new();
        t.declare("b");
        t.declare("a");
        assert_eq!(t.names(), vec!["a".to_string(), "b".to_string()]);
    }
}

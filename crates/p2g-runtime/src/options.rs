//! Execution-node tuning knobs: per-kernel granularity options, fault
//! policies and run limits.

use std::time::Duration;

use p2g_graph::KernelId;

/// What happens when a kernel instance has exhausted its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustPolicy {
    /// Abort the whole run with a kernel failure (the pre-fault-isolation
    /// behaviour, and the default).
    Abort,
    /// Poison the instance's would-have-been stores: the dependency
    /// analyzer skips exactly the transitively dependent instances and the
    /// run degrades ([`crate::instrument::Termination::Degraded`]) instead
    /// of dying.
    Poison,
}

/// Per-kernel fault-isolation policy: retry budget, exponential backoff
/// with deterministic jitter, per-instance soft deadline, and the
/// exhaustion action. The default (`retries: 0`, `Abort`, no deadline)
/// reproduces strict fail-fast semantics — a body error or panic aborts
/// the run, but never hangs it.
#[derive(Debug, Clone)]
pub struct FaultPolicy {
    /// Re-execution attempts after the first failure. Failed instances are
    /// re-dispatched as fresh units after the backoff delay.
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is stretched by up to this
    /// fraction, derived deterministically from the instance identity so
    /// runs stay reproducible.
    pub jitter: f64,
    /// Per-instance soft deadline. The watchdog thread flags an instance
    /// that overruns it through the cooperative cancellation token
    /// ([`crate::KernelCtx::cancelled`]); the body is expected to poll the
    /// token and bail out (`Err`), which then goes through the normal
    /// retry/exhaustion path. A body that never polls is merely recorded
    /// as a deadline miss — threads are never killed.
    pub deadline: Option<Duration>,
    /// Action once `retries` is exhausted.
    pub on_exhaust: ExhaustPolicy,
}

impl Default for FaultPolicy {
    fn default() -> FaultPolicy {
        FaultPolicy {
            retries: 0,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            jitter: 0.2,
            deadline: None,
            on_exhaust: ExhaustPolicy::Abort,
        }
    }
}

impl FaultPolicy {
    /// Policy with a retry budget (other knobs at their defaults).
    pub fn retries(n: u32) -> FaultPolicy {
        FaultPolicy {
            retries: n,
            ..FaultPolicy::default()
        }
    }

    /// Degrade (poison dependents) instead of aborting on exhaustion.
    pub fn poison(mut self) -> FaultPolicy {
        self.on_exhaust = ExhaustPolicy::Poison;
        self
    }

    /// Set the per-instance soft deadline.
    pub fn with_deadline(mut self, d: Duration) -> FaultPolicy {
        self.deadline = Some(d);
        self
    }

    /// Set the base backoff (doubles per attempt, capped).
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> FaultPolicy {
        self.backoff = base;
        self.backoff_cap = cap;
        self
    }

    /// True when this policy ever needs the watchdog thread (delayed
    /// retries or deadline flagging).
    pub fn needs_watchdog(&self) -> bool {
        self.retries > 0 || self.deadline.is_some()
    }

    /// The backoff delay before re-dispatching `attempt + 1`, with the
    /// deterministic jitter derived from `salt` (an instance-identity
    /// hash).
    pub fn backoff_for(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.backoff.saturating_mul(1u32 << attempt.min(20));
        let base = base.min(self.backoff_cap);
        // splitmix64 finalizer: a well-mixed fraction in [0, 1).
        let mut z = salt.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        let frac = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
        base.mul_f64(1.0 + self.jitter.clamp(0.0, 1.0) * frac)
    }
}

/// Per-kernel low-level-scheduler options — the granularity adaptation of
/// paper Figure 4.
#[derive(Debug, Clone)]
pub struct KernelOptions {
    /// Maximum number of ready instances of this kernel (same age) merged
    /// into one dispatch unit. 1 = finest data granularity (the default,
    /// and what the programmer is encouraged to express); larger values
    /// trade data parallelism for lower dispatch overhead (Figure 4,
    /// Age=2).
    pub chunk_size: usize,
    /// Run this *consumer* kernel inline after the producer instance that
    /// satisfies its single fetch, skipping its separate dispatch
    /// (Figure 4, Age=3 — reduced task parallelism). Set on the producer,
    /// naming the consumer.
    pub fuse_consumer: Option<KernelId>,
    /// Dispatch instances of this kernel strictly in age order, one age at
    /// a time. Needed by kernels with ordered side effects (the MJPEG
    /// `VLC/write` kernel appends to the output bitstream).
    pub ordered: bool,
    /// Fault-isolation policy for this kernel's instances.
    pub fault: FaultPolicy,
}

impl Default for KernelOptions {
    fn default() -> KernelOptions {
        KernelOptions {
            chunk_size: 1,
            fuse_consumer: None,
            ordered: false,
            fault: FaultPolicy::default(),
        }
    }
}

/// Configuration of the online granularity controller
/// ([`crate::granularity::GranularityController`]): the adaptation loop
/// that replaces static per-kernel `chunk_size` numbers with
/// trace-driven decisions — multiplicative increase while per-instance
/// dispatch overhead dominates, backoff when p95 instance latency
/// threatens a deadline budget.
#[derive(Debug, Clone)]
pub struct AdaptiveGranularity {
    /// Lower bound on the adapted chunk size.
    pub min_chunk: usize,
    /// Upper bound on the adapted chunk size.
    pub max_chunk: usize,
    /// Grow the chunk (×2) while `dispatch_ns / (dispatch_ns + kernel_ns)`
    /// over the last interval exceeds this fraction.
    pub overhead_high: f64,
    /// Shrink the chunk (÷2) when estimated per-unit latency
    /// (`p95 instance latency × chunk`) exceeds this budget. `None`
    /// disables the backoff (grow-only adaptation).
    pub p95_budget: Option<Duration>,
    /// Minimum time between controller decisions per kernel.
    pub interval: Duration,
    /// Minimum new instance completions in an interval before deciding —
    /// avoids adapting on noise.
    pub min_samples: u64,
}

impl Default for AdaptiveGranularity {
    fn default() -> AdaptiveGranularity {
        AdaptiveGranularity {
            min_chunk: 1,
            max_chunk: 256,
            overhead_high: 0.4,
            p95_budget: Some(Duration::from_millis(5)),
            interval: Duration::from_millis(2),
            min_samples: 32,
        }
    }
}

impl AdaptiveGranularity {
    /// Set the per-unit p95 latency budget that triggers chunk backoff.
    pub fn with_p95_budget(mut self, d: Duration) -> AdaptiveGranularity {
        self.p95_budget = Some(d);
        self
    }

    /// Bound the adapted chunk size to `[min, max]`.
    pub fn with_chunk_bounds(mut self, min: usize, max: usize) -> AdaptiveGranularity {
        self.min_chunk = min.max(1);
        self.max_chunk = max.max(self.min_chunk);
        self
    }
}

/// Limits that bound a run of a (possibly infinite) P2G program.
#[derive(Debug, Clone)]
pub struct RunLimits {
    /// Stop creating instances at this age (exclusive). The mul2/plus5
    /// example runs forever without it.
    pub max_ages: Option<u64>,
    /// Abort after this wall-clock duration.
    pub wall_deadline: Option<Duration>,
    /// Garbage-collect field ages more than this many ages behind the
    /// newest stored age of the same field. `None` disables GC.
    pub gc_window: Option<u64>,
    /// Distributed mode: do not stop when locally quiescent — remote
    /// stores may still arrive. The cluster coordinator detects global
    /// quiescence and calls `request_stop` on every node.
    pub hold_open: bool,
    /// Structured run tracing ([`crate::trace`]): record typed execution
    /// events into per-thread ring buffers and attach the merged
    /// [`crate::trace::RunTrace`] to the run report. `None` disables
    /// recording (one branch per would-be event). Defaults to enabled
    /// when the crate is built with the `trace` feature.
    pub trace: Option<crate::trace::TraceOptions>,
    /// Number of dependency-analyzer shards. `1` (the default) runs the
    /// single dedicated analyzer thread exactly as before; `N > 1`
    /// partitions analyzer state by `(kernel, age)` across N shard
    /// threads so independent store events are analyzed concurrently
    /// ([`crate::shard`]).
    pub shards: usize,
    /// Maximum events an analyzer thread drains back-to-back before
    /// re-checking deadlines and emitting a batch trace record.
    pub analyzer_batch: usize,
    /// Let workers dispatch an obviously-ready successor instance inline
    /// (single pointwise fetch fully satisfied by the store just applied)
    /// without a round trip through the analyzer. Always considered in
    /// sharded mode; this knob enables the fast path at `shards == 1` too.
    pub inline_dispatch: bool,
    /// Execute multi-instance dispatch units as one batched work unit —
    /// one queue pop, one `catch_unwind` segment chain, merged store
    /// events with contiguous extents — instead of looping the full
    /// per-instance machinery. Amortizes per-instance dispatch overhead
    /// for sub-microsecond kernel bodies. Off by default.
    pub batch_exec: bool,
    /// Online granularity adaptation: when set, a
    /// [`crate::granularity::GranularityController`] on the analyzer
    /// thread adjusts each kernel's effective chunk size from live
    /// per-kernel latency/overhead instruments, overriding the static
    /// `chunk_size` numbers. `None` (the default) keeps static chunking.
    pub adaptive: Option<AdaptiveGranularity>,
}

impl Default for RunLimits {
    fn default() -> RunLimits {
        RunLimits {
            max_ages: None,
            wall_deadline: None,
            gc_window: None,
            hold_open: false,
            trace: if cfg!(feature = "trace") {
                Some(crate::trace::TraceOptions::default())
            } else {
                None
            },
            shards: 1,
            analyzer_batch: 256,
            inline_dispatch: false,
            batch_exec: false,
            adaptive: None,
        }
    }
}

impl RunLimits {
    /// Run until quiescent with no limits (for terminating programs).
    pub fn unbounded() -> RunLimits {
        RunLimits::default()
    }

    /// Limit the run to `n` ages.
    pub fn ages(n: u64) -> RunLimits {
        RunLimits {
            max_ages: Some(n),
            ..RunLimits::default()
        }
    }

    /// Resident streaming mode: no age cap, stay open across local
    /// quiescence (input arrives over time, e.g. session frame submission),
    /// and GC field ages more than `gc_window` behind each field's
    /// frontier so memory stays flat over unbounded input.
    pub fn streaming(gc_window: u64) -> RunLimits {
        RunLimits {
            gc_window: Some(gc_window),
            hold_open: true,
            ..RunLimits::default()
        }
    }

    /// Add a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> RunLimits {
        self.wall_deadline = Some(d);
        self
    }

    /// Add an age GC window.
    pub fn with_gc_window(mut self, w: u64) -> RunLimits {
        self.gc_window = Some(w);
        self
    }

    /// Enable structured run tracing with default buffer sizes.
    pub fn with_trace(mut self) -> RunLimits {
        self.trace = Some(crate::trace::TraceOptions::default());
        self
    }

    /// Enable structured run tracing with explicit options.
    pub fn with_trace_options(mut self, opts: crate::trace::TraceOptions) -> RunLimits {
        self.trace = Some(opts);
        self
    }

    /// Shard the dependency analyzer across `n` threads (`1` keeps the
    /// single-thread analyzer).
    pub fn with_shards(mut self, n: usize) -> RunLimits {
        self.shards = n.max(1);
        self
    }

    /// Set the analyzer's greedy drain batch size.
    pub fn with_analyzer_batch(mut self, n: usize) -> RunLimits {
        self.analyzer_batch = n.max(1);
        self
    }

    /// Enable the worker-side inline dispatch fast path at `shards == 1`.
    pub fn with_inline_dispatch(mut self) -> RunLimits {
        self.inline_dispatch = true;
        self
    }

    /// Execute multi-instance dispatch units as one batched work unit.
    pub fn with_batch_exec(mut self) -> RunLimits {
        self.batch_exec = true;
        self
    }

    /// Enable online granularity adaptation with the given controller
    /// configuration (implies nothing about `batch_exec`; enable both for
    /// the full fast path).
    pub fn with_adaptive(mut self, cfg: AdaptiveGranularity) -> RunLimits {
        self.adaptive = Some(cfg);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = KernelOptions::default();
        assert_eq!(o.chunk_size, 1);
        assert!(o.fuse_consumer.is_none());
        assert!(!o.ordered);
    }

    #[test]
    fn builders() {
        let l = RunLimits::ages(5)
            .with_deadline(Duration::from_secs(1))
            .with_gc_window(3);
        assert_eq!(l.max_ages, Some(5));
        assert_eq!(l.gc_window, Some(3));
        assert!(l.wall_deadline.is_some());
    }

    #[test]
    fn shard_builders() {
        let l = RunLimits::default();
        assert_eq!(l.shards, 1);
        assert_eq!(l.analyzer_batch, 256);
        assert!(!l.inline_dispatch);
        let l = RunLimits::ages(5)
            .with_shards(4)
            .with_analyzer_batch(64)
            .with_inline_dispatch();
        assert_eq!(l.shards, 4);
        assert_eq!(l.analyzer_batch, 64);
        assert!(l.inline_dispatch);
        // Degenerate values clamp to the single-shard / single-event floor.
        let l = RunLimits::default().with_shards(0).with_analyzer_batch(0);
        assert_eq!(l.shards, 1);
        assert_eq!(l.analyzer_batch, 1);
    }

    #[test]
    fn batch_and_adaptive_builders() {
        let l = RunLimits::default();
        assert!(!l.batch_exec);
        assert!(l.adaptive.is_none());
        let l = RunLimits::ages(5)
            .with_batch_exec()
            .with_adaptive(AdaptiveGranularity::default());
        assert!(l.batch_exec);
        let cfg = l.adaptive.unwrap();
        assert_eq!(cfg.min_chunk, 1);
        assert_eq!(cfg.max_chunk, 256);
        // Bounds clamp: min at least 1, max at least min.
        let cfg = AdaptiveGranularity::default().with_chunk_bounds(0, 0);
        assert_eq!((cfg.min_chunk, cfg.max_chunk), (1, 1));
    }
}

//! Execution-node tuning knobs: per-kernel granularity options and run
//! limits.

use std::time::Duration;

use p2g_graph::KernelId;

/// Per-kernel low-level-scheduler options — the granularity adaptation of
/// paper Figure 4.
#[derive(Debug, Clone)]
pub struct KernelOptions {
    /// Maximum number of ready instances of this kernel (same age) merged
    /// into one dispatch unit. 1 = finest data granularity (the default,
    /// and what the programmer is encouraged to express); larger values
    /// trade data parallelism for lower dispatch overhead (Figure 4,
    /// Age=2).
    pub chunk_size: usize,
    /// Run this *consumer* kernel inline after the producer instance that
    /// satisfies its single fetch, skipping its separate dispatch
    /// (Figure 4, Age=3 — reduced task parallelism). Set on the producer,
    /// naming the consumer.
    pub fuse_consumer: Option<KernelId>,
    /// Dispatch instances of this kernel strictly in age order, one age at
    /// a time. Needed by kernels with ordered side effects (the MJPEG
    /// `VLC/write` kernel appends to the output bitstream).
    pub ordered: bool,
}

impl Default for KernelOptions {
    fn default() -> KernelOptions {
        KernelOptions {
            chunk_size: 1,
            fuse_consumer: None,
            ordered: false,
        }
    }
}

/// Limits that bound a run of a (possibly infinite) P2G program.
#[derive(Debug, Clone, Default)]
pub struct RunLimits {
    /// Stop creating instances at this age (exclusive). The mul2/plus5
    /// example runs forever without it.
    pub max_ages: Option<u64>,
    /// Abort after this wall-clock duration.
    pub wall_deadline: Option<Duration>,
    /// Garbage-collect field ages more than this many ages behind the
    /// newest stored age of the same field. `None` disables GC.
    pub gc_window: Option<u64>,
    /// Distributed mode: do not stop when locally quiescent — remote
    /// stores may still arrive. The cluster coordinator detects global
    /// quiescence and calls `request_stop` on every node.
    pub hold_open: bool,
}

impl RunLimits {
    /// Run until quiescent with no limits (for terminating programs).
    pub fn unbounded() -> RunLimits {
        RunLimits::default()
    }

    /// Limit the run to `n` ages.
    pub fn ages(n: u64) -> RunLimits {
        RunLimits {
            max_ages: Some(n),
            ..RunLimits::default()
        }
    }

    /// Add a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> RunLimits {
        self.wall_deadline = Some(d);
        self
    }

    /// Add an age GC window.
    pub fn with_gc_window(mut self, w: u64) -> RunLimits {
        self.gc_window = Some(w);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = KernelOptions::default();
        assert_eq!(o.chunk_size, 1);
        assert!(o.fuse_consumer.is_none());
        assert!(!o.ordered);
    }

    #[test]
    fn builders() {
        let l = RunLimits::ages(5)
            .with_deadline(Duration::from_secs(1))
            .with_gc_window(3);
        assert_eq!(l.max_ages, Some(5));
        assert_eq!(l.gc_window, Some(3));
        assert!(l.wall_deadline.is_some());
    }
}

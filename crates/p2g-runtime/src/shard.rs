//! Sharded dependency analysis: the routing plan and shared GC frontiers.
//!
//! With `RunLimits::shards = N > 1` the node runs N analyzer threads, each
//! owning a disjoint slice of the `(kernel, age)` instance space. The shard
//! key is age-based: an unpinned kernel's age `a` belongs to shard
//! `a % N`, so every store event of a streaming pipeline lands on exactly
//! one shard while consecutive ages analyze in parallel. Kernels whose
//! per-age state cannot be split — sources (self-sequencing), `ordered`
//! kernels (one `ordered_next` cursor), age-watched kernels (callbacks must
//! fire in age order), age-less kernels, and fused consumers — are *pinned*:
//! every age of a pinned kernel lives on its home shard `kernel % N`.
//!
//! A store event is routed to exactly the shards that own a consumer
//! instance it can affect: `Rel(t)` consumers map store age `a` to instance
//! age `a - t` (one shard), pinned consumers map to their home shard, and a
//! store at a `Const(c)` fetch age affects every age of the consumer, so it
//! broadcasts. Each delivered copy is separately counted in the node's
//! outstanding-work counter, so quiescence detection is unchanged.
//!
//! Cross-shard coordination is deliberately tiny:
//! * **Expected extents** ([`crate::events::Event::ShardExpect`]): a shard
//!   that learns a new extents lower bound broadcasts it *before*
//!   dispatching the units derived from the same event, so (per-shard FIFO
//!   channels) the expectation always arrives ahead of any store produced
//!   under it — settledness gates can never open early.
//! * **GC frontiers** ([`ShardGc`]): each shard publishes its per-kernel
//!   safe age over the ages it owns into a shared atomic slot; the global
//!   frontier is the min over shards. Field retirement is claimed with a
//!   `fetch_max` on a shared per-field floor, so exactly one shard collects
//!   each age while every shard prunes its local state as it observes the
//!   floor advance.
//! * **Poison**: `KernelFailure` events broadcast; every shard runs the
//!   same deterministic transitive traversal (poison sets are replicated),
//!   but the side effects — completion accounting, drain reporting, source
//!   re-arming, ordered advance — fire only on the owning shard.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use p2g_field::FieldId;
use p2g_graph::spec::AgeExpr;
use p2g_graph::{KernelId, ProgramSpec};

use crate::options::KernelOptions;

/// One routing rule for stores into a field, derived from a consumer fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RouteRule {
    /// Pinned consumer: all its ages live on this home shard.
    Home(usize),
    /// `Rel(t)` fetch of an unpinned consumer: store age `a` affects
    /// instance age `a - t` → shard `(a - t) % N`.
    Rel(i64),
    /// `Const(c)` fetch of an unpinned consumer: a store at age `c`
    /// affects every instance age → broadcast.
    ConstAge(u64),
}

/// The static shard-routing plan: which shard owns each `(kernel, age)`
/// and which shards must observe each store event.
#[derive(Debug)]
pub struct ShardPlan {
    shards: usize,
    /// Per kernel: true when every age of the kernel lives on `home`.
    pinned: Vec<bool>,
    /// Per kernel: the home shard (`kernel % N`).
    home: Vec<usize>,
    /// Per field: routing rules derived from its non-fused consumers.
    routes: Vec<Vec<RouteRule>>,
}

impl ShardPlan {
    /// Build the plan for `spec` under `options`. `fused` are consumer
    /// kernels run inline by their producer; `watched` carry analyzer age
    /// watches. Both are pinned to their home shard.
    pub fn new(
        spec: &ProgramSpec,
        options: &[KernelOptions],
        fused: &HashSet<KernelId>,
        watched: &HashSet<KernelId>,
        shards: usize,
    ) -> ShardPlan {
        let shards = shards.max(1);
        let nk = spec.kernels.len();
        let mut pinned = vec![false; nk];
        let mut home = vec![0usize; nk];
        for (i, k) in spec.kernels.iter().enumerate() {
            home[i] = i % shards;
            pinned[i] = k.is_source()
                || !k.has_age_var
                || options[i].ordered
                || watched.contains(&k.id)
                || fused.contains(&k.id);
        }
        let mut routes: Vec<Vec<RouteRule>> = vec![Vec::new(); spec.fields.len()];
        for (i, k) in spec.kernels.iter().enumerate() {
            if fused.contains(&k.id) {
                continue; // analyzed inline by the producer, never routed
            }
            for fe in &k.fetches {
                let rule = if pinned[i] {
                    RouteRule::Home(home[i])
                } else {
                    match fe.age {
                        AgeExpr::Rel(t) => RouteRule::Rel(t),
                        AgeExpr::Const(c) => RouteRule::ConstAge(c),
                    }
                };
                let slot = &mut routes[fe.field.idx()];
                if !slot.contains(&rule) {
                    slot.push(rule);
                }
            }
        }
        // Consumer-less fields still need one shard to run their GC
        // bookkeeping (view creation + retirement).
        for (f, slot) in routes.iter_mut().enumerate() {
            if slot.is_empty() {
                slot.push(RouteRule::Home(f % shards));
            }
        }
        ShardPlan {
            shards,
            pinned,
            home,
            routes,
        }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// True when `shard` owns instance `(kernel, age)` — the shard that
    /// dispatches, completes and GC-accounts it.
    pub fn owns(&self, kernel: KernelId, age: u64, shard: usize) -> bool {
        let k = kernel.idx();
        if self.pinned[k] {
            self.home[k] == shard
        } else {
            (age as usize) % self.shards == shard
        }
    }

    /// True when every age of `kernel` lives on its home shard.
    pub fn is_pinned(&self, kernel: KernelId) -> bool {
        self.pinned[kernel.idx()]
    }

    /// The shard owning a `(kernel, age)` instance.
    pub fn unit_owner(&self, kernel: KernelId, age: u64) -> usize {
        let k = kernel.idx();
        if self.pinned[k] {
            self.home[k]
        } else {
            (age as usize) % self.shards
        }
    }

    /// Destination shards for a store into `field` at `age`, as a bitmask
    /// (bit s ⇒ deliver to shard s). Plans are capped at 64 shards.
    pub fn store_dests(&self, field: FieldId, age: u64) -> u64 {
        let all: u64 = if self.shards >= 64 {
            u64::MAX
        } else {
            (1u64 << self.shards) - 1
        };
        let mut mask = 0u64;
        for rule in &self.routes[field.idx()] {
            match *rule {
                RouteRule::Home(s) => mask |= 1u64 << s,
                RouteRule::Rel(t) => {
                    // Store age `a` feeds instance age `a - t`; ages the
                    // consumer can never reach (a < t) route nowhere.
                    if t >= 0 {
                        if age >= t as u64 {
                            mask |= 1u64 << ((age - t as u64) as usize % self.shards);
                        }
                    } else {
                        mask |= 1u64 << ((age + (-t) as u64) as usize % self.shards);
                    }
                }
                RouteRule::ConstAge(c) => {
                    if age == c {
                        return all;
                    }
                }
            }
            if mask == all {
                return all;
            }
        }
        mask
    }
}

/// Shared GC frontier state for a sharded run.
///
/// * `kernel_frontier[k * shards + s]`: shard s's published safe age for
///   kernel k — every owned age below it is demonstrably finished. The
///   global safe age is the min over shards (a shard skips ages it does
///   not own, so each age below the min is vouched for by its owner).
/// * `field_retired[f]`: the retire floor of field f, advanced with
///   `fetch_max` by whichever shard first derives a higher limit — that
///   shard collects the slabs; every shard prunes its local state when it
///   observes the floor above its own.
pub struct ShardGc {
    shards: usize,
    kernel_frontier: Vec<AtomicU64>,
    field_retired: Vec<AtomicU64>,
}

impl ShardGc {
    /// Zeroed frontiers for `kernels` kernels, `fields` fields, `shards`
    /// shards.
    pub fn new(kernels: usize, fields: usize, shards: usize) -> ShardGc {
        ShardGc {
            shards,
            kernel_frontier: (0..kernels * shards).map(|_| AtomicU64::new(0)).collect(),
            field_retired: (0..fields).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publish shard `s`'s safe age for `kernel`.
    pub fn publish_kernel_frontier(&self, kernel: KernelId, s: usize, age: u64) {
        self.kernel_frontier[kernel.idx() * self.shards + s].store(age, Ordering::Release);
    }

    /// Global safe age for `kernel`: min over every shard's published slot.
    pub fn kernel_frontier(&self, kernel: KernelId) -> u64 {
        let base = kernel.idx() * self.shards;
        (0..self.shards)
            .map(|s| self.kernel_frontier[base + s].load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }

    /// Try to advance `field`'s retire floor to `limit`. Returns the floor
    /// before the call; the caller collects iff it was below `limit`.
    pub fn claim_retire(&self, field: FieldId, limit: u64) -> u64 {
        self.field_retired[field.idx()].fetch_max(limit, Ordering::AcqRel)
    }

    /// The field's current retire floor.
    pub fn retire_floor(&self, field: FieldId) -> u64 {
        self.field_retired[field.idx()].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2g_graph::spec::mul_sum_example;

    fn plan(shards: usize) -> ShardPlan {
        let spec = mul_sum_example();
        let options = vec![KernelOptions::default(); spec.kernels.len()];
        ShardPlan::new(
            &spec,
            &options,
            &HashSet::new(),
            &HashSet::new(),
            shards,
        )
    }

    #[test]
    fn ownership_partitions_every_age() {
        let p = plan(4);
        let spec = mul_sum_example();
        for k in 0..spec.kernels.len() {
            for age in 0..32u64 {
                let owners: Vec<usize> = (0..4)
                    .filter(|&s| p.owns(KernelId(k as u32), age, s))
                    .collect();
                assert_eq!(owners.len(), 1, "kernel {k} age {age}");
                assert_eq!(owners[0], p.unit_owner(KernelId(k as u32), age));
            }
        }
    }

    #[test]
    fn sources_and_ageless_kernels_are_pinned() {
        let p = plan(4);
        let spec = mul_sum_example();
        for (i, k) in spec.kernels.iter().enumerate() {
            if k.is_source() || !k.has_age_var {
                assert!(p.is_pinned(k.id), "kernel {i} should be pinned");
            }
        }
    }

    #[test]
    fn store_dests_cover_unit_owners() {
        // Every shard that owns a consumer instance affected by a store
        // must be in the store's destination mask.
        let p = plan(4);
        let spec = mul_sum_example();
        for f in 0..spec.fields.len() {
            for age in 0..16u64 {
                let mask = p.store_dests(FieldId(f as u32), age);
                for k in &spec.kernels {
                    for fe in &k.fetches {
                        if fe.field.idx() != f {
                            continue;
                        }
                        let instance_ages: Vec<u64> = match fe.age {
                            AgeExpr::Rel(t) => {
                                if !k.has_age_var {
                                    if age == t.max(0) as u64 {
                                        vec![0]
                                    } else {
                                        vec![]
                                    }
                                } else if t >= 0 && age >= t as u64 {
                                    vec![age - t as u64]
                                } else if t < 0 {
                                    vec![age + (-t) as u64]
                                } else {
                                    vec![]
                                }
                            }
                            AgeExpr::Const(c) if age == c => (0..16u64).collect(),
                            AgeExpr::Const(_) => vec![],
                        };
                        for ia in instance_ages {
                            let owner = p.unit_owner(k.id, ia);
                            assert!(
                                mask & (1 << owner) != 0,
                                "field {f} age {age} misses owner {owner} of {} @{ia}",
                                k.name
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let p = plan(1);
        let spec = mul_sum_example();
        for f in 0..spec.fields.len() {
            for age in 0..8u64 {
                assert_eq!(p.store_dests(FieldId(f as u32), age), 1);
            }
        }
        for k in &spec.kernels {
            assert_eq!(p.unit_owner(k.id, 3), 0);
        }
    }

    #[test]
    fn shard_gc_frontier_is_min_over_shards() {
        let gc = ShardGc::new(2, 1, 3);
        gc.publish_kernel_frontier(KernelId(0), 0, 7);
        gc.publish_kernel_frontier(KernelId(0), 1, 4);
        gc.publish_kernel_frontier(KernelId(0), 2, u64::MAX);
        assert_eq!(gc.kernel_frontier(KernelId(0)), 4);
        assert_eq!(gc.kernel_frontier(KernelId(1)), 0);
        assert_eq!(gc.claim_retire(FieldId(0), 5), 0);
        assert_eq!(gc.claim_retire(FieldId(0), 3), 5);
        assert_eq!(gc.retire_floor(FieldId(0)), 5);
    }
}

//! Kernel instance identification.

use p2g_field::Age;
use p2g_graph::KernelId;

/// Maximum index variables per kernel; index values are packed 16 bits each
/// into a `u64` for cheap hashing and dispatched-set membership.
pub const MAX_INDEX_VARS: usize = 4;

/// Packed index-variable values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedIndices(u64);

impl PackedIndices {
    /// Pack index values (each must be < 65536).
    pub fn pack(indices: &[usize]) -> Option<PackedIndices> {
        if indices.len() > MAX_INDEX_VARS {
            return None;
        }
        let mut v = 0u64;
        for (d, &ix) in indices.iter().enumerate() {
            if ix > u16::MAX as usize {
                return None;
            }
            v |= (ix as u64) << (16 * d);
        }
        Some(PackedIndices(v))
    }

    /// Unpack into `n` index values.
    pub fn unpack(self, n: usize) -> Vec<usize> {
        (0..n)
            .map(|d| ((self.0 >> (16 * d)) & 0xFFFF) as usize)
            .collect()
    }
}

/// Identifies one kernel instance: (kernel definition, age, index values).
///
/// Each key is dispatched at most once — the runtime counterpart of the
/// write-once rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InstanceKey {
    pub kernel: KernelId,
    pub age: Age,
    pub indices: Vec<usize>,
}

impl InstanceKey {
    /// Instance with no index variables.
    pub fn plain(kernel: KernelId, age: Age) -> InstanceKey {
        InstanceKey {
            kernel,
            age,
            indices: Vec::new(),
        }
    }
}

impl std::fmt::Display for InstanceKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.kernel, self.age)?;
        for ix in &self.indices {
            write!(f, "[{ix}]")?;
        }
        Ok(())
    }
}

/// A unit handed to a worker: one or more instances of the same kernel and
/// age, merged by the data-granularity setting (`chunk_size`).
#[derive(Debug, Clone)]
pub struct DispatchUnit {
    pub kernel: KernelId,
    pub age: Age,
    /// Index combinations covered by this dispatch.
    pub instances: Vec<Vec<usize>>,
    /// Execution attempt: 0 for the first dispatch, incremented on each
    /// fault-policy retry. Retry attempts apply their stores idempotently
    /// (a fused consumer may have failed after the producer stores landed).
    pub attempt: u32,
    /// Carried across retries: whether an earlier attempt of this unit
    /// already stored something (feeds the final `UnitDone::stored_any`,
    /// which drives source sequencing).
    pub prior_stored: bool,
}

impl DispatchUnit {
    /// A first-attempt unit.
    pub fn new(kernel: KernelId, age: Age, instances: Vec<Vec<usize>>) -> DispatchUnit {
        DispatchUnit {
            kernel,
            age,
            instances,
            attempt: 0,
            prior_stored: false,
        }
    }

    /// Number of kernel instances in this unit.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True if the unit covers no instances (never produced by the
    /// analyzer; exists for API completeness).
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let p = PackedIndices::pack(&[3, 65535, 0, 7]).unwrap();
        assert_eq!(p.unpack(4), vec![3, 65535, 0, 7]);
    }

    #[test]
    fn pack_rejects_large_values() {
        assert!(PackedIndices::pack(&[65536]).is_none());
        assert!(PackedIndices::pack(&[0; 5]).is_none());
    }

    #[test]
    fn pack_empty() {
        let p = PackedIndices::pack(&[]).unwrap();
        assert_eq!(p.unpack(0), Vec::<usize>::new());
    }

    #[test]
    fn display_format() {
        let k = InstanceKey {
            kernel: KernelId(2),
            age: Age(1),
            indices: vec![4],
        };
        assert_eq!(k.to_string(), "k2@age=1[4]");
    }
}

//! Events on the publish–subscribe bus between workers and the dependency
//! analyzer.
//!
//! P2G is push-based: kernel instances publish store/resize events; the
//! analyzer subscribes to events for the fields each kernel fetches and
//! derives newly-runnable instances.

use p2g_field::{Age, Extents, FieldId, Region};
use p2g_graph::KernelId;

/// A store applied to a field by a kernel instance.
///
/// `region` and `extents` are captured *inside* the field write lock at
/// store time, so the event fully describes the store even though the
/// analyzer observes events asynchronously (possibly after later stores
/// have grown the field). `region` is pre-resolved to explicit
/// `Index`/`Range` selectors — never `All` — so its coordinates stay valid
/// under any extents that are a superset of `extents`.
#[derive(Debug, Clone)]
pub struct StoreEvent {
    pub field: FieldId,
    pub age: Age,
    /// The stored region, resolved against the extents at store time
    /// (no `All` selectors).
    pub region: Region,
    /// Field extents for this age immediately after the store applied.
    pub extents: Extents,
    /// Elements written by this store.
    pub elements: usize,
    /// True when this store completed the age (every element written).
    pub age_complete: bool,
    /// New extents when the store triggered an implicit resize.
    pub resized: Option<Extents>,
    /// Sharded/inline fast path: the worker that applied this store
    /// already dispatched this consumer's single unblocked instance
    /// inline. The analyzer marks it dispatched instead of dispatching
    /// it again ([`crate::shard`]).
    pub inline_dispatched: Option<KernelId>,
}

/// Bus events consumed by the dependency analyzer.
#[derive(Debug, Clone)]
pub enum Event {
    /// A kernel instance stored into a field.
    Store(StoreEvent),
    /// A store forwarded from another execution node (distributed mode).
    /// The analyzer applies it to the local field replica and then treats
    /// it like a local store event.
    RemoteStore {
        field: FieldId,
        age: Age,
        region: p2g_field::Region,
        buffer: p2g_field::Buffer,
    },
    /// The cluster reassigned this node's kernel set after a node failure
    /// (distributed recovery). The analyzer adopts the new assignment,
    /// seeds any newly-owned source kernels, and rescans resident field
    /// data for instances that are now this node's responsibility.
    Reassign {
        kernels: std::collections::HashSet<KernelId>,
    },
    /// A dispatch unit finished executing. Drives source-kernel
    /// self-sequencing ("read the next frame only if this one stored
    /// something") and ordered-kernel gating.
    UnitDone {
        kernel: KernelId,
        age: Age,
        /// Instances covered by the unit.
        instances: usize,
        /// True when the unit's bodies performed at least one store.
        stored_any: bool,
        /// True when some instances of the unit failed and were re-queued
        /// for a delayed retry: the unit is not yet finished, so ordered
        /// gating and source sequencing must keep waiting for it.
        retried: bool,
    },
    /// A kernel instance failed for good (its retry budget, if any, is
    /// exhausted) under [`crate::options::ExhaustPolicy::Poison`]. The
    /// analyzer marks the instance's would-have-been stores poisoned and
    /// propagates poison to the transitively dependent instances, skipping
    /// them instead of aborting the run.
    KernelFailure {
        kernel: KernelId,
        age: Age,
        indices: Vec<usize>,
        message: String,
    },
    /// A kernel body failed; the node aborts the run.
    Failure(String),
    /// Sharded mode only: a shard's expected-extents knowledge for
    /// `(field, age)` grew ([`crate::analyzer`] extent propagation). The
    /// expectation is broadcast so every shard's settledness gates close
    /// before any store produced under the new expectation can arrive.
    /// Max-merged on receipt; expectations only ever grow.
    ShardExpect {
        field: FieldId,
        age: Age,
        dims: Vec<Option<usize>>,
    },
}

//! The shared worker pool behind [`crate::session::SessionRuntime`]: a
//! fixed set of worker threads executing dispatch units for *many* nodes
//! at once.
//!
//! In batch mode each [`crate::NodeBuilder::launch`] spawns its own
//! workers. A resident multi-tenant runtime cannot do that — a hundred
//! sessions must not mean a hundred thread pools — so the pool owns the
//! threads and every attached node routes its ready units here instead of
//! its private queue. Entries rank by (class, vtime, age, kernel, arrival)
//! *across* sessions:
//!
//! * Without per-session [`Qos`] every entry sits at the default
//!   `(QOS_CLASS_NORMAL, 0)` rank, so the queue degenerates to the
//!   original age discipline: ages are frame numbers, the session that is
//!   furthest behind pops first, and a saturated tenant's deep backlog
//!   cannot starve a lightly-loaded one.
//! * With [`Qos`] configured, `class` is a strict priority level and
//!   `vtime` implements start-time fair queueing (SFQ): each dispatched
//!   unit advances its session's virtual time by `STRIDE_ONE / weight`,
//!   clamped up to the pool-global virtual clock, so saturating sessions
//!   receive worker time proportional to their weights and an idle
//!   session cannot bank credit while asleep and then monopolize the pool
//!   on wake.
//!
//! Lifecycle: the pool outlives the nodes attached to it. Nodes stop
//! individually (quiescence, `request_stop`); their queued units drain
//! harmlessly — a unit for a stopped-and-failed node is skipped, one for a
//! cleanly-stopped node runs against its still-live fields. The pool
//! itself shuts down when dropped: the queue closes, workers finish the
//! remaining backlog and exit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::instance::DispatchUnit;
use crate::node::{pool_worker_tick, Shared};
use crate::ready::{Ranked, ReadyQueue, QOS_CLASS_NORMAL};

/// Virtual-time advance per dispatched unit at weight 1. Weights divide
/// this stride, so a weight-2 session's vtime grows half as fast and it
/// pops twice as many units per unit of virtual time.
const STRIDE_ONE: u64 = 1 << 20;

/// Per-session quality of service on the shared pool: a strict priority
/// class plus a weighted fair share within the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Qos {
    /// Strict priority level, lower is more urgent. Class
    /// [`QOS_CLASS_NORMAL`] (1) is where sessions without explicit QoS
    /// rank; 0 is the realtime class, 2 the bulk class.
    pub class: u8,
    /// Fair-share weight within the class (at least 1): while saturated,
    /// a weight-2 session receives twice the dispatches of a weight-1
    /// session of the same class.
    pub weight: u32,
}

impl Default for Qos {
    fn default() -> Qos {
        Qos::normal()
    }
}

impl Qos {
    /// The default class with weight 1.
    pub fn normal() -> Qos {
        Qos {
            class: QOS_CLASS_NORMAL,
            weight: 1,
        }
    }

    /// The realtime class: strictly ahead of every normal/bulk entry.
    pub fn high() -> Qos {
        Qos { class: 0, weight: 1 }
    }

    /// The bulk class: strictly behind every realtime/normal entry.
    pub fn bulk() -> Qos {
        Qos { class: 2, weight: 1 }
    }

    /// Set the fair-share weight (at least 1).
    pub fn weight(mut self, w: u32) -> Qos {
        self.weight = w.max(1);
        self
    }
}

/// The live SFQ state of one QoS-configured session: its class, stride,
/// and advancing virtual time.
pub(crate) struct QosState {
    pub(crate) class: u8,
    stride: u64,
    vtime: AtomicU64,
    /// Units dispatched to the pool under this state — the fair-share
    /// gauge the QoS tests measure.
    dispatched: AtomicU64,
}

impl QosState {
    pub(crate) fn new(qos: Qos) -> Arc<QosState> {
        Arc::new(QosState {
            class: qos.class,
            stride: (STRIDE_ONE / u64::from(qos.weight.max(1))).max(1),
            vtime: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
        })
    }

    /// The SFQ start tag for the next unit: `max(own vtime, global
    /// clock)`, advancing own vtime by one stride. The clamp to the
    /// global clock is what stops an idle session from accumulating an
    /// arbitrarily old vtime and then starving everyone on wake.
    fn next_start(&self, clock: &AtomicU64) -> u64 {
        let global = clock.load(Ordering::Relaxed);
        let mut cur = self.vtime.load(Ordering::Relaxed);
        loop {
            let start = cur.max(global);
            match self.vtime.compare_exchange_weak(
                cur,
                start.saturating_add(self.stride),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return start,
                Err(now) => cur = now,
            }
        }
    }

    pub(crate) fn units_dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }
}

/// One queued unit of work: the owning node's shared state plus the unit,
/// stamped with the owning session's QoS rank at enqueue time.
pub(crate) struct PoolTask {
    pub(crate) shared: Arc<Shared>,
    pub(crate) unit: DispatchUnit,
    class: u8,
    vtime: u64,
}

impl Ranked for PoolTask {
    fn rank_age(&self) -> u64 {
        self.unit.age.0
    }
    fn rank_kernel(&self) -> u32 {
        self.unit.kernel.0
    }
    fn rank_class(&self) -> u8 {
        self.class
    }
    fn rank_vtime(&self) -> u64 {
        self.vtime
    }
}

/// A fixed-size worker pool shared by every session of a
/// [`crate::session::SessionRuntime`] (and by pool-attached batch nodes).
pub struct WorkerPool {
    queue: Arc<ReadyQueue<PoolTask>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
    /// The pool-global SFQ virtual clock: the maximum vtime tag that has
    /// entered service. New and waking sessions clamp up to it.
    clock: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Start a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let queue: Arc<ReadyQueue<PoolTask>> = Arc::new(ReadyQueue::new());
        let clock = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let q = queue.clone();
            let clk = clock.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("p2g-pool-{w}"))
                    .spawn(move || {
                        while let Some(task) = q.pop() {
                            clk.fetch_max(task.vtime, Ordering::Relaxed);
                            pool_worker_tick(w as u32, task);
                        }
                    })
                    .expect("spawn pool worker"),
            );
        }
        Arc::new(WorkerPool {
            queue,
            handles: Mutex::new(handles),
            workers,
            clock,
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Units currently queued (all tenants).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Enqueue one unit for `shared`'s node, stamped with its session's
    /// QoS rank (or the neutral default rank when the node has no QoS).
    pub(crate) fn submit(&self, shared: Arc<Shared>, unit: DispatchUnit) {
        let (class, vtime) = match shared.qos() {
            Some(q) => {
                q.dispatched.fetch_add(1, Ordering::Relaxed);
                (q.class, q.next_start(&self.clock))
            }
            None => (QOS_CLASS_NORMAL, 0),
        };
        self.queue.push(PoolTask {
            shared,
            unit,
            class,
            vtime,
        });
    }

    /// Close the queue and join the workers (remaining backlog drains
    /// first). Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

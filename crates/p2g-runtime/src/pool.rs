//! The shared worker pool behind [`crate::session::SessionRuntime`]: a
//! fixed set of worker threads executing dispatch units for *many* nodes
//! at once.
//!
//! In batch mode each [`crate::NodeBuilder::launch`] spawns its own
//! workers. A resident multi-tenant runtime cannot do that — a hundred
//! sessions must not mean a hundred thread pools — so the pool owns the
//! threads and every attached node routes its ready units here instead of
//! its private queue. Entries rank by (age, kernel, arrival) *across*
//! sessions: ages are frame numbers, so the session that is furthest
//! behind pops first and a saturated tenant's deep backlog cannot starve a
//! lightly-loaded one (its next frame always ranks ahead of the backlog's
//! tail).
//!
//! Lifecycle: the pool outlives the nodes attached to it. Nodes stop
//! individually (quiescence, `request_stop`); their queued units drain
//! harmlessly — a unit for a stopped-and-failed node is skipped, one for a
//! cleanly-stopped node runs against its still-live fields. The pool
//! itself shuts down when dropped: the queue closes, workers finish the
//! remaining backlog and exit.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::instance::DispatchUnit;
use crate::node::{pool_worker_tick, Shared};
use crate::ready::{Ranked, ReadyQueue};

/// One queued unit of work: the owning node's shared state plus the unit.
pub(crate) struct PoolTask {
    pub(crate) shared: Arc<Shared>,
    pub(crate) unit: DispatchUnit,
}

impl Ranked for PoolTask {
    fn rank_age(&self) -> u64 {
        self.unit.age.0
    }
    fn rank_kernel(&self) -> u32 {
        self.unit.kernel.0
    }
}

/// A fixed-size worker pool shared by every session of a
/// [`crate::session::SessionRuntime`] (and by pool-attached batch nodes).
pub struct WorkerPool {
    queue: Arc<ReadyQueue<PoolTask>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
}

impl WorkerPool {
    /// Start a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let queue: Arc<ReadyQueue<PoolTask>> = Arc::new(ReadyQueue::new());
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let q = queue.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("p2g-pool-{w}"))
                    .spawn(move || {
                        while let Some(task) = q.pop() {
                            pool_worker_tick(w as u32, task);
                        }
                    })
                    .expect("spawn pool worker"),
            );
        }
        Arc::new(WorkerPool {
            queue,
            handles: Mutex::new(handles),
            workers,
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Units currently queued (all tenants).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Enqueue one unit for `shared`'s node.
    pub(crate) fn submit(&self, shared: Arc<Shared>, unit: DispatchUnit) {
        self.queue.push(PoolTask { shared, unit });
    }

    /// Close the queue and join the workers (remaining backlog drains
    /// first). Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

//! The resident streaming runtime: many concurrent pipeline sessions over
//! unbounded input, on one shared worker pool.
//!
//! Batch mode answers "run this program to quiescence"; a media server
//! needs "keep this pipeline resident and push frames through it forever,
//! for many clients at once". A [`SessionRuntime`] owns a fixed
//! [`WorkerPool`]; each [`Session`] is one tenant pipeline attached to it:
//!
//! * [`Session::submit`] feeds one frame — its field parts are injected at
//!   the session's next age (the age axis *is* the frame axis, paper
//!   Section IV). Admission control caps in-flight ages per session:
//!   `submit` blocks (and [`Session::try_submit`] returns
//!   [`SubmitError::WouldBlock`]) while the cap is reached, which is also
//!   the backpressure path when the shared workers saturate — frames then
//!   complete slower than they arrive and the in-flight window fills.
//! * An analyzer **age watch** on the terminal kernel fires, in age order,
//!   when every instance of a frame's age has completed or been poisoned.
//!   The watch moves that frame's staged bytes from the [`SessionSink`]
//!   to the output queue ([`Session::poll_output`] / [`Session::recv`]);
//!   a poisoned frame (exhausted retries under a `frame_deadline`-style
//!   fault policy) yields a [`SessionOutput`] with `payload: None` so the
//!   consumer sees the drop instead of a stall.
//! * [`RunLimits::streaming`] keeps the node open across local quiescence
//!   and arms the age GC; together with the analyzer-state pruning this
//!   keeps resident memory flat over 10k+ frames — the soak tests assert
//!   the peak live-age count stays bounded.
//!
//! Fairness across tenants comes from the pool's age-ranked queue: ages
//! are per-session frame numbers, so a saturated session's deep backlog
//! ranks behind every other session's next frame.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use p2g_field::{Age, Buffer, FieldId, Region};

use crate::error::RuntimeError;
use crate::instrument::RunReport;
use crate::node::{FieldStore, NodeBuilder, RunningNode};
use crate::options::RunLimits;
use crate::pool::{Qos, QosState, WorkerPool};
use crate::program::Program;

/// Completed-frame latencies kept for the percentile gauges (ring buffer).
const LATENCY_WINDOW: usize = 2048;

/// Staging area between a pipeline's terminal kernel and the session
/// output queue: the kernel body pushes each frame's encoded bytes here;
/// the age watch moves them to the session when the frame's age completes.
#[derive(Default)]
pub struct SessionSink {
    staged: Mutex<HashMap<u64, Vec<u8>>>,
}

impl SessionSink {
    /// Empty sink (wrap in an `Arc` and capture it in the terminal
    /// kernel's body).
    pub fn new() -> Arc<SessionSink> {
        Arc::new(SessionSink::default())
    }

    /// Stage `bytes` as the output of frame `age`.
    pub fn push(&self, age: u64, bytes: Vec<u8>) {
        self.staged.lock().insert(age, bytes);
    }

    /// Remove and return frame `age`'s staged bytes.
    pub fn take(&self, age: u64) -> Option<Vec<u8>> {
        self.staged.lock().remove(&age)
    }

    /// Number of staged frames not yet claimed.
    pub fn len(&self) -> usize {
        self.staged.lock().len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Configuration of one session.
#[derive(Clone)]
pub struct SessionConfig {
    /// Name of the terminal kernel whose age completion means "frame
    /// done" (the MJPEG `vlc/write`).
    pub output_kernel: String,
    /// Admission cap: maximum frames submitted but not yet completed.
    pub max_in_flight: usize,
    /// Age GC window passed to [`RunLimits::streaming`].
    pub gc_window: u64,
    /// Where the terminal kernel stages its output, if it produces bytes.
    pub sink: Option<Arc<SessionSink>>,
    /// Enable structured run tracing for this session's node.
    pub trace: bool,
    /// Dependency-analyzer shards for this session's node (default 1, the
    /// single sequential analyzer). See [`RunLimits::with_shards`].
    pub shards: usize,
    /// Execute multi-instance dispatch units as one batched work unit.
    /// See [`RunLimits::with_batch_exec`].
    pub batch_exec: bool,
    /// Online chunk-size adaptation for this session's node. See
    /// [`RunLimits::with_adaptive`].
    pub adaptive: Option<crate::options::AdaptiveGranularity>,
    /// Per-session QoS on the shared pool: priority class + fair-share
    /// weight. `None` keeps the neutral default rank (pure age ordering).
    pub qos: Option<Qos>,
}

impl SessionConfig {
    /// Config with defaults: 8 in-flight frames, GC window 16, no sink,
    /// no tracing.
    pub fn new(output_kernel: &str) -> SessionConfig {
        SessionConfig {
            output_kernel: output_kernel.to_string(),
            max_in_flight: 8,
            gc_window: 16,
            sink: None,
            trace: false,
            shards: 1,
            batch_exec: false,
            adaptive: None,
            qos: None,
        }
    }

    /// Set the admission cap (at least 1).
    pub fn max_in_flight(mut self, n: usize) -> SessionConfig {
        self.max_in_flight = n.max(1);
        self
    }

    /// Set the age GC window.
    pub fn gc_window(mut self, w: u64) -> SessionConfig {
        self.gc_window = w;
        self
    }

    /// Attach the output sink the terminal kernel pushes into.
    pub fn sink(mut self, sink: Arc<SessionSink>) -> SessionConfig {
        self.sink = Some(sink);
        self
    }

    /// Enable structured tracing ([`crate::trace_check`] over a session
    /// trace).
    pub fn with_trace(mut self) -> SessionConfig {
        self.trace = true;
        self
    }

    /// Shard the session's dependency analyzer across `n` threads
    /// (at least 1).
    pub fn shards(mut self, n: usize) -> SessionConfig {
        self.shards = n.max(1);
        self
    }

    /// Execute multi-instance dispatch units as one batched work unit.
    pub fn with_batch_exec(mut self) -> SessionConfig {
        self.batch_exec = true;
        self
    }

    /// Adapt kernel chunk sizes online while the session runs.
    pub fn with_adaptive(mut self, cfg: crate::options::AdaptiveGranularity) -> SessionConfig {
        self.adaptive = Some(cfg);
        self
    }

    /// Rank this session's pool work with a QoS class and weight.
    pub fn with_qos(mut self, qos: Qos) -> SessionConfig {
        self.qos = Some(qos);
        self
    }
}

/// Receipt for one submitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// The age (frame number) the frame was injected at.
    pub age: u64,
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The in-flight window is full ([`Session::try_submit`] only; the
    /// blocking [`Session::submit`] waits instead).
    WouldBlock,
    /// The session was closed or its node stopped (failure or external
    /// stop) — no more frames can be accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::WouldBlock => write!(f, "session in-flight window is full"),
            SubmitError::Closed => write!(f, "session is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One completed frame, in age order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutput {
    /// The frame's age (matches the submit [`Ticket`]).
    pub age: u64,
    /// The terminal kernel's staged bytes; `None` when the frame was
    /// dropped (poisoned after exhausting its retry budget) or when the
    /// pipeline stages no bytes.
    pub payload: Option<Vec<u8>>,
}

impl SessionOutput {
    /// True when the frame was dropped rather than produced.
    pub fn dropped(&self) -> bool {
        self.payload.is_none()
    }
}

/// Final accounting of one session.
pub struct SessionReport {
    /// The node's run report (instruments, termination, optional trace).
    pub report: RunReport,
    /// Final field contents (usually empty in streaming mode — GC retired
    /// the processed ages).
    pub fields: FieldStore,
    /// Frames accepted by `submit`.
    pub frames_submitted: u64,
    /// Frames whose age completed (including dropped ones).
    pub frames_completed: u64,
    /// Frames that completed poisoned (no payload).
    pub frames_dropped: u64,
}

struct SessionState {
    next_age: u64,
    in_flight: usize,
    completed: u64,
    dropped: u64,
    ready: VecDeque<SessionOutput>,
    closed: bool,
    /// Submit timestamps of in-flight frames, keyed by age (removed on
    /// completion — bounded by the in-flight window).
    submit_times: HashMap<u64, Instant>,
    /// Submit→completion latencies (nanoseconds) of the most recent
    /// [`LATENCY_WINDOW`] completed frames.
    latencies: VecDeque<u64>,
    /// When the first frame was submitted (fps gauge baseline).
    first_submit: Option<Instant>,
}

/// A live per-tenant gauge snapshot ([`Session::metrics`]): the numbers a
/// serving node exports per session over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionMetrics {
    /// Frames accepted by submit so far.
    pub frames_submitted: u64,
    /// Frames whose age completed (including dropped ones).
    pub frames_completed: u64,
    /// Frames that completed poisoned (no payload).
    pub frames_dropped: u64,
    /// Frames submitted but not yet completed.
    pub in_flight: u64,
    /// Completed frames per second since the first submit, in millihertz
    /// (frames per 1000 s) so the gauge stays integral on the wire.
    pub fps_milli: u64,
    /// Median submit→completion latency over the recent window, in
    /// nanoseconds (0 until a frame completes).
    pub p50_latency_ns: u64,
    /// 95th-percentile submit→completion latency, in nanoseconds.
    pub p95_latency_ns: u64,
    /// Live `(field, age)` slabs resident in the session's node.
    pub resident_ages: u64,
    /// Resident field bytes in the session's node.
    pub resident_bytes: u64,
    /// Dispatch units this session has sent to the shared pool (0 without
    /// QoS — the neutral rank path does not count).
    pub dispatched_units: u64,
}

struct SessionShared {
    state: Mutex<SessionState>,
    /// Signalled when the in-flight window shrinks (admission).
    submit_cv: Condvar,
    /// Signalled when an output becomes ready (and on completion, for the
    /// drain loop).
    output_cv: Condvar,
}

/// One tenant pipeline of a [`SessionRuntime`]: an unbounded stream of
/// frames through a resident program. Created by [`SessionRuntime::open`].
pub struct Session {
    node: RunningNode,
    shared: Arc<SessionShared>,
    fields_by_name: HashMap<String, FieldId>,
    max_in_flight: usize,
    qos_state: Option<Arc<QosState>>,
}

impl Session {
    /// Resolve a field name to the id expected by [`Session::submit`]
    /// parts.
    pub fn field_id(&self, name: &str) -> Option<FieldId> {
        self.fields_by_name.get(name).copied()
    }

    /// Submit one frame, blocking while the in-flight window is full.
    /// The parts are stored into the session's fields at the frame's age.
    /// Errors with [`SubmitError::Closed`] once the session is closed or
    /// its node stopped.
    pub fn submit(&self, parts: Vec<(FieldId, Region, Buffer)>) -> Result<Ticket, SubmitError> {
        let age = {
            let mut g = self.shared.state.lock();
            loop {
                if g.closed || self.node.is_stopped() {
                    return Err(SubmitError::Closed);
                }
                if g.in_flight < self.max_in_flight {
                    break;
                }
                // Timed wait: a failed node never signals, so re-check the
                // stop flag periodically instead of blocking forever.
                self.shared
                    .submit_cv
                    .wait_for(&mut g, Duration::from_millis(10));
            }
            let age = g.next_age;
            g.next_age += 1;
            g.in_flight += 1;
            let now = Instant::now();
            g.first_submit.get_or_insert(now);
            g.submit_times.insert(age, now);
            age
        };
        for (field, region, buffer) in parts {
            self.node
                .inject_remote_store(field, Age(age), region, buffer);
        }
        Ok(Ticket { age })
    }

    /// Non-blocking submit: [`SubmitError::WouldBlock`] when the window is
    /// full.
    pub fn try_submit(
        &self,
        parts: Vec<(FieldId, Region, Buffer)>,
    ) -> Result<Ticket, SubmitError> {
        let age = {
            let mut g = self.shared.state.lock();
            if g.closed || self.node.is_stopped() {
                return Err(SubmitError::Closed);
            }
            if g.in_flight >= self.max_in_flight {
                return Err(SubmitError::WouldBlock);
            }
            let age = g.next_age;
            g.next_age += 1;
            g.in_flight += 1;
            let now = Instant::now();
            g.first_submit.get_or_insert(now);
            g.submit_times.insert(age, now);
            age
        };
        for (field, region, buffer) in parts {
            self.node
                .inject_remote_store(field, Age(age), region, buffer);
        }
        Ok(Ticket { age })
    }

    /// Next completed frame, if one is ready (frames complete in age
    /// order).
    pub fn poll_output(&self) -> Option<SessionOutput> {
        self.shared.state.lock().ready.pop_front()
    }

    /// Blocking receive with a timeout. `None` when the timeout elapses
    /// with nothing ready, or when the session can produce no more output
    /// (closed and drained, or its node stopped).
    pub fn recv(&self, timeout: Duration) -> Option<SessionOutput> {
        let deadline = Instant::now() + timeout;
        let mut g = self.shared.state.lock();
        loop {
            if let Some(out) = g.ready.pop_front() {
                return Some(out);
            }
            if (g.closed && g.in_flight == 0) || self.node.is_stopped() {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let step = (deadline - now).min(Duration::from_millis(10));
            self.shared.output_cv.wait_for(&mut g, step);
        }
    }

    /// Frames submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.shared.state.lock().in_flight
    }

    /// Live `(field, age)` slabs resident in this session's node — the
    /// flat-memory gauge (bounded by the GC window while streaming).
    pub fn resident_ages(&self) -> usize {
        self.node.resident_ages()
    }

    /// Resident field bytes in this session's node.
    pub fn bytes_resident(&self) -> usize {
        self.node.bytes_resident()
    }

    /// True once the session's node recorded a fatal failure.
    pub fn has_failed(&self) -> bool {
        self.node.has_failed()
    }

    /// Snapshot the per-tenant gauges: throughput, latency percentiles,
    /// drops and residency — what a serving node exports per session.
    pub fn metrics(&self) -> SessionMetrics {
        let (submitted, completed, dropped, in_flight, fps_milli, p50, p95) = {
            let g = self.shared.state.lock();
            let fps_milli = match g.first_submit {
                Some(t0) if g.completed > 0 => {
                    let secs = t0.elapsed().as_secs_f64().max(1e-9);
                    (g.completed as f64 * 1000.0 / secs) as u64
                }
                _ => 0,
            };
            let (p50, p95) = if g.latencies.is_empty() {
                (0, 0)
            } else {
                let mut sorted: Vec<u64> = g.latencies.iter().copied().collect();
                sorted.sort_unstable();
                let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
                (at(0.50), at(0.95))
            };
            (
                g.next_age,
                g.completed,
                g.dropped,
                g.in_flight as u64,
                fps_milli,
                p50,
                p95,
            )
        };
        SessionMetrics {
            frames_submitted: submitted,
            frames_completed: completed,
            frames_dropped: dropped,
            in_flight,
            fps_milli,
            p50_latency_ns: p50,
            p95_latency_ns: p95,
            resident_ages: self.node.resident_ages() as u64,
            resident_bytes: self.node.bytes_resident() as u64,
            dispatched_units: self
                .qos_state
                .as_ref()
                .map(|q| q.units_dispatched())
                .unwrap_or(0),
        }
    }

    /// Refuse further submissions; in-flight frames keep completing.
    pub fn close(&self) {
        self.shared.state.lock().closed = true;
        self.shared.submit_cv.notify_all();
    }

    /// Close, drain in-flight frames (bounded by `drain_timeout`), stop
    /// the node and collect the final accounting. Completed outputs not
    /// yet claimed are still in the report's counts; claim them with
    /// [`Session::poll_output`] before finishing if the bytes matter.
    pub fn finish(self, drain_timeout: Duration) -> Result<SessionReport, RuntimeError> {
        self.close();
        let deadline = Instant::now() + drain_timeout;
        {
            let mut g = self.shared.state.lock();
            while g.in_flight > 0 && !self.node.is_stopped() && Instant::now() < deadline {
                self.shared
                    .output_cv
                    .wait_for(&mut g, Duration::from_millis(10));
            }
        }
        self.node.request_stop();
        let (report, fields, err) = self.node.finish();
        if let Some(e) = err {
            return Err(e);
        }
        let g = self.shared.state.lock();
        Ok(SessionReport {
            report,
            fields,
            frames_submitted: g.next_age,
            frames_completed: g.completed,
            frames_dropped: g.dropped,
        })
    }
}

/// The resident multi-tenant runtime: a shared worker pool hosting many
/// concurrent [`Session`]s (and pool-attached batch nodes).
pub struct SessionRuntime {
    pool: Arc<WorkerPool>,
}

impl SessionRuntime {
    /// A runtime with `workers` pool threads shared by every session.
    pub fn new(workers: usize) -> SessionRuntime {
        SessionRuntime {
            pool: WorkerPool::new(workers),
        }
    }

    /// Number of shared worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Ready units currently queued across all tenants.
    pub fn backlog(&self) -> usize {
        self.pool.backlog()
    }

    /// Open a session: launch `program` as a resident pool-attached node
    /// with an age watch on the configured output kernel.
    pub fn open(&self, program: Program, config: SessionConfig) -> Result<Session, RuntimeError> {
        let fields_by_name: HashMap<String, FieldId> = program
            .spec
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FieldId(i as u32)))
            .collect();
        let shared = Arc::new(SessionShared {
            state: Mutex::new(SessionState {
                next_age: 0,
                in_flight: 0,
                completed: 0,
                dropped: 0,
                ready: VecDeque::new(),
                closed: false,
                submit_times: HashMap::new(),
                latencies: VecDeque::new(),
                first_submit: None,
            }),
            submit_cv: Condvar::new(),
            output_cv: Condvar::new(),
        });
        let watch_shared = shared.clone();
        let sink = config.sink.clone();
        let watch = Arc::new(move |age: u64, poisoned: bool| {
            // Analyzer thread. The terminal kernel is ordered and its sink
            // push happens-before its UnitDone, so the staged bytes (when
            // the frame wasn't dropped) are present here.
            let payload = if poisoned {
                // Discard any partial staging of a dropped frame.
                if let Some(s) = &sink {
                    s.take(age);
                }
                None
            } else {
                sink.as_ref().and_then(|s| s.take(age))
            };
            let mut g = watch_shared.state.lock();
            g.in_flight = g.in_flight.saturating_sub(1);
            g.completed += 1;
            if poisoned {
                g.dropped += 1;
            }
            if let Some(t0) = g.submit_times.remove(&age) {
                if g.latencies.len() >= LATENCY_WINDOW {
                    g.latencies.pop_front();
                }
                let lat = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                g.latencies.push_back(lat);
            }
            g.ready.push_back(SessionOutput { age, payload });
            drop(g);
            watch_shared.submit_cv.notify_all();
            watch_shared.output_cv.notify_all();
        });
        let mut limits = RunLimits::streaming(config.gc_window).with_shards(config.shards);
        if config.trace {
            limits = limits.with_trace();
        }
        if config.batch_exec {
            limits = limits.with_batch_exec();
        }
        if let Some(cfg) = config.adaptive.clone() {
            limits = limits.with_adaptive(cfg);
        }
        let qos_state = config.qos.map(QosState::new);
        let mut builder = NodeBuilder::new(program)
            .pool(self.pool.clone())
            .watch_ages(&config.output_kernel, watch);
        if let Some(q) = &qos_state {
            builder = builder.qos_state(q.clone());
        }
        let node = builder.launch(limits)?;
        Ok(Session {
            node,
            shared,
            fields_by_name,
            max_in_flight: config.max_in_flight,
            qos_state,
        })
    }

    /// Launch a *batch* program on the shared pool (source-driven, normal
    /// run limits): the `p2gc serve` path, where N copies of a compiled
    /// program share the pool as independent tenants.
    pub fn launch_batch(
        &self,
        program: Program,
        limits: RunLimits,
    ) -> Result<RunningNode, RuntimeError> {
        NodeBuilder::new(program).pool(self.pool.clone()).launch(limits)
    }

    /// Close the pool queue and join the workers (sessions should be
    /// finished first; their queued units drain before the join).
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }
}

//! The shared ready queue between the dependency analyzer and the workers.
//!
//! Dispatch units are ordered by (age, kernel, arrival): lower ages first,
//! as in the paper's prototype — this guarantees that kernels satisfying
//! their own dependencies through aging cycles (mul2/plus5) never starve
//! fetch-less kernels or each other.
//!
//! The queue is generic over its payload so the session runtime's shared
//! worker pool ([`crate::pool::WorkerPool`]) can reuse the same age-priority
//! discipline across *tenants*: pool entries carry (session, unit) pairs and
//! rank by the unit's age, which keeps a saturated session's high-age
//! backlog behind every other session's low-age work — the fairness
//! property the two-tenant tests pin down.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use parking_lot::{Condvar, Mutex};

use crate::instance::DispatchUnit;

/// The default (and middle) QoS priority class; entries that do not
/// override [`Ranked::rank_class`] rank here.
pub const QOS_CLASS_NORMAL: u8 = 1;

/// Payloads the queue knows how to rank. The full rank is
/// `(class, vtime, age, kernel, seq)`, lowest first: `class` is a strict
/// priority level, `vtime` a start-time-fair-queueing virtual time within
/// the class (weighted fair shares across tenants), then the original
/// (age, kernel, arrival) discipline. The class/vtime defaults keep every
/// pre-QoS payload at `(QOS_CLASS_NORMAL, 0)` — i.e. pure age ranking,
/// exactly the old behavior.
pub trait Ranked {
    /// The age this entry runs at (ascending).
    fn rank_age(&self) -> u64;
    /// The kernel id (ascending).
    fn rank_kernel(&self) -> u32;
    /// Strict priority class: entries of a lower class always pop before
    /// any entry of a higher class.
    fn rank_class(&self) -> u8 {
        QOS_CLASS_NORMAL
    }
    /// Fair-queueing virtual start time within the class; 0 (the default)
    /// ranks at the front of the class.
    fn rank_vtime(&self) -> u64 {
        0
    }
}

impl Ranked for DispatchUnit {
    fn rank_age(&self) -> u64 {
        self.age.0
    }
    fn rank_kernel(&self) -> u32 {
        self.kernel.0
    }
}

/// Min-heap entry: compares only the (class, vtime, age, kernel, seq)
/// rank, never the payload.
struct Entry<T> {
    class: u8,
    vtime: u64,
    age: u64,
    kernel: u32,
    seq: u64,
    payload: T,
}

impl<T> Entry<T> {
    fn rank(&self) -> (u8, u64, u64, u32, u64) {
        (self.class, self.vtime, self.age, self.kernel, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the lowest rank first.
        other.rank().cmp(&self.rank())
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    closed: bool,
}

/// Age-priority blocking queue.
pub struct ReadyQueue<T: Ranked = DispatchUnit> {
    inner: Mutex<Inner<T>>,
    cond: Condvar,
}

impl<T: Ranked> Default for ReadyQueue<T> {
    fn default() -> ReadyQueue<T> {
        ReadyQueue::new()
    }
}

impl<T: Ranked> ReadyQueue<T> {
    /// Empty queue.
    pub fn new() -> ReadyQueue<T> {
        ReadyQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                seq: 0,
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Push an entry; wakes one waiting worker.
    pub fn push(&self, payload: T) {
        let mut g = self.inner.lock();
        let entry = Entry {
            class: payload.rank_class(),
            vtime: payload.rank_vtime(),
            age: payload.rank_age(),
            kernel: payload.rank_kernel(),
            seq: g.seq,
            payload,
        };
        g.seq += 1;
        g.heap.push(entry);
        drop(g);
        self.cond.notify_one();
    }

    /// Pop the lowest-age entry, blocking until one is available or the
    /// queue is closed. `None` means shutdown (remaining entries still
    /// drain first).
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock();
        loop {
            if let Some(entry) = g.heap.pop() {
                return Some(entry.payload);
            }
            if g.closed {
                return None;
            }
            self.cond.wait(&mut g);
        }
    }

    /// Non-blocking pop (used by single-threaded drivers and tests).
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().heap.pop().map(|e| e.payload)
    }

    /// Close the queue; blocked and future pops return `None` once drained.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cond.notify_all();
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// DispatchUnit equality for tests and assertions; ordering lives in the
// queue's Entry, not here.
impl PartialEq for DispatchUnit {
    fn eq(&self, other: &Self) -> bool {
        self.kernel == other.kernel && self.age == other.age && self.instances == other.instances
    }
}
impl Eq for DispatchUnit {}

#[cfg(test)]
mod tests {
    use super::*;
    use p2g_field::Age;
    use p2g_graph::KernelId;

    fn unit(kernel: u32, age: u64) -> DispatchUnit {
        DispatchUnit::new(KernelId(kernel), Age(age), vec![vec![]])
    }

    #[test]
    fn pops_lowest_age_first() {
        let q = ReadyQueue::new();
        q.push(unit(0, 3));
        q.push(unit(1, 1));
        q.push(unit(2, 2));
        assert_eq!(q.try_pop().unwrap().age, Age(1));
        assert_eq!(q.try_pop().unwrap().age, Age(2));
        assert_eq!(q.try_pop().unwrap().age, Age(3));
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn fifo_within_same_age_and_kernel() {
        let q = ReadyQueue::new();
        let mut a = unit(0, 0);
        a.instances = vec![vec![1]];
        let mut b = unit(0, 0);
        b.instances = vec![vec![2]];
        q.push(a);
        q.push(b);
        assert_eq!(q.try_pop().unwrap().instances, vec![vec![1]]);
        assert_eq!(q.try_pop().unwrap().instances, vec![vec![2]]);
    }

    #[test]
    fn close_unblocks_poppers() {
        let q = std::sync::Arc::new(ReadyQueue::<DispatchUnit>::new());
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn pop_after_close_drains_remaining() {
        let q = ReadyQueue::new();
        q.push(unit(0, 0));
        q.close();
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracking() {
        let q = ReadyQueue::new();
        assert!(q.is_empty());
        q.push(unit(0, 0));
        assert_eq!(q.len(), 1);
    }

    /// Cross-payload ranking: generic entries interleave by age exactly
    /// like dispatch units — the property the multi-tenant pool relies on.
    struct Tagged(u64, &'static str);
    impl Ranked for Tagged {
        fn rank_age(&self) -> u64 {
            self.0
        }
        fn rank_kernel(&self) -> u32 {
            0
        }
    }

    #[test]
    fn generic_payloads_rank_by_age() {
        let q: ReadyQueue<Tagged> = ReadyQueue::new();
        q.push(Tagged(9, "laggard"));
        q.push(Tagged(2, "fresh"));
        q.push(Tagged(5, "middle"));
        assert_eq!(q.try_pop().unwrap().1, "fresh");
        assert_eq!(q.try_pop().unwrap().1, "middle");
        assert_eq!(q.try_pop().unwrap().1, "laggard");
    }

    /// QoS-aware payload: class and vtime come before age.
    struct Classed {
        class: u8,
        vtime: u64,
        age: u64,
        tag: &'static str,
    }
    impl Ranked for Classed {
        fn rank_age(&self) -> u64 {
            self.age
        }
        fn rank_kernel(&self) -> u32 {
            0
        }
        fn rank_class(&self) -> u8 {
            self.class
        }
        fn rank_vtime(&self) -> u64 {
            self.vtime
        }
    }

    #[test]
    fn lower_class_always_pops_first() {
        let q: ReadyQueue<Classed> = ReadyQueue::new();
        q.push(Classed { class: 2, vtime: 0, age: 0, tag: "bulk" });
        q.push(Classed { class: 0, vtime: 99, age: 50, tag: "rt" });
        q.push(Classed { class: 1, vtime: 1, age: 1, tag: "normal" });
        assert_eq!(q.try_pop().unwrap().tag, "rt");
        assert_eq!(q.try_pop().unwrap().tag, "normal");
        assert_eq!(q.try_pop().unwrap().tag, "bulk");
    }

    #[test]
    fn vtime_orders_within_class_before_age() {
        let q: ReadyQueue<Classed> = ReadyQueue::new();
        q.push(Classed { class: 1, vtime: 20, age: 0, tag: "heavy" });
        q.push(Classed { class: 1, vtime: 10, age: 9, tag: "light" });
        assert_eq!(q.try_pop().unwrap().tag, "light");
        assert_eq!(q.try_pop().unwrap().tag, "heavy");
    }
}

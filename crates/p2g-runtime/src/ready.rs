//! The shared ready queue between the dependency analyzer and the workers.
//!
//! Dispatch units are ordered by (age, kernel, arrival): lower ages first,
//! as in the paper's prototype — this guarantees that kernels satisfying
//! their own dependencies through aging cycles (mul2/plus5) never starve
//! fetch-less kernels or each other.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parking_lot::{Condvar, Mutex};

use crate::instance::DispatchUnit;

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Rank {
    age: u64,
    kernel: u32,
    seq: u64,
}

struct Inner {
    heap: BinaryHeap<(Reverse<Rank>, DispatchUnit)>,
    seq: u64,
    closed: bool,
}

/// Age-priority blocking queue of dispatch units.
pub struct ReadyQueue {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Default for ReadyQueue {
    fn default() -> ReadyQueue {
        ReadyQueue::new()
    }
}

impl ReadyQueue {
    /// Empty queue.
    pub fn new() -> ReadyQueue {
        ReadyQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                seq: 0,
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Push a unit; wakes one waiting worker.
    pub fn push(&self, unit: DispatchUnit) {
        let mut g = self.inner.lock();
        let rank = Rank {
            age: unit.age.0,
            kernel: unit.kernel.0,
            seq: g.seq,
        };
        g.seq += 1;
        g.heap.push((Reverse(rank), unit));
        drop(g);
        self.cond.notify_one();
    }

    /// Pop the lowest-age unit, blocking until one is available or the
    /// queue is closed. `None` means shutdown.
    pub fn pop(&self) -> Option<DispatchUnit> {
        let mut g = self.inner.lock();
        loop {
            if let Some((_, unit)) = g.heap.pop() {
                return Some(unit);
            }
            if g.closed {
                return None;
            }
            self.cond.wait(&mut g);
        }
    }

    /// Non-blocking pop (used by single-threaded drivers and tests).
    pub fn try_pop(&self) -> Option<DispatchUnit> {
        self.inner.lock().heap.pop().map(|(_, u)| u)
    }

    /// Close the queue; blocked and future pops return `None`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cond.notify_all();
    }

    /// Number of queued units.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// True when no units are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// DispatchUnit doesn't implement Ord; the heap compares only the Rank.
// These impls make the tuple orderable while ignoring the payload.
impl PartialEq for DispatchUnit {
    fn eq(&self, other: &Self) -> bool {
        self.kernel == other.kernel && self.age == other.age && self.instances == other.instances
    }
}
impl Eq for DispatchUnit {}
impl PartialOrd for DispatchUnit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DispatchUnit {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2g_field::Age;
    use p2g_graph::KernelId;

    fn unit(kernel: u32, age: u64) -> DispatchUnit {
        DispatchUnit::new(KernelId(kernel), Age(age), vec![vec![]])
    }

    #[test]
    fn pops_lowest_age_first() {
        let q = ReadyQueue::new();
        q.push(unit(0, 3));
        q.push(unit(1, 1));
        q.push(unit(2, 2));
        assert_eq!(q.try_pop().unwrap().age, Age(1));
        assert_eq!(q.try_pop().unwrap().age, Age(2));
        assert_eq!(q.try_pop().unwrap().age, Age(3));
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn fifo_within_same_age_and_kernel() {
        let q = ReadyQueue::new();
        let mut a = unit(0, 0);
        a.instances = vec![vec![1]];
        let mut b = unit(0, 0);
        b.instances = vec![vec![2]];
        q.push(a);
        q.push(b);
        assert_eq!(q.try_pop().unwrap().instances, vec![vec![1]]);
        assert_eq!(q.try_pop().unwrap().instances, vec![vec![2]]);
    }

    #[test]
    fn close_unblocks_poppers() {
        let q = std::sync::Arc::new(ReadyQueue::new());
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn pop_after_close_drains_remaining() {
        let q = ReadyQueue::new();
        q.push(unit(0, 0));
        q.close();
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracking() {
        let q = ReadyQueue::new();
        assert!(q.is_empty());
        q.push(unit(0, 0));
        assert_eq!(q.len(), 1);
    }
}

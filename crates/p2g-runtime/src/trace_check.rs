//! Reusable invariant assertions over a [`RunTrace`] — the trace-level
//! counterpart of the paper's execution-model guarantees.
//!
//! Each check panics with a descriptive message on violation, so a test
//! can validate a whole run in one line:
//!
//! ```ignore
//! let report = NodeBuilder::new(program)
//!     .launch(RunLimits::ages(3).with_trace())?
//!     .wait()?;
//! p2g_runtime::trace_check::all(&report);
//! ```
//!
//! The invariants:
//!
//! 1. **Dependencies before dispatch** — every analyzer dispatch of an
//!    instance is preceded in the trace by stores covering its resolvable
//!    fetch coordinates; whole-field (`All`) fetches require the fetched
//!    age to have been completed by a prior store.
//! 2. **Write-once** — no (field, age, element) is freshly written twice
//!    by kernel stores, net of distributed-mode deduplication (deduped
//!    and remote-injected stores are exempt by construction).
//! 3. **Retries within budget** — no retry is scheduled past its kernel's
//!    configured budget, and the scheduled-retry total matches the
//!    instruments counter.
//! 4. **Poison consistency** — the traced poisoned set equals the
//!    instruments' poisoned set, and a degraded run shows at least one
//!    failing body execution in the trace.
//! 5. **No store after retirement** — once age GC retires a field below
//!    some age (`AgeRetired`), no later store targets that field at a
//!    retired age: GC only collects ages every consumer is finished with,
//!    so a late store would mean the safe-age clamp under-approximated.
//! 6. **Granularity decisions sane** — adaptive chunk-size changes form a
//!    per-kernel chain (each decision's `from` is the previous decision's
//!    `to`), move by exactly a factor of two, and never reach zero.

use std::collections::{BTreeSet, HashMap, HashSet};

use p2g_field::Age;

use crate::instrument::RunReport;
use crate::trace::{region_coords, RunTrace, TraceEvent};

/// Run every invariant against a finished run's report. Panics if the
/// report carries no trace (enable with [`crate::RunLimits::with_trace`]
/// or the `trace` cargo feature) or if the trace dropped events.
pub fn all(report: &RunReport) {
    let trace = report.trace.as_ref().expect(
        "trace_check::all requires tracing: launch with RunLimits::with_trace() \
         or build with --features trace",
    );
    assert_eq!(
        trace.dropped, 0,
        "trace ring buffers overflowed ({} events dropped); raise \
         TraceOptions::capacity for invariant checking",
        trace.dropped
    );
    dependencies_respected(trace);
    write_once(trace);
    retries_within_budget(trace);
    let retried: usize = trace
        .of_kind("RetryScheduled")
        .map(|r| match &r.event {
            TraceEvent::RetryScheduled { instances, .. } => *instances,
            _ => 0,
        })
        .sum();
    assert_eq!(
        retried as u64,
        report.instruments.total_retries(),
        "traced retry instances must match the instruments retry counter"
    );
    poisoned_consistent(trace, report);
    no_store_after_retire(trace);
    granularity_sane(trace);
}

/// Invariant 6: the adaptive-granularity controller's decisions are sane.
/// Per kernel, decisions chain (`from` equals the previous decision's
/// `to`), every decision actually changes the chunk size, moves by exactly
/// a factor of two (`to ∈ {from/2, from*2}`, halving rounds down), and the
/// target never drops to zero.
pub fn granularity_sane(trace: &RunTrace) {
    let mut last_to: HashMap<u32, usize> = HashMap::new();
    for r in trace.of_kind("GranularityChange") {
        let TraceEvent::GranularityChange {
            kernel, from, to, ..
        } = &r.event
        else {
            continue;
        };
        let name = &trace.spec().kernel(*kernel).name;
        if let Some(prev) = last_to.get(&kernel.0) {
            assert_eq!(
                from, prev,
                "granularity chain broken for kernel {name}: change starts at {from} \
                 but the previous decision ended at {prev}"
            );
        }
        assert!(
            *to >= 1,
            "granularity of kernel {name} adapted to zero (from {from})"
        );
        assert_ne!(
            to, from,
            "granularity no-op decision traced for kernel {name} at {from}"
        );
        assert!(
            *to == from / 2 || *to == from * 2,
            "granularity of kernel {name} moved {from} -> {to}, which is not \
             a factor-of-two step"
        );
        last_to.insert(kernel.0, *to);
    }
}

/// Invariant 5: no store lands at a `(field, age)` the GC already retired.
/// (A store tying the same timestamp as the retirement is ordered before
/// it by the capture sort, which is the causally-correct reading.)
pub fn no_store_after_retire(trace: &RunTrace) {
    let mut retired: HashMap<u32, u64> = HashMap::new();
    for r in &trace.records {
        match &r.event {
            TraceEvent::AgeRetired { field, below, .. } => {
                let e = retired.entry(field.0).or_insert(0);
                *e = (*e).max(*below);
            }
            TraceEvent::StoreApplied { field, age, .. } => {
                if let Some(&below) = retired.get(&field.0) {
                    assert!(
                        *age >= below,
                        "store to field {} age {} after GC retired that field below {}",
                        field.0,
                        age,
                        below
                    );
                }
            }
            _ => {}
        }
    }
}

/// State of one (field, age) as seen so far while scanning the trace.
#[derive(Default)]
struct WrittenAge {
    coords: HashSet<Vec<usize>>,
    complete: bool,
}

/// Check one dispatch's fetch set against the stores seen so far.
fn check_dispatch(
    written: &HashMap<(u32, u64), WrittenAge>,
    trace: &RunTrace,
    kernel: p2g_graph::KernelId,
    age: u64,
    indices: &[usize],
) {
    let kspec = trace.spec().kernel(kernel);
    for fe in &kspec.fetches {
        let fa = fe.age.resolve(Age(age));
        let region = crate::program::resolve_region(&fe.dims, indices);
        let w = written.get(&(fe.field.0, fa.0));
        match region_coords(&region) {
            Some(coords) => {
                let w = w.unwrap_or_else(|| {
                    panic!(
                        "dispatch of {}@{}{:?} precedes any store to its \
                         fetched field {} age {}",
                        kspec.name, age, indices, fe.field.0, fa.0
                    )
                });
                for c in coords {
                    assert!(
                        w.coords.contains(&c),
                        "dispatch of {}@{}{:?} precedes the store of its \
                         fetch coordinate {:?} in field {} age {}",
                        kspec.name,
                        age,
                        indices,
                        c,
                        fe.field.0,
                        fa.0
                    );
                }
            }
            None => {
                // Whole-field fetch: the analyzer's gate is age
                // completeness.
                assert!(
                    w.is_some_and(|w| w.complete),
                    "dispatch of {}@{}{:?} fetches all of field {} age {} \
                     before any store completed that age",
                    kspec.name,
                    age,
                    indices,
                    fe.field.0,
                    fa.0
                );
            }
        }
    }
}

/// Invariant 1 (relaxed, the default): every `InstanceDispatched` is
/// preceded — per fetched `(field, age)` timeline — by stores covering its
/// fetch set.
///
/// Fetch regions that resolve to concrete coordinates (index variables and
/// constants) are checked pointwise. A whole-dimension (`All`) fetch is
/// gated by age completeness in the analyzer, so the check requires a
/// prior store with `age_complete` for that (field, age).
///
/// "Preceded" is timestamp-based with tie tolerance: a sharded run traces
/// stores on worker threads and dispatches on N analyzer threads, so two
/// causally-ordered records can carry the same monotonic timestamp and
/// sort either way in the merged trace. All stores in a timestamp tie
/// group are credited before any dispatch in that group is checked. For
/// the strict single-queue ordering (exact record order, no tie
/// tolerance) use [`dependencies_respected_strict`].
pub fn dependencies_respected(trace: &RunTrace) {
    let mut written: HashMap<(u32, u64), WrittenAge> = HashMap::new();
    let records = &trace.records;
    let mut i = 0;
    while i < records.len() {
        let ts = records[i].ts_ns;
        let mut j = i;
        while j < records.len() && records[j].ts_ns == ts {
            j += 1;
        }
        // Credit every store in the tie group first…
        for r in &records[i..j] {
            if let TraceEvent::StoreApplied {
                field,
                age,
                region,
                age_complete,
                ..
            } = &r.event
            {
                let w = written.entry((field.0, *age)).or_default();
                // Remote regions are pre-resolved, so coords always
                // enumerate; stay defensive anyway.
                if let Some(coords) = region_coords(region) {
                    w.coords.extend(coords);
                }
                w.complete |= *age_complete;
            }
        }
        // …then check the group's dispatches.
        for r in &records[i..j] {
            if let TraceEvent::InstanceDispatched {
                kernel,
                age,
                indices,
            } = &r.event
            {
                check_dispatch(&written, trace, *kernel, *age, indices);
            }
        }
        i = j;
    }
}

/// Invariant 1 (strict): like [`dependencies_respected`] but in exact
/// merged-record order with no timestamp tie tolerance — each dispatch
/// sees only the stores at strictly earlier record positions.
///
/// This is the single-analyzer (`shards = 1`) guarantee: one event queue
/// imposes one global order, so every dependency store is traced at an
/// earlier position than the dispatch it enables. Sharded runs satisfy
/// only the relaxed per-`(field, age)` form.
pub fn dependencies_respected_strict(trace: &RunTrace) {
    let mut written: HashMap<(u32, u64), WrittenAge> = HashMap::new();
    for r in &trace.records {
        match &r.event {
            TraceEvent::StoreApplied {
                field,
                age,
                region,
                age_complete,
                ..
            } => {
                let w = written.entry((field.0, *age)).or_default();
                if let Some(coords) = region_coords(region) {
                    w.coords.extend(coords);
                }
                w.complete |= *age_complete;
            }
            TraceEvent::InstanceDispatched {
                kernel,
                age,
                indices,
            } => check_dispatch(&written, trace, *kernel, *age, indices),
            _ => {}
        }
    }
}

/// Invariant 2: write-once per (field, age, element), net of dedup.
///
/// Only fully-fresh kernel stores (`deduped == 0`, `kernel != None`) mark
/// coordinates: a partially-deduped store cannot attribute which elements
/// were fresh, and remote-injected stores are replicas of a store already
/// checked on the producing node. This under-approximates (never
/// false-positives) in distributed mode and is exact on a single node.
pub fn write_once(trace: &RunTrace) {
    let mut fresh: HashMap<(u32, u64), HashSet<Vec<usize>>> = HashMap::new();
    for r in &trace.records {
        if let TraceEvent::StoreApplied {
            kernel: Some(kernel),
            field,
            age,
            region,
            deduped,
            elements,
            ..
        } = &r.event
        {
            if *deduped > 0 || *elements == 0 {
                continue;
            }
            let Some(coords) = region_coords(region) else {
                continue;
            };
            let set = fresh.entry((field.0, *age)).or_default();
            for c in coords {
                assert!(
                    set.insert(c.clone()),
                    "write-once violated in trace: kernel {} freshly stored field {} \
                     age {} element {:?} twice",
                    trace.spec().kernel(*kernel).name,
                    field.0,
                    age,
                    c
                );
            }
        }
    }
}

/// Invariant 3: every scheduled retry stays within its kernel's budget
/// (each `RetryScheduled` event carries the budget it was checked
/// against).
pub fn retries_within_budget(trace: &RunTrace) {
    for r in trace.of_kind("RetryScheduled") {
        if let TraceEvent::RetryScheduled {
            kernel,
            age,
            attempt,
            budget,
            ..
        } = &r.event
        {
            assert!(
                attempt <= budget,
                "retry attempt {} of kernel {} age {} exceeds its budget {}",
                attempt,
                trace.spec().kernel(*kernel).name,
                age,
                budget
            );
        }
    }
}

/// Invariant 4: the traced poisoned set equals the instruments' poisoned
/// set, and poisoning implies recorded body failures.
pub fn poisoned_consistent(trace: &RunTrace, report: &RunReport) {
    let traced: BTreeSet<(String, u64, Vec<usize>)> = trace
        .of_kind("Poisoned")
        .filter_map(|r| match &r.event {
            TraceEvent::Poisoned {
                kernel,
                age,
                indices,
            } => Some((
                trace.spec().kernel(*kernel).name.clone(),
                *age,
                indices.clone(),
            )),
            _ => None,
        })
        .collect();
    let reported: BTreeSet<(String, u64, Vec<usize>)> = report
        .instruments
        .poisoned_instances()
        .iter()
        .flat_map(|((k, a), idxs)| idxs.iter().map(move |i| (k.clone(), *a, i.clone())))
        .collect();
    assert_eq!(
        traced, reported,
        "traced Poisoned events must match the instruments poisoned set"
    );
    if !traced.is_empty() {
        assert!(
            report.instruments.total_failures() > 0,
            "poisoned instances recorded without any counted body failure"
        );
        assert!(
            trace.records.iter().any(|r| matches!(
                r.event,
                TraceEvent::BodyEnd { ok: false, .. }
            )),
            "poisoned instances recorded without any failing BodyEnd in the trace"
        );
    }
}

//! Online data-granularity adaptation — the dynamic counterpart of the
//! paper's Figure-4 chunking decision.
//!
//! The paper's low-level scheduler picks a data granularity per kernel once
//! (our static [`crate::KernelOptions::chunk_size`]); this module closes
//! the loop instead. A [`GranularityController`] lives on the analyzer
//! thread and periodically differentiates each kernel's live instrument
//! counters ([`crate::Instruments::kernel_raw`] and the per-kernel latency
//! histograms): while the per-instance dispatch-overhead fraction stays
//! above a threshold it doubles the kernel's chunk size (multiplicative
//! increase — dispatch cost is being wasted on sub-microsecond bodies),
//! and when the estimated per-unit latency (`p95 instance latency ×
//! chunk`) threatens the configured deadline budget it halves it
//! (backoff). Every decision is recorded as a
//! [`crate::trace::TraceEvent::GranularityChange`] so
//! [`crate::trace_check`] can assert the controller behaved sanely.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use p2g_graph::KernelId;

use crate::instrument::Instruments;
use crate::options::{AdaptiveGranularity, KernelOptions};

/// One controller decision, for tracing and testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GranularityChangeInfo {
    pub kernel: KernelId,
    pub from: usize,
    pub to: usize,
    /// Dispatch-overhead fraction observed over the interval, in ppm
    /// (integer so the info stays `Eq`; divide by 1e6 for the fraction).
    pub overhead_ppm: u64,
    /// p95 per-instance body latency observed over the run so far.
    pub p95_ns: u64,
}

/// Per-interval differentiation state for one kernel.
#[derive(Debug, Clone, Copy, Default)]
struct KernelWindow {
    instances: u64,
    dispatch_ns: u64,
    kernel_ns: u64,
}

#[derive(Debug)]
struct TickState {
    last_tick: Option<Instant>,
    prev: Vec<KernelWindow>,
}

/// The online chunk-size controller. One per run, shared by the analyzer
/// shard threads (only shard 0 ticks it) and read lock-free by whichever
/// thread chunks runnable instances into dispatch units.
#[derive(Debug)]
pub struct GranularityController {
    cfg: AdaptiveGranularity,
    /// Current chunk-size target per kernel (indexed by `KernelId::idx`).
    targets: Vec<AtomicUsize>,
    /// Whether each kernel participates in adaptation; non-adaptive
    /// kernels keep their static chunk size.
    adaptive: Vec<bool>,
    state: parking_lot::Mutex<TickState>,
}

impl GranularityController {
    /// Build a controller for a program's kernels. `adaptive[k]` marks the
    /// kernels whose chunk size the controller may change (data-parallel,
    /// unordered, not fusion-coupled); targets start at each kernel's
    /// static `chunk_size`.
    pub fn new(cfg: AdaptiveGranularity, options: &[KernelOptions], adaptive: Vec<bool>) -> Self {
        assert_eq!(options.len(), adaptive.len());
        let targets = options
            .iter()
            .map(|o| AtomicUsize::new(o.chunk_size.clamp(cfg.min_chunk, cfg.max_chunk)))
            .collect();
        GranularityController {
            cfg,
            targets,
            adaptive,
            state: parking_lot::Mutex::new(TickState {
                last_tick: None,
                prev: vec![KernelWindow::default(); options.len()],
            }),
        }
    }

    /// The chunk size the analyzer should use for `kernel` right now.
    /// Returns 0 for non-adaptive kernels, meaning "use the static
    /// number".
    pub fn chunk_for(&self, kernel: KernelId) -> usize {
        if !self.adaptive[kernel.idx()] {
            return 0;
        }
        self.targets[kernel.idx()].load(Ordering::Relaxed)
    }

    /// Run one controller tick against the live instruments. Interval-
    /// gated internally; cheap to call every analyzer-loop iteration.
    /// Returns the decisions made (empty between intervals).
    pub fn tick(&self, ins: &Instruments) -> Vec<GranularityChangeInfo> {
        let mut st = self.state.lock();
        let now = Instant::now();
        match st.last_tick {
            Some(t) if now.duration_since(t) < self.cfg.interval => return Vec::new(),
            _ => st.last_tick = Some(now),
        }
        let mut changes = Vec::new();
        for k in 0..self.targets.len() {
            let kid = KernelId(k as u32);
            let (instances, _units, dispatch_ns, kernel_ns) = ins.kernel_raw(kid);
            let win = KernelWindow {
                instances,
                dispatch_ns,
                kernel_ns,
            };
            let prev = std::mem::replace(&mut st.prev[k], win);
            if !self.adaptive[k] {
                continue;
            }
            let d_inst = instances.saturating_sub(prev.instances);
            if d_inst < self.cfg.min_samples {
                continue;
            }
            let d_dispatch = dispatch_ns.saturating_sub(prev.dispatch_ns);
            let d_kernel = kernel_ns.saturating_sub(prev.kernel_ns);
            let total = d_dispatch + d_kernel;
            if total == 0 {
                continue;
            }
            let overhead = d_dispatch as f64 / total as f64;
            let p95 = ins.latency_histogram(kid).p95();
            let cur = self.targets[k].load(Ordering::Relaxed);
            let over_budget = self
                .cfg
                .p95_budget
                .is_some_and(|b| p95.saturating_mul(cur as u32) > b);
            // Moves are exact factor-of-two steps (the trace invariant
            // checks this), so a step that would cross a bound holds
            // instead of partially clamping.
            let next = if over_budget && cur / 2 >= self.cfg.min_chunk {
                cur / 2
            } else if !over_budget
                && overhead > self.cfg.overhead_high
                && cur * 2 <= self.cfg.max_chunk
            {
                cur * 2
            } else {
                cur
            };
            if next != cur {
                self.targets[k].store(next, Ordering::Relaxed);
                changes.push(GranularityChangeInfo {
                    kernel: kid,
                    from: cur,
                    to: next,
                    overhead_ppm: (overhead * 1_000_000.0) as u64,
                    p95_ns: p95.as_nanos() as u64,
                });
            }
        }
        changes
    }

    /// Decide which kernels of a program may be adapted: non-source
    /// kernels with at least one index variable (data-parallel instance
    /// spaces), not dispatch-ordered, and not coupled into a fusion plan
    /// (fusion fixes the unit shape).
    pub fn eligibility(
        spec: &p2g_graph::ProgramSpec,
        options: &[KernelOptions],
        fusions: &[crate::program::FusionPlan],
    ) -> Vec<bool> {
        (0..spec.kernels.len())
            .map(|k| {
                let kid = KernelId(k as u32);
                let kspec = &spec.kernels[k];
                !kspec.is_source()
                    && kspec.index_vars >= 1
                    && !options[k].ordered
                    && !fusions
                        .iter()
                        .any(|f| f.producer == kid || f.consumer == kid)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn controller(n: usize, cfg: AdaptiveGranularity) -> GranularityController {
        let options = vec![KernelOptions::default(); n];
        GranularityController::new(cfg, &options, vec![true; n])
    }

    fn fast_cfg() -> AdaptiveGranularity {
        AdaptiveGranularity {
            interval: Duration::ZERO,
            min_samples: 1,
            ..AdaptiveGranularity::default()
        }
    }

    #[test]
    fn grows_on_high_overhead() {
        let c = controller(1, fast_cfg());
        let ins = Instruments::new(vec!["k".into()]);
        // 100 instances, dispatch dominates (80/20).
        ins.record_unit(
            KernelId(0),
            100,
            Duration::from_micros(80),
            Duration::from_micros(20),
        );
        for _ in 0..100 {
            ins.record_latency(KernelId(0), Duration::from_nanos(200));
        }
        let changes = c.tick(&ins);
        assert_eq!(changes.len(), 1);
        assert_eq!((changes[0].from, changes[0].to), (1, 2));
        assert_eq!(c.chunk_for(KernelId(0)), 2);
        assert!(changes[0].overhead_ppm > 400_000);
    }

    #[test]
    fn shrinks_when_p95_budget_threatened() {
        let mut cfg = fast_cfg();
        cfg.p95_budget = Some(Duration::from_micros(10));
        let c = controller(1, cfg);
        c.targets[0].store(64, Ordering::Relaxed);
        let ins = Instruments::new(vec!["k".into()]);
        // Body-heavy interval with slow instances: 64 × ~2µs ≫ 10µs.
        ins.record_unit(
            KernelId(0),
            100,
            Duration::from_micros(1),
            Duration::from_micros(200),
        );
        for _ in 0..100 {
            ins.record_latency(KernelId(0), Duration::from_micros(2));
        }
        let changes = c.tick(&ins);
        assert_eq!(changes.len(), 1);
        assert_eq!((changes[0].from, changes[0].to), (64, 32));
    }

    #[test]
    fn holds_steady_in_the_comfortable_band() {
        let c = controller(1, fast_cfg());
        let ins = Instruments::new(vec!["k".into()]);
        // Low overhead (10/90), fast instances: no reason to move.
        ins.record_unit(
            KernelId(0),
            100,
            Duration::from_micros(10),
            Duration::from_micros(90),
        );
        for _ in 0..100 {
            ins.record_latency(KernelId(0), Duration::from_nanos(900));
        }
        assert!(c.tick(&ins).is_empty());
        assert_eq!(c.chunk_for(KernelId(0)), 1);
    }

    #[test]
    fn min_samples_gates_noise() {
        let mut cfg = fast_cfg();
        cfg.min_samples = 1000;
        let c = controller(1, cfg);
        let ins = Instruments::new(vec!["k".into()]);
        ins.record_unit(
            KernelId(0),
            100,
            Duration::from_micros(80),
            Duration::from_micros(20),
        );
        assert!(c.tick(&ins).is_empty());
    }

    #[test]
    fn interval_gates_ticks() {
        let mut cfg = fast_cfg();
        cfg.interval = Duration::from_secs(3600);
        let c = controller(1, cfg);
        let ins = Instruments::new(vec!["k".into()]);
        ins.record_unit(
            KernelId(0),
            100,
            Duration::from_micros(80),
            Duration::from_micros(20),
        );
        // First tick establishes the baseline window (and may decide);
        // the second is inside the hour-long interval.
        let _ = c.tick(&ins);
        assert!(c.tick(&ins).is_empty());
    }

    #[test]
    fn non_adaptive_kernels_report_zero() {
        let options = vec![KernelOptions::default(); 2];
        let c = GranularityController::new(fast_cfg(), &options, vec![true, false]);
        assert_eq!(c.chunk_for(KernelId(0)), 1);
        assert_eq!(c.chunk_for(KernelId(1)), 0);
    }

    #[test]
    fn growth_saturates_at_max_chunk() {
        let mut cfg = fast_cfg();
        cfg.max_chunk = 4;
        cfg.p95_budget = None;
        let c = controller(1, cfg);
        let ins = Instruments::new(vec!["k".into()]);
        for round in 1..=5u64 {
            ins.record_unit(
                KernelId(0),
                100,
                Duration::from_micros(80),
                Duration::from_micros(20),
            );
            let _ = c.tick(&ins);
            let _ = round;
        }
        assert_eq!(c.chunk_for(KernelId(0)), 4);
    }

    #[test]
    fn eligibility_excludes_ordered_and_fused() {
        use p2g_graph::spec::mul_sum_example;
        let spec = mul_sum_example();
        let mut options = vec![KernelOptions::default(); spec.kernels.len()];
        let print = spec.kernel_by_name("print").unwrap();
        options[print.idx()].ordered = true;
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        let plus5 = spec.kernel_by_name("plus5").unwrap();
        let fusions = vec![crate::program::FusionPlan {
            producer: mul2,
            consumer: plus5,
            producer_store: 0,
            elide_store: false,
        }];
        let e = GranularityController::eligibility(&spec, &options, &fusions);
        assert!(!e[print.idx()], "ordered kernels are not adapted");
        assert!(!e[mul2.idx()] && !e[plus5.idx()], "fused pairs are pinned");
    }
}

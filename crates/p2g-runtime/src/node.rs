//! The execution node: worker pool + dedicated dependency-analyzer thread.
//!
//! Threading model (paper Section VI-B): kernel instances execute on worker
//! threads and publish store events; dependencies are analyzed in one
//! dedicated thread which feeds the age-priority ready queue. Termination
//! uses an outstanding-work counter: every event and dispatch unit is
//! counted before it is made visible, so the count can only reach zero when
//! the program is quiescent.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use p2g_field::{Age, Buffer, Field, FieldId, Region, Value};
use p2g_graph::{KernelId, ProgramSpec};

use crate::analyzer::{AgeWatchFn, DependencyAnalyzer, SharedFields};
use crate::error::RuntimeError;
use crate::events::{Event, StoreEvent};
use crate::granularity::GranularityController;
use crate::instance::DispatchUnit;
use crate::instrument::{Instruments, InstrumentsSnapshot, RunReport, Termination};
use crate::options::{ExhaustPolicy, FaultPolicy, KernelOptions, RunLimits};
use crate::pool::{PoolTask, QosState, WorkerPool};
use crate::program::{BatchCtx, BatchKernelBody, FusionPlan, KernelBody, KernelCtx, Program, StagedStore};
use crate::ready::ReadyQueue;
use crate::shard::{ShardGc, ShardPlan};
use crate::timer::TimerTable;
use crate::trace::{store_event, RunTrace, TraceEvent, Tracer};
use crate::watchdog::Watchdog;

thread_local! {
    /// True while this worker thread is inside a (contained) kernel body.
    static IN_KERNEL: Cell<bool> = const { Cell::new(false) };
    /// This thread's trace-buffer id (workers `0..n`, then analyzer,
    /// watchdog, and the launching thread). Set once at thread start.
    static TRACE_TID: Cell<u32> = const { Cell::new(0) };
}

static PANIC_HOOK: Once = Once::new();

/// Chain a process-wide panic hook that suppresses the default backtrace
/// noise for panics contained by the kernel-body `catch_unwind` — those
/// become structured failures, not crashes. Panics anywhere else keep the
/// previous hook's behaviour.
fn install_contained_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_KERNEL.with(|c| c.get()) {
                prev(info);
            }
        }));
    });
}

/// Human-readable message out of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel body panicked".to_string()
    }
}

/// How one instance execution failed.
enum InstanceError {
    /// Runtime malfunction (field/spec error): aborts the run regardless of
    /// fault policy.
    Fatal(RuntimeError),
    /// The kernel body returned `Err` or panicked: goes through the
    /// kernel's fault policy (retry / poison / abort).
    Body(String),
}

impl From<RuntimeError> for InstanceError {
    fn from(e: RuntimeError) -> InstanceError {
        InstanceError::Fatal(e)
    }
}

impl From<p2g_field::FieldError> for InstanceError {
    fn from(e: p2g_field::FieldError) -> InstanceError {
        InstanceError::Fatal(RuntimeError::Field(e))
    }
}

/// Called after every successful local store (distributed mode forwards
/// the data to subscriber nodes through this hook).
pub type StoreTap = Arc<dyn Fn(FieldId, Age, &Region, &Buffer) + Send + Sync>;

/// Static precomputation for the worker-side inline fast path: a fresh
/// single-point store into the field unblocks exactly one instance of
/// `consumer`, so the storing worker dispatches it directly and tags the
/// store event for the analyzer to reconcile ([`crate::shard`]). Built
/// only for single-fetch pointwise consumers whose fetch dimensions cover
/// every index variable and whose own store targets all have static
/// extents (so no extent expectation can change under a peer shard).
struct InlinePlan {
    consumer: KernelId,
    /// The consumer's `Rel(t)` fetch-age offset: a store at age `a` feeds
    /// instance age `a - t`.
    t: i64,
    /// Number of consumer index variables.
    index_vars: usize,
    /// For each fetch dimension, the consumer index variable it selects.
    var_of_dim: Vec<usize>,
    /// Run age bound: instances at `age >= max_ages` never dispatch.
    max_ages: Option<u64>,
}

/// Derive the per-field inline fast-path plans. A field gets a plan when
/// it has a consumer that is: non-source, un-fused, un-watched, unordered,
/// chunk-size 1, with exactly one fetch at a `Rel` age whose dimensions
/// are distinct `Var` selectors covering all of the consumer's index
/// variables — then one stored element maps to exactly one instance, and
/// a fresh single-point store proves that instance's only dependency.
fn build_inline_plans(
    spec: &ProgramSpec,
    options: &[KernelOptions],
    fused: &HashSet<KernelId>,
    watched: &HashSet<KernelId>,
    limits: &RunLimits,
) -> Vec<Option<InlinePlan>> {
    use p2g_graph::spec::{AgeExpr, IndexSel};
    let mut plans: Vec<Option<InlinePlan>> = (0..spec.fields.len()).map(|_| None).collect();
    for k in &spec.kernels {
        let i = k.id.idx();
        if k.is_source()
            || !k.has_age_var
            || fused.contains(&k.id)
            || watched.contains(&k.id)
            || options[i].ordered
            || options[i].chunk_size > 1
            || k.fetches.len() != 1
        {
            continue;
        }
        let fe = &k.fetches[0];
        let AgeExpr::Rel(t) = fe.age else { continue };
        let mut var_of_dim = Vec::with_capacity(fe.dims.len());
        let mut seen = vec![false; k.index_vars as usize];
        let mut ok = true;
        for sel in &fe.dims {
            match sel {
                IndexSel::Var(v) => {
                    let vi = v.0 as usize;
                    if seen[vi] {
                        ok = false;
                        break;
                    }
                    seen[vi] = true;
                    var_of_dim.push(vi);
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || !seen.iter().all(|&b| b) {
            continue;
        }
        // The consumer's own stores must target statically-sized fields:
        // inline dispatch skips the analyzer's extent propagation, so it
        // must not be the only source of a grown extent expectation.
        if !k
            .stores
            .iter()
            .all(|st| spec.fields[st.field.idx()].initial_extents.is_some())
        {
            continue;
        }
        let slot = &mut plans[fe.field.idx()];
        if slot.is_none() {
            *slot = Some(InlinePlan {
                consumer: k.id,
                t,
                index_vars: k.index_vars as usize,
                var_of_dim,
                max_ages: limits.max_ages,
            });
        }
    }
    plans
}

pub(crate) struct Shared {
    spec: Arc<ProgramSpec>,
    bodies: Vec<Option<KernelBody>>,
    /// Optional whole-unit bodies, used opportunistically on the batched
    /// path when a kernel registered one.
    batch_bodies: Vec<Option<BatchKernelBody>>,
    fusions: Vec<FusionPlan>,
    fields: SharedFields,
    ready: ReadyQueue,
    /// One event channel per analyzer shard (one entry in single-analyzer
    /// mode). Workers route through [`Shared::send_event`].
    event_txs: Vec<Sender<Event>>,
    /// Sharded mode: the store/unit routing plan. `None` ⇒ one analyzer
    /// thread observing every event (today's semantics, bit for bit).
    shard_plan: Option<Arc<ShardPlan>>,
    /// Set before the first `KernelFailure` event is published: disarms
    /// the inline fast path so no worker-side dispatch can race the
    /// analyzer's poison traversal.
    poisoned: AtomicBool,
    /// Per field: inline fast-path plan for its single pointwise consumer
    /// (empty vector when the fast path is disabled).
    inline: Vec<Option<InlinePlan>>,
    /// Events + queued units not yet fully processed. Zero ⇒ quiescent.
    outstanding: AtomicI64,
    stop: AtomicBool,
    failure: Mutex<Option<RuntimeError>>,
    instruments: Instruments,
    timers: Arc<TimerTable>,
    store_tap: Option<StoreTap>,
    /// Distributed mode: quiescence is decided by the cluster coordinator.
    hold_open: bool,
    /// Distributed mode: local stores go through write-once dedup so
    /// kernel re-execution after a node failure is idempotent.
    dedup_stores: bool,
    /// Per-kernel fault policies (indexed by `KernelId::idx`).
    fault: Vec<FaultPolicy>,
    /// Present when some kernel's fault policy needs delayed retries or
    /// deadline flagging.
    watchdog: Option<Arc<Watchdog>>,
    /// Structured event tracing; `None` keeps the hot path at one branch
    /// per would-be event.
    tracer: Option<Arc<Tracer>>,
    /// Session mode: ready units go to this shared pool instead of the
    /// node's private queue (which then has no workers of its own).
    pool: Option<Arc<WorkerPool>>,
    /// Batched instance execution ([`RunLimits::batch_exec`]): eligible
    /// multi-instance units run as one work unit with merged fetches,
    /// segmented `catch_unwind`, and merged store events.
    batch_exec: bool,
    /// The online chunk-size controller, ticked by analyzer shard 0
    /// ([`RunLimits::adaptive`]).
    granularity: Option<Arc<GranularityController>>,
    /// Per-session QoS rank source (session mode): the pool stamps each
    /// submitted unit with this state's (class, vtime).
    qos: Option<Arc<QosState>>,
}

impl Shared {
    /// Record a trace event into the calling thread's buffer. The closure
    /// is only evaluated when tracing is enabled.
    #[inline]
    fn trace(&self, event: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.tracer {
            t.record(TRACE_TID.with(|c| c.get()), event());
        }
    }
    /// Release one unit of outstanding work. The counter can reach zero on
    /// *any* thread (the analyzer may process a unit's completion event
    /// before the unit releases its own count), so every decrementer must
    /// perform the quiescence check.
    fn release_outstanding(&self) {
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 && !self.hold_open {
            self.shutdown();
        }
    }

    /// Stop every thread of the node: flag stop, close the ready queue,
    /// and stop the watchdog — releasing the outstanding count of retries
    /// that will never run.
    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.ready.close();
        if let Some(wd) = &self.watchdog {
            for _unit in wd.stop() {
                self.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    fn fail(&self, err: RuntimeError) {
        let mut g = self.failure.lock();
        if g.is_none() {
            *g = Some(err);
        }
        drop(g);
        self.shutdown();
    }

    fn has_failed(&self) -> bool {
        self.failure.lock().is_some()
    }

    /// The node's QoS rank source, if any (set in session mode).
    pub(crate) fn qos(&self) -> Option<&Arc<QosState>> {
        self.qos.as_ref()
    }

    /// Route a counted ready unit to this node's execution surface: the
    /// shared worker pool in session mode, the private queue otherwise.
    fn dispatch(self: &Arc<Self>, unit: DispatchUnit) {
        match &self.pool {
            Some(pool) => pool.submit(self.clone(), unit),
            None => self.ready.push(unit),
        }
    }

    /// Bitmask selecting every analyzer shard.
    fn all_shards_mask(&self) -> u64 {
        let n = self.event_txs.len();
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// Publish an event to the analyzer shard(s) that must observe it.
    /// Stores go to the shards owning an affected consumer instance
    /// ([`ShardPlan::store_dests`]), `UnitDone` to the unit's owner, and
    /// failure/reassign events broadcast. Every delivered copy is counted
    /// separately as outstanding work before the first send, so quiescence
    /// still requires each copy processed.
    fn send_event(&self, ev: Event) {
        let Some(plan) = &self.shard_plan else {
            self.outstanding.fetch_add(1, Ordering::SeqCst);
            let _ = self.event_txs[0].send(ev);
            return;
        };
        let mask: u64 = match &ev {
            Event::Store(se) => plan.store_dests(se.field, se.age.0),
            Event::UnitDone { kernel, age, .. } => 1u64 << plan.unit_owner(*kernel, age.0),
            // Sharded mode applies remote stores node-side and routes them
            // as `Store` (see `inject_remote_store`); this arm is only a
            // fallback.
            Event::RemoteStore { .. } => 1,
            Event::Reassign { .. } | Event::KernelFailure { .. } | Event::Failure(_) => {
                self.all_shards_mask()
            }
            // Expectation broadcasts originate on an analyzer shard and go
            // through `broadcast_expect` (which excludes the originator).
            Event::ShardExpect { .. } => self.all_shards_mask(),
        };
        self.send_to_mask(ev, mask);
    }

    /// Deliver one analyzer shard's expected-extents broadcast to every
    /// *other* shard (the originator already merged it locally).
    fn broadcast_expect(&self, ev: Event, from: usize) {
        let mask = self.all_shards_mask() & !(1u64 << from);
        self.send_to_mask(ev, mask);
    }

    /// Send counted copies of `ev` to every shard in `mask`.
    fn send_to_mask(&self, ev: Event, mask: u64) {
        let copies = mask.count_ones() as i64;
        if copies == 0 {
            return;
        }
        // All copies counted before any is visible: a shard that finishes
        // its copy instantly cannot observe a transient zero.
        self.outstanding.fetch_add(copies, Ordering::SeqCst);
        let last = 63 - mask.leading_zeros() as usize;
        let mut rem = mask & !(1u64 << last);
        let mut s = 0usize;
        while rem != 0 {
            if rem & 1 != 0 {
                let _ = self.event_txs[s].send(ev.clone());
            }
            rem >>= 1;
            s += 1;
        }
        let _ = self.event_txs[last].send(ev);
    }
}

/// One tick of a shared pool worker: execute a queued unit against its
/// owning node. The pool worker's trace id is set per tick because
/// consecutive ticks may belong to different nodes (different tracers).
pub(crate) fn pool_worker_tick(worker: u32, task: PoolTask) {
    TRACE_TID.with(|c| c.set(worker));
    run_unit(&task.shared, task.unit);
}

/// Read access to a program's fields after a run (results extraction).
pub struct FieldStore {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl FieldStore {
    fn new(fields: Vec<Field>, spec: &ProgramSpec) -> FieldStore {
        let by_name = spec
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        FieldStore { fields, by_name }
    }

    /// Fetch a region by field name.
    pub fn fetch(&self, name: &str, age: Age, region: &Region) -> Option<Buffer> {
        let id = *self.by_name.get(name)?;
        self.fields[id].fetch(age, region).ok()
    }

    /// Fetch one element by field name.
    pub fn fetch_element(&self, name: &str, age: Age, index: &[usize]) -> Option<Value> {
        let id = *self.by_name.get(name)?;
        self.fields[id].fetch_element(age, index).ok()
    }

    /// Direct access to a field by id.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.idx()]
    }

    /// Direct access by name.
    pub fn field_by_name(&self, name: &str) -> Option<&Field> {
        let id = *self.by_name.get(name)?;
        Some(&self.fields[id])
    }
}

/// Builder for launching an execution node — the single entry point that
/// replaced `ExecutionNode::{run, run_collect, start}`.
///
/// ```ignore
/// let report = NodeBuilder::new(program)
///     .workers(4)
///     .launch(RunLimits::ages(10))?
///     .wait()?;
/// ```
pub struct NodeBuilder {
    program: Program,
    workers: usize,
    store_tap: Option<StoreTap>,
    assigned: Option<std::collections::HashSet<KernelId>>,
    pool: Option<Arc<WorkerPool>>,
    watches: Vec<(String, AgeWatchFn)>,
    qos: Option<Arc<QosState>>,
}

impl NodeBuilder {
    /// Build a node for `program` (one worker unless overridden).
    pub fn new(program: Program) -> NodeBuilder {
        NodeBuilder {
            program,
            workers: 1,
            store_tap: None,
            assigned: None,
            pool: None,
            watches: Vec::new(),
            qos: None,
        }
    }

    /// Number of worker threads (the analyzer thread is extra). Ignored
    /// when the node is attached to a shared [`WorkerPool`].
    pub fn workers(mut self, workers: usize) -> NodeBuilder {
        self.workers = workers.max(1);
        self
    }

    /// Attach this node to a shared worker pool: the node spawns no worker
    /// threads of its own and its ready units rank against every other
    /// attached node's by age. This is how [`crate::session::SessionRuntime`]
    /// hosts many tenants on one fixed thread set.
    pub fn pool(mut self, pool: Arc<WorkerPool>) -> NodeBuilder {
        self.pool = Some(pool);
        self
    }

    /// Rank this node's pool submissions with a per-session QoS state
    /// (session mode only; no effect without [`NodeBuilder::pool`]).
    pub(crate) fn qos_state(mut self, qos: Arc<QosState>) -> NodeBuilder {
        self.qos = Some(qos);
        self
    }

    /// Watch a kernel's age frontier: `callback(age, poisoned)` fires on the
    /// analyzer thread each time every instance of `kernel` at `age` has
    /// completed (or been poisoned), in strictly increasing age order. The
    /// session layer uses a watch on the terminal kernel to learn when a
    /// frame's output is ready.
    pub fn watch_ages(mut self, kernel: &str, callback: AgeWatchFn) -> NodeBuilder {
        self.watches.push((kernel.to_string(), callback));
        self
    }

    /// Install a store tap: called after every successful local store with
    /// the stored region and data (cluster store forwarding).
    pub fn store_tap(mut self, tap: StoreTap) -> NodeBuilder {
        self.store_tap = Some(tap);
        self
    }

    /// Restrict this node to a subset of the program's kernels
    /// (distributed mode — the HLS decides the assignment).
    pub fn assigned(mut self, assigned: std::collections::HashSet<KernelId>) -> NodeBuilder {
        self.assigned = Some(assigned);
        self
    }

    /// Start the node's threads and return the interaction handle
    /// ([`NodeHandle::wait`], [`NodeHandle::collect`], [`NodeHandle::stop`],
    /// remote-store injection, reassignment).
    pub fn launch(self, limits: RunLimits) -> Result<NodeHandle, RuntimeError> {
        self.program.check_bodies()?;
        // Kernel assignment implies cluster mode: local stores may be
        // legitimately repeated (recovery re-execution), so they dedup.
        let dedup_stores = self.assigned.is_some();
        let Program {
            spec,
            bodies,
            batch_bodies,
            options,
            fusions,
            timers,
        } = self.program;

        let fields: SharedFields = Arc::new(
            spec.fields
                .iter()
                .enumerate()
                .map(|(i, d)| RwLock::new(Field::new(FieldId(i as u32), d.clone())))
                .collect(),
        );
        // One event channel (and one analyzer thread) per shard; a single
        // shard is exactly the pre-sharding runtime, event for event.
        let shards = limits.shards.clamp(1, 64);
        let (event_txs, event_rxs): (Vec<Sender<Event>>, Vec<Receiver<Event>>) =
            (0..shards).map(|_| unbounded::<Event>()).unzip();
        let fault: Vec<FaultPolicy> = options.iter().map(|o| o.fault.clone()).collect();

        // Resolve age watches up front: watched kernels are pinned by the
        // shard plan (their callbacks must fire in global age order).
        let mut watch_ids: Vec<(KernelId, AgeWatchFn)> = Vec::new();
        for (name, callback) in self.watches {
            let Some(idx) = spec.kernels.iter().position(|k| k.name == name) else {
                return Err(RuntimeError::Kernel {
                    kernel: name,
                    message: "unknown kernel in watch_ages".into(),
                });
            };
            watch_ids.push((KernelId(idx as u32), callback));
        }
        let watched: HashSet<KernelId> = watch_ids.iter().map(|(k, _)| *k).collect();
        let fused_consumers: HashSet<KernelId> = fusions.iter().map(|f| f.consumer).collect();
        let shard_plan = (shards > 1).then(|| {
            Arc::new(ShardPlan::new(
                &spec,
                &options,
                &fused_consumers,
                &watched,
                shards,
            ))
        });
        let shard_gc = shard_plan
            .as_ref()
            .map(|_| Arc::new(ShardGc::new(spec.kernels.len(), spec.fields.len(), shards)));
        // The inline fast path rides along with sharding (it exists to
        // keep the analyzer off the critical path) and can be opted into
        // explicitly; cluster-assigned nodes keep every dispatch decision
        // in the analyzer, where recovery rescans can reconcile it.
        // Adaptive granularity disables it: the inline plan requires
        // chunk-size 1, which the controller is free to change online.
        let inline: Vec<Option<InlinePlan>> = if limits.adaptive.is_none()
            && self.assigned.is_none()
            && (shards > 1 || limits.inline_dispatch)
        {
            build_inline_plans(&spec, &options, &fused_consumers, &watched, &limits)
        } else {
            (0..spec.fields.len()).map(|_| None).collect()
        };
        let granularity = limits.adaptive.as_ref().map(|cfg| {
            let adaptive = GranularityController::eligibility(&spec, &options, &fusions);
            Arc::new(GranularityController::new(cfg.clone(), &options, adaptive))
        });

        // Trace buffer ids: workers 0..n, then the analyzer shards,
        // watchdog, main. Pool-attached nodes have no private workers;
        // their units run on the pool's threads, which claim the worker
        // tid range.
        let worker_slots = self.pool.as_ref().map(|p| p.workers()).unwrap_or(self.workers);
        let analyzer_tid0 = worker_slots as u32;
        let watchdog_tid = analyzer_tid0 + shards as u32;
        let main_tid = watchdog_tid + 1;
        let tracer = limits.trace.as_ref().map(|opts| {
            let mut labels: Vec<String> = (0..worker_slots).map(|w| format!("worker-{w}")).collect();
            if shards == 1 {
                labels.push("analyzer".into());
            } else {
                for s in 0..shards {
                    labels.push(format!("analyzer-{s}"));
                }
            }
            labels.push("watchdog".into());
            labels.push("main".into());
            Arc::new(Tracer::new(labels, opts.capacity))
        });
        let watchdog = if fault.iter().any(|p| p.needs_watchdog()) {
            Some(Arc::new(Watchdog::new(
                tracer.clone().map(|t| (t, watchdog_tid)),
            )))
        } else {
            None
        };
        install_contained_panic_hook();
        let shared = Arc::new(Shared {
            spec: spec.clone(),
            bodies,
            batch_bodies,
            fusions: fusions.clone(),
            fields: fields.clone(),
            ready: ReadyQueue::new(),
            event_txs,
            shard_plan: shard_plan.clone(),
            poisoned: AtomicBool::new(false),
            inline,
            outstanding: AtomicI64::new(0),
            stop: AtomicBool::new(false),
            failure: Mutex::new(None),
            instruments: Instruments::new_sharded(
                spec.kernels.iter().map(|k| k.name.clone()).collect(),
                shards,
            ),
            timers,
            store_tap: self.store_tap.clone(),
            hold_open: limits.hold_open,
            dedup_stores,
            fault,
            watchdog,
            tracer: tracer.clone(),
            pool: self.pool.clone(),
            batch_exec: limits.batch_exec,
            granularity: granularity.clone(),
            qos: self.qos.clone(),
        });

        let mut analyzers = Vec::with_capacity(shards);
        for s in 0..shards {
            let mut analyzer = DependencyAnalyzer::new(
                spec.clone(),
                options.clone(),
                fused_consumers.clone(),
                fields.clone(),
                limits.clone(),
            );
            if let Some(assigned) = &self.assigned {
                analyzer.set_assigned(assigned.clone());
            }
            if let Some(t) = &tracer {
                analyzer.set_tracer(t.clone(), analyzer_tid0 + s as u32);
            }
            if let (Some(plan), Some(gc)) = (&shard_plan, &shard_gc) {
                analyzer.set_shard_scope(plan.clone(), s, gc.clone());
            }
            if let Some(g) = &granularity {
                analyzer.set_granularity(g.clone());
            }
            analyzers.push(analyzer);
        }
        // An age watch lives on the shard owning the watched kernel
        // (pinned, so one shard owns every age and fires in order).
        for (kid, callback) in watch_ids {
            let home = shard_plan
                .as_ref()
                .map(|p| p.unit_owner(kid, 0))
                .unwrap_or(0);
            analyzers[home].set_age_watch(kid, callback);
        }

        let start = Instant::now();

        // Seed source kernels before any worker can observe an empty
        // queue. Each shard only seeds the sources it owns.
        TRACE_TID.with(|c| c.set(main_tid));
        for analyzer in &mut analyzers {
            for unit in analyzer.seed() {
                for indices in &unit.instances {
                    shared.trace(|| TraceEvent::InstanceDispatched {
                        kernel: unit.kernel,
                        age: unit.age.0,
                        indices: indices.clone(),
                    });
                }
                shared.outstanding.fetch_add(1, Ordering::SeqCst);
                shared.dispatch(unit);
            }
        }
        // A program with no sources is quiescent immediately (unless it
        // waits for remote stores).
        if shared.outstanding.load(Ordering::SeqCst) == 0 && !limits.hold_open {
            shared.stop.store(true, Ordering::SeqCst);
            shared.ready.close();
        }

        // Analyzer shard threads.
        let deadline = limits.wall_deadline.map(|d| start + d);
        let batch = limits.analyzer_batch.max(1);
        let mut analyzer_handles = Vec::with_capacity(shards);
        for (s, (analyzer, events_rx)) in analyzers.into_iter().zip(event_rxs).enumerate() {
            let analyzer_shared = shared.clone();
            let tid = analyzer_tid0 + s as u32;
            let name = if shards == 1 {
                "p2g-analyzer".to_string()
            } else {
                format!("p2g-analyzer-{s}")
            };
            analyzer_handles.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || {
                        TRACE_TID.with(|c| c.set(tid));
                        analyzer_loop(analyzer, analyzer_shared, events_rx, deadline, s, batch)
                    })
                    .expect("spawn analyzer"),
            );
        }

        // Worker threads — none when attached to a shared pool.
        let mut worker_handles = Vec::with_capacity(self.workers);
        if shared.pool.is_none() {
            for w in 0..self.workers {
                let ws = shared.clone();
                worker_handles.push(
                    std::thread::Builder::new()
                        .name(format!("p2g-worker-{w}"))
                        .spawn(move || {
                            TRACE_TID.with(|c| c.set(w as u32));
                            worker_loop(ws)
                        })
                        .expect("spawn worker"),
                );
            }
        }

        // Watchdog thread: releases due retries to the ready queue and
        // flags soft-deadline overruns.
        let watchdog_handle = shared.watchdog.clone().map(|wd| {
            let ws = shared.clone();
            std::thread::Builder::new()
                .name("p2g-watchdog".into())
                .spawn(move || watchdog_loop(wd, ws))
                .expect("spawn watchdog")
        });

        Ok(RunningNode {
            shared,
            fields,
            spec,
            start,
            analyzer_handles,
            worker_handles,
            watchdog_handle,
        })
    }
}

/// Handle to a launched node — the name the builder API uses for
/// [`RunningNode`].
pub type NodeHandle = RunningNode;

/// A started execution node: inject remote stores, query quiescence, stop,
/// and finally join for the report and field contents.
pub struct RunningNode {
    shared: Arc<Shared>,
    fields: SharedFields,
    spec: Arc<ProgramSpec>,
    start: Instant,
    analyzer_handles: Vec<std::thread::JoinHandle<Termination>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    watchdog_handle: Option<std::thread::JoinHandle<()>>,
}

impl RunningNode {
    /// Forward a store produced on another node into this node's field
    /// replicas; the dependency analyzer applies it and dispatches any
    /// instances it unblocks. In sharded mode the replica store is applied
    /// here (idempotently — remote forwards may duplicate) and the
    /// resulting store event routed like a local one, so every consumer
    /// shard observes it.
    pub fn inject_remote_store(&self, field: FieldId, age: Age, region: Region, buffer: Buffer) {
        if self.shared.shard_plan.is_none() {
            self.shared.outstanding.fetch_add(1, Ordering::SeqCst);
            let _ = self.shared.event_txs[0].send(Event::RemoteStore {
                field,
                age,
                region,
                buffer,
            });
            return;
        }
        let applied = {
            let mut f = self.shared.fields[field.idx()].write();
            match f.store_idempotent(age, &region, &buffer) {
                Ok(outcome) => {
                    let extents = f.extents(age).cloned().expect("age resident after store");
                    let resolved = region.resolved_against(&extents);
                    Ok((outcome, resolved, extents))
                }
                Err(e) => Err(e),
            }
        };
        let (outcome, region, extents) = match applied {
            Ok(v) => v,
            Err(e) => {
                self.shared.fail(RuntimeError::Field(e));
                return;
            }
        };
        self.shared.trace(|| {
            store_event(
                None,
                field,
                age,
                region.clone(),
                outcome.stored,
                outcome.deduped,
                outcome.age_complete,
            )
        });
        if outcome.deduped > 0 {
            self.shared
                .instruments
                .record_deduped(outcome.deduped as u64);
        }
        self.shared.send_event(Event::Store(StoreEvent {
            field,
            age,
            region,
            extents,
            elements: outcome.stored,
            age_complete: outcome.age_complete,
            resized: outcome.resized,
            inline_dispatched: None,
        }));
    }

    /// Outstanding local work (events + queued + running units). Zero
    /// means locally quiescent (remote stores may still arrive).
    pub fn outstanding(&self) -> i64 {
        self.shared.outstanding.load(Ordering::SeqCst)
    }

    /// Ask the node to stop: used by the cluster coordinator once global
    /// quiescence is established, and for external cancellation.
    pub fn request_stop(&self) {
        self.shared.shutdown();
    }

    /// True once the node has recorded a fatal failure (a kernel abort or
    /// runtime malfunction) — it is shutting down and will stop
    /// heartbeating in distributed mode. Kernel failures contained by a
    /// `Poison` fault policy do *not* set this; they only degrade.
    pub fn has_failed(&self) -> bool {
        self.shared.has_failed()
    }

    /// Builder-API alias of [`RunningNode::request_stop`].
    pub fn stop(&self) {
        self.request_stop();
    }

    /// True once the node's stop flag is set (quiescence, failure, or an
    /// external [`RunningNode::request_stop`]). The session layer polls
    /// this while draining so a dead node cannot hang `finish`.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Total live `(field, age)` slabs across every field — the quantity
    /// the streaming soak tests assert stays bounded while ages advance.
    pub fn resident_ages(&self) -> usize {
        self.fields
            .iter()
            .map(|l| l.read().resident_ages().count())
            .sum()
    }

    /// Resident field memory in bytes (all fields, all live ages).
    pub fn bytes_resident(&self) -> usize {
        self.fields.iter().map(|l| l.read().bytes_resident()).sum()
    }

    /// Replace this node's kernel assignment (cluster recovery): the
    /// analyzer seeds newly-owned sources and rescans resident field data
    /// for instances that became this node's responsibility.
    pub fn reassign(&self, kernels: std::collections::HashSet<KernelId>) {
        // Broadcasts in sharded mode: every shard adopts the assignment
        // and rescans the slice of the instance space it owns.
        self.shared.send_event(Event::Reassign { kernels });
    }

    /// Snapshot every written region of every resident field age. Cluster
    /// recovery replays these to the failed node's replacement subscribers;
    /// write-once dedup makes the replay idempotent.
    pub fn snapshot_written(&self) -> Vec<(FieldId, Age, Region, Buffer)> {
        let mut out = Vec::new();
        for (i, lock) in self.fields.iter().enumerate() {
            let field = lock.read();
            let ages: Vec<Age> = field.resident_ages().collect();
            for age in ages {
                for (region, buffer) in field.snapshot_written(age) {
                    out.push((FieldId(i as u32), age, region, buffer));
                }
            }
        }
        out
    }

    /// Wait for the node to finish; report only.
    pub fn wait(self) -> Result<RunReport, RuntimeError> {
        self.join().map(|(r, _)| r)
    }

    /// Wait for the node to finish; report plus final field contents.
    pub fn collect(self) -> Result<(RunReport, FieldStore), RuntimeError> {
        self.join()
    }

    /// Wait for the node to finish and collect the report and fields.
    pub fn join(self) -> Result<(RunReport, FieldStore), RuntimeError> {
        let (report, fields, err) = self.finish();
        match err {
            Some(e) => Err(e),
            None => Ok((report, fields)),
        }
    }

    /// Non-failing join: wait for the node to finish and hand back the
    /// report, the field contents, and the failure (if any) side by side.
    /// A cluster coordinator uses this to salvage whatever a failed node
    /// produced instead of losing the report to the error path.
    pub fn finish(self) -> (RunReport, FieldStore, Option<RuntimeError>) {
        let RunningNode {
            shared,
            fields,
            spec,
            start,
            analyzer_handles,
            worker_handles,
            watchdog_handle,
        } = self;
        // Join every analyzer shard and keep the most severe exit status:
        // one shard hitting the deadline (or failing) decides the run even
        // when its peers wound down quiescent.
        let mut termination = Termination::Quiescent;
        for handle in analyzer_handles {
            let t = match handle.join() {
                Ok(t) => t,
                Err(_) => {
                    shared.fail(RuntimeError::WorkerPanic);
                    Termination::Failed
                }
            };
            if termination_rank(t) > termination_rank(termination) {
                termination = t;
            }
        }
        // The analyzer has returned, so stop is set; make sure the
        // watchdog and workers wind down before collecting.
        shared.shutdown();
        for h in worker_handles {
            if h.join().is_err() {
                shared.fail(RuntimeError::WorkerPanic);
            }
        }
        if let Some(h) = watchdog_handle {
            let _ = h.join();
        }
        let wall_time = start.elapsed();

        let err = shared.failure.lock().take();
        let termination = if err.is_some() {
            Termination::Failed
        } else {
            termination
        };

        let trace: Option<RunTrace> = shared
            .tracer
            .as_ref()
            .map(|t| t.capture(shared.spec.clone()));
        let report = RunReport {
            termination,
            wall_time,
            instruments: InstrumentsSnapshot::capture(&shared.instruments),
            trace,
        };
        // All threads joined; in pool mode, queued pool tasks may still
        // hold clones of this node's shared state (they drain in age order
        // and drop their clone as they run), so wait for the last clone to
        // go before unwrapping the fields.
        let weak = Arc::downgrade(&shared);
        drop(shared);
        while weak.strong_count() > 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
        let fields = Arc::try_unwrap(fields)
            .expect("no outstanding field references after join")
            .into_iter()
            .map(|l| l.into_inner())
            .collect();
        (report, FieldStore::new(fields, &spec), err)
    }
}

/// Severity order for merging per-shard analyzer exit statuses.
fn termination_rank(t: Termination) -> u8 {
    match t {
        Termination::Quiescent => 0,
        Termination::Degraded => 1,
        Termination::DeadlineExpired => 2,
        Termination::Failed => 3,
    }
}

/// Watchdog thread: push due retry units to the ready queue (their
/// outstanding counts were taken at schedule time) until stopped.
fn watchdog_loop(wd: Arc<Watchdog>, shared: Arc<Shared>) {
    while let Some(due) = wd.next_due() {
        for unit in due {
            shared.dispatch(unit);
        }
    }
}

fn analyzer_loop(
    mut analyzer: DependencyAnalyzer,
    shared: Arc<Shared>,
    events_rx: Receiver<Event>,
    deadline: Option<Instant>,
    shard: usize,
    batch: usize,
) -> Termination {
    // The non-failure exit status: quiescent, or degraded once any
    // instance was poisoned.
    let finished = |analyzer: &DependencyAnalyzer| {
        if analyzer.degraded() {
            Termination::Degraded
        } else {
            Termination::Quiescent
        }
    };
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // Either quiescent-stop (set below) or failure-stop.
            return if shared.has_failed() {
                Termination::Failed
            } else {
                finished(&analyzer)
            };
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                if std::env::var_os("P2G_DEBUG_QUIESCENCE").is_some() {
                    eprintln!(
                        "[p2g] deadline with outstanding={} ready_len={}",
                        shared.outstanding.load(Ordering::SeqCst),
                        shared.ready.len()
                    );
                }
                shared.shutdown();
                return Termination::DeadlineExpired;
            }
        }
        // Adaptive granularity: shard 0 runs the controller tick (it is
        // interval-gated internally, so this is one lock + compare on the
        // idle path).
        if shard == 0 {
            granularity_tick(&shared);
        }
        let mut next = match events_rx.recv_timeout(Duration::from_millis(5)) {
            Ok(ev) => Some(ev),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return finished(&analyzer),
        };
        shared
            .instruments
            .record_shard_queue_depth(shard, events_rx.len() as u64 + 1);
        // Greedy batch drain: under a store storm the channel is never
        // empty, and handling a burst back-to-back keeps the analyzer's
        // accounting state cache-hot and skips the blocking-receive path.
        // The batch size bounds the time between deadline checks.
        // Outstanding work is still released per event so the quiescence
        // protocol is unchanged.
        let mut handled = 0usize;
        while let Some(ev) = next.take() {
            if let Event::Failure(msg) = &ev {
                shared.fail(RuntimeError::Kernel {
                    kernel: "<unknown>".into(),
                    message: msg.clone(),
                });
                return Termination::Failed;
            }
            let t_event = Instant::now();
            let units = match analyzer.on_event(&ev) {
                Ok(units) => units,
                Err(e) => {
                    shared.fail(RuntimeError::Field(e));
                    return Termination::Failed;
                }
            };
            shared.instruments.record_analyzer_event(t_event.elapsed());
            let deduped = analyzer.take_deduped();
            if deduped > 0 {
                shared.instruments.record_deduped(deduped);
            }
            shared
                .instruments
                .record_gc(analyzer.take_gc_collected(), analyzer.live_ages() as u64);
            for (kid, age, indices) in analyzer.take_poisoned() {
                shared.trace(|| TraceEvent::Poisoned {
                    kernel: kid,
                    age,
                    indices: indices.clone(),
                });
                shared.instruments.record_poisoned(kid, age, &indices);
            }
            // Expectation broadcasts must reach peer shards before any
            // store a dispatched unit produces: per-shard FIFO channels
            // make sending them first sufficient.
            for bc in analyzer.take_outbox() {
                shared.broadcast_expect(bc, shard);
            }
            for unit in units {
                // Retry units are re-dispatches, not fresh analyzer
                // decisions (they come back through the watchdog, not
                // here), so every unit seen at this point is attempt 0.
                for indices in &unit.instances {
                    shared.trace(|| TraceEvent::InstanceDispatched {
                        kernel: unit.kernel,
                        age: unit.age.0,
                        indices: indices.clone(),
                    });
                }
                shared.outstanding.fetch_add(1, Ordering::SeqCst);
                shared.dispatch(unit);
            }
            // This event is fully processed; the release may observe
            // quiescence (stop is then checked right here to avoid one
            // extra poll cycle).
            shared.release_outstanding();
            if shared.stop.load(Ordering::SeqCst) {
                return if shared.has_failed() {
                    Termination::Failed
                } else {
                    finished(&analyzer)
                };
            }
            handled += 1;
            if handled < batch {
                next = events_rx.try_recv().ok();
            }
        }
        shared.trace(|| TraceEvent::AnalyzerBatch { events: handled });
        shared.instruments.record_analyzer_batch();
        shared.instruments.record_shard_events(shard, handled as u64);
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(unit) = shared.ready.pop() {
        run_unit(&shared, unit);
    }
}

/// One controller tick ([`RunLimits::adaptive`]): differentiate the
/// instrument counters and publish every chunk-size decision as a
/// `GranularityChange` trace event. Called from analyzer shard 0 only, so
/// decisions are totally ordered.
fn granularity_tick(shared: &Arc<Shared>) {
    let Some(g) = &shared.granularity else { return };
    for ch in g.tick(&shared.instruments) {
        shared.instruments.record_granularity_change();
        shared.trace(|| TraceEvent::GranularityChange {
            kernel: ch.kernel,
            from: ch.from,
            to: ch.to,
            overhead_ppm: ch.overhead_ppm,
            p95_ns: ch.p95_ns,
        });
    }
}

/// Deterministic jitter salt for a retry: hashes the unit identity so
/// repeated runs back off identically.
fn retry_salt(unit: &DispatchUnit, failed: &[Vec<usize>]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    unit.kernel.0.hash(&mut h);
    unit.age.0.hash(&mut h);
    unit.attempt.hash(&mut h);
    failed.hash(&mut h);
    h.finish()
}

/// Execute one dispatch unit: assemble inputs, run bodies (panic-contained),
/// apply stores, publish events. Body failures go through the kernel's
/// fault policy: batched into one delayed retry unit while the budget
/// lasts, then aborted or poisoned per [`ExhaustPolicy`].
fn run_unit(shared: &Arc<Shared>, unit: DispatchUnit) {
    // A failure-stop drains the queue without running stale units.
    if shared.stop.load(Ordering::SeqCst) && shared.has_failed() {
        shared.release_outstanding();
        return;
    }
    if batch_eligible(shared, &unit) {
        run_unit_batched(shared, unit);
        return;
    }
    let policy = &shared.fault[unit.kernel.idx()];
    let t_unit = Instant::now();
    let mut body_time = Duration::ZERO;
    let mut stored_any = unit.prior_stored;
    let mut ok_instances = 0usize;
    let mut failed: Vec<Vec<usize>> = Vec::new();

    for indices in &unit.instances {
        // Soft-deadline registration: the watchdog flags the token when
        // the instance overruns; the body polls `ctx.cancelled()`.
        let cancel = policy.deadline.map(|_| Arc::new(AtomicBool::new(false)));
        let registration = match (&shared.watchdog, policy.deadline, &cancel) {
            (Some(wd), Some(dl), Some(token)) => Some((
                wd,
                wd.register(
                    Instant::now() + dl,
                    token.clone(),
                    unit.kernel,
                    unit.age,
                    indices.clone(),
                ),
            )),
            _ => None,
        };
        let result = run_instance(
            shared,
            unit.kernel,
            unit.age,
            indices,
            unit.attempt,
            cancel.as_deref(),
            &mut body_time,
        );
        if let Some((wd, id)) = registration {
            if wd.deregister(id) {
                shared.instruments.record_deadline_miss(unit.kernel);
            }
        }
        match result {
            Ok(any) => {
                stored_any |= any;
                ok_instances += 1;
            }
            Err(InstanceError::Fatal(err)) => {
                shared.fail(err);
                // Balance this unit's outstanding count before bailing.
                shared.release_outstanding();
                return;
            }
            Err(InstanceError::Body(message)) => {
                shared.instruments.record_failure(unit.kernel);
                if unit.attempt < policy.retries {
                    failed.push(indices.clone());
                } else {
                    match policy.on_exhaust {
                        ExhaustPolicy::Abort => {
                            shared.fail(RuntimeError::Kernel {
                                kernel: shared.spec.kernel(unit.kernel).name.clone(),
                                message,
                            });
                            shared.release_outstanding();
                            return;
                        }
                        ExhaustPolicy::Poison => {
                            // Disarm the inline fast path before the
                            // failure is visible: no worker-side dispatch
                            // may race the poison traversal. Counted
                            // event(s): every analyzer shard quarantines
                            // the instance and propagates poison over the
                            // slice it owns.
                            shared.poisoned.store(true, Ordering::SeqCst);
                            shared.send_event(Event::KernelFailure {
                                kernel: unit.kernel,
                                age: unit.age,
                                indices: indices.clone(),
                                message,
                            });
                        }
                    }
                }
            }
        }
    }

    let dispatch_time = t_unit.elapsed().saturating_sub(body_time);
    shared
        .instruments
        .record_unit(unit.kernel, unit.len() as u64, dispatch_time, body_time);

    // Failed-but-retryable instances become ONE retry unit, re-dispatched
    // by the watchdog after the backoff delay. Its outstanding count is
    // taken here and held until the retry finishes, so quiescence cannot
    // be observed with a retry pending.
    let retried = !failed.is_empty();
    if retried {
        shared.trace(|| TraceEvent::RetryScheduled {
            kernel: unit.kernel,
            age: unit.age.0,
            instances: failed.len(),
            attempt: unit.attempt + 1,
            budget: policy.retries,
        });
        shared
            .instruments
            .record_retries(unit.kernel, failed.len() as u64);
        let salt = retry_salt(&unit, &failed);
        let due = Instant::now() + policy.backoff_for(unit.attempt, salt);
        let retry = DispatchUnit {
            kernel: unit.kernel,
            age: unit.age,
            instances: failed,
            attempt: unit.attempt + 1,
            prior_stored: stored_any,
        };
        shared.outstanding.fetch_add(1, Ordering::SeqCst);
        shared
            .watchdog
            .as_ref()
            .expect("watchdog runs whenever retries are configured")
            .schedule_retry(retry, due);
    }

    // The UnitDone event is counted before the unit's own count is
    // released; the analyzer may nevertheless process it first, in which
    // case this thread's release is the one that observes quiescence.
    // `instances` reports only this execution's successes — poisoned
    // instances are accounted by the analyzer, retried ones by the retry
    // unit's own UnitDone. Routed to the shard owning the unit, behind
    // every store event this thread published for it (per-shard FIFO).
    shared.send_event(Event::UnitDone {
        kernel: unit.kernel,
        age: unit.age,
        instances: ok_instances,
        stored_any,
        retried,
    });
    shared.release_outstanding();
}

/// Whether a dispatch unit may take the batched path: opted in
/// ([`RunLimits::batch_exec`]), multi-instance, first attempt, and free of
/// the features the scalar path implements per instance — store dedup
/// (cluster mode), soft deadlines (per-instance watchdog registration),
/// and fusion (inline consumer execution). Retry units fall back to the
/// scalar path, which also handles their idempotent store replay.
fn batch_eligible(shared: &Shared, unit: &DispatchUnit) -> bool {
    let k = unit.kernel;
    shared.batch_exec
        && unit.instances.len() >= 2
        && unit.attempt == 0
        && !shared.dedup_stores
        && shared.fault[k.idx()].deadline.is_none()
        && !shared
            .fusions
            .iter()
            .any(|f| f.producer == k || f.consumer == k)
}

/// Execute a batch-eligible dispatch unit as ONE work unit: one merged
/// fetch pass (one field read-lock acquisition per fetch declaration
/// covers every instance), bodies run either through the kernel's
/// whole-unit batch body or back-to-back inside segmented
/// `catch_unwind` frames, and contiguous per-instance stores coalesce
/// into merged range stores (one write-lock, one store event). Fault
/// containment is per instance: a failed body retries or poisons only
/// itself, and only its own stores are withheld — its peers' land
/// normally.
fn run_unit_batched(shared: &Arc<Shared>, unit: DispatchUnit) {
    use p2g_graph::spec::IndexSel;
    let kernel = unit.kernel;
    let kspec = shared.spec.kernel(kernel);
    let policy = &shared.fault[kernel.idx()];
    let n = unit.instances.len();
    let t_unit = Instant::now();
    let mut body_time = Duration::ZERO;
    let mut stored_any = unit.prior_stored;

    // Merged fetch assembly. Buffers are still copies — workers never
    // hold field locks while running kernel code.
    let mut inputs: Vec<Vec<Buffer>> = (0..n)
        .map(|_| Vec::with_capacity(kspec.fetches.len()))
        .collect();
    let mut fetch_err: Option<p2g_field::FieldError> = None;
    'fetch: for fe in &kspec.fetches {
        let fa = fe.age.resolve(unit.age);
        let guard = shared.fields[fe.field.idx()].read();
        for (i, indices) in unit.instances.iter().enumerate() {
            let region = crate::program::resolve_region(&fe.dims, indices);
            match guard.fetch(fa, &region) {
                Ok(buf) => inputs[i].push(buf),
                Err(e) => {
                    fetch_err = Some(e);
                    break 'fetch;
                }
            }
        }
    }
    if let Some(e) = fetch_err {
        shared.fail(RuntimeError::Field(e));
        shared.release_outstanding();
        return;
    }

    // Whole-unit batch body, when the kernel registered one: a single
    // invocation stages every instance's stores. An `Err` or panic falls
    // back to the per-instance path — batch bodies are pure, so the
    // discarded partial staging is the only effect lost.
    let mut outcomes: Option<Vec<Result<Vec<StagedStore>, String>>> = None;
    if let Some(bbody) = &shared.batch_bodies[kernel.idx()] {
        let mut bctx = BatchCtx {
            spec: kspec,
            age: unit.age,
            instances: &unit.instances,
            inputs: &inputs,
            staged: (0..n).map(|_| Vec::new()).collect(),
            timers: &shared.timers,
        };
        for indices in &unit.instances {
            shared.trace(|| TraceEvent::BodyStart {
                kernel,
                age: unit.age.0,
                indices: indices.clone(),
                attempt: 0,
            });
        }
        IN_KERNEL.with(|c| c.set(true));
        let t_body = Instant::now();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| bbody(&mut bctx)));
        let elapsed = t_body.elapsed();
        IN_KERNEL.with(|c| c.set(false));
        let ok = matches!(&result, Ok(Ok(())));
        // Chrome-trace begin/end events nest LIFO: the batch's BodyEnds
        // close in reverse of their opens.
        for indices in unit.instances.iter().rev() {
            shared.trace(|| TraceEvent::BodyEnd {
                kernel,
                age: unit.age.0,
                indices: indices.clone(),
                attempt: 0,
                ok,
            });
        }
        if ok {
            body_time += elapsed;
            let per = elapsed / n as u32;
            for _ in 0..n {
                shared.instruments.record_latency(kernel, per);
            }
            outcomes = Some(bctx.staged.into_iter().map(Ok).collect());
        }
    }
    let outcomes = match outcomes {
        Some(o) => o,
        None => run_bodies_segmented(
            shared,
            kernel,
            unit.age,
            &unit.instances,
            &mut inputs,
            &mut body_time,
        ),
    };

    // Partition: successes apply their stores (grouped per store
    // declaration so contiguous runs can merge), failures go through the
    // kernel's fault policy exactly as on the scalar path.
    let ok_instances = outcomes.iter().filter(|o| o.is_ok()).count();
    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut groups: Vec<Vec<(usize, StagedStore)>> =
        (0..kspec.stores.len()).map(|_| Vec::new()).collect();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(staged) => {
                for st in staged {
                    groups[st.store_idx].push((i, st));
                }
            }
            Err(msg) => failures.push((i, msg)),
        }
    }
    for (sidx, entries) in groups.into_iter().enumerate() {
        if entries.is_empty() {
            continue;
        }
        let decl = &kspec.stores[sidx];
        // Merge eligibility: the declaration is addressed by one leading
        // index variable (no other Var dims), every entry is a default
        // region/age 1-D store, payloads are type- and length-uniform,
        // and every successful instance staged exactly one entry.
        let leading_var = match decl.dims.first() {
            Some(IndexSel::Var(v)) => Some(v.0 as usize),
            _ => None,
        };
        let mergeable = leading_var.is_some()
            && !decl.dims[1..]
                .iter()
                .any(|d| matches!(d, IndexSel::Var(_)))
            && entries
                .iter()
                .all(|(_, st)| st.region.is_none() && st.age.is_none() && st.buffer.shape().ndim() == 1)
            && entries.windows(2).all(|w| {
                w[0].1.buffer.scalar_type() == w[1].1.buffer.scalar_type()
                    && w[0].1.buffer.len() == w[1].1.buffer.len()
            })
            && entries.len() == ok_instances
            && entries.len() >= 2;
        let apply_scalar = |run: &[(usize, StagedStore)], stored_any: &mut bool| {
            for (i, st) in run {
                apply_store_for(
                    shared,
                    kernel,
                    kspec,
                    unit.age,
                    &unit.instances[*i],
                    st,
                    false,
                    stored_any,
                )?;
            }
            Ok::<(), RuntimeError>(())
        };
        let applied = if mergeable {
            let j = leading_var.expect("checked by mergeable");
            let mut entries = entries;
            entries.sort_by_key(|(i, _)| unit.instances[*i][j]);
            // Split into maximal runs of consecutive instance coordinates
            // and land each run as one range store.
            let mut result = Ok(());
            let mut run_start = 0usize;
            for e in 1..=entries.len() {
                let boundary = e == entries.len()
                    || unit.instances[entries[e].0][j] != unit.instances[entries[e - 1].0][j] + 1;
                if !boundary {
                    continue;
                }
                let run = &entries[run_start..e];
                run_start = e;
                result = if run.len() >= 2 {
                    apply_store_merged(
                        shared,
                        kernel,
                        kspec,
                        unit.age,
                        &unit.instances,
                        j,
                        sidx,
                        run,
                        &mut stored_any,
                    )
                } else {
                    apply_scalar(run, &mut stored_any)
                };
                if result.is_err() {
                    break;
                }
            }
            result
        } else {
            apply_scalar(&entries, &mut stored_any)
        };
        if let Err(err) = applied {
            shared.fail(err);
            shared.release_outstanding();
            return;
        }
    }

    // Fault policy, per failed instance: retryable failures batch into
    // one delayed retry unit (which is not batch-eligible, so its replay
    // runs scalar and stores idempotently); exhausted ones abort or
    // poison. Poison is per instance — only the failed instance's
    // downstream dependents are quarantined.
    let mut failed: Vec<Vec<usize>> = Vec::new();
    for (i, message) in failures {
        shared.instruments.record_failure(kernel);
        if unit.attempt < policy.retries {
            failed.push(unit.instances[i].clone());
        } else {
            match policy.on_exhaust {
                ExhaustPolicy::Abort => {
                    shared.fail(RuntimeError::Kernel {
                        kernel: kspec.name.clone(),
                        message,
                    });
                    shared.release_outstanding();
                    return;
                }
                ExhaustPolicy::Poison => {
                    shared.poisoned.store(true, Ordering::SeqCst);
                    shared.send_event(Event::KernelFailure {
                        kernel,
                        age: unit.age,
                        indices: unit.instances[i].clone(),
                        message,
                    });
                }
            }
        }
    }

    let dispatch_time = t_unit.elapsed().saturating_sub(body_time);
    shared
        .instruments
        .record_unit(kernel, n as u64, dispatch_time, body_time);
    shared.instruments.record_batched(n as u64);

    let retried = !failed.is_empty();
    if retried {
        shared.trace(|| TraceEvent::RetryScheduled {
            kernel,
            age: unit.age.0,
            instances: failed.len(),
            attempt: unit.attempt + 1,
            budget: policy.retries,
        });
        shared
            .instruments
            .record_retries(kernel, failed.len() as u64);
        let salt = retry_salt(&unit, &failed);
        let due = Instant::now() + policy.backoff_for(unit.attempt, salt);
        let retry = DispatchUnit {
            kernel,
            age: unit.age,
            instances: failed,
            attempt: unit.attempt + 1,
            prior_stored: stored_any,
        };
        shared.outstanding.fetch_add(1, Ordering::SeqCst);
        shared
            .watchdog
            .as_ref()
            .expect("watchdog runs whenever retries are configured")
            .schedule_retry(retry, due);
    }

    shared.send_event(Event::UnitDone {
        kernel,
        age: unit.age,
        instances: ok_instances,
        stored_any,
        retried,
    });
    shared.release_outstanding();
}

/// Run a unit's kernel bodies back-to-back inside as few `catch_unwind`
/// frames as possible: one frame covers every remaining instance, and a
/// panic fails only the body that raised it — the frame's completed
/// outcomes persist and the next frame resumes right after the panicking
/// instance, so successful bodies never re-run.
fn run_bodies_segmented(
    shared: &Arc<Shared>,
    kernel: KernelId,
    age: Age,
    instances: &[Vec<usize>],
    inputs: &mut [Vec<Buffer>],
    body_time: &mut Duration,
) -> Vec<Result<Vec<StagedStore>, String>> {
    let kspec = shared.spec.kernel(kernel);
    let body = shared.bodies[kernel.idx()]
        .as_ref()
        .expect("bodies checked before run");
    let n = instances.len();
    let mut outcomes: Vec<Result<Vec<StagedStore>, String>> = Vec::with_capacity(n);
    while outcomes.len() < n {
        // Set before each body invocation so a panic's partial runtime
        // still lands in the instruments.
        let mut last_start: Option<Instant> = None;
        IN_KERNEL.with(|c| c.set(true));
        let segment = {
            let outcomes = &mut outcomes;
            let inputs = &mut *inputs;
            let body_time = &mut *body_time;
            let last_start = &mut last_start;
            std::panic::catch_unwind(AssertUnwindSafe(move || {
                while outcomes.len() < n {
                    let i = outcomes.len();
                    let indices = &instances[i];
                    shared.trace(|| TraceEvent::BodyStart {
                        kernel,
                        age: age.0,
                        indices: indices.clone(),
                        attempt: 0,
                    });
                    let mut ctx = KernelCtx {
                        spec: kspec,
                        age,
                        indices,
                        inputs: std::mem::take(&mut inputs[i]),
                        staged: Vec::new(),
                        timers: &shared.timers,
                        cancel: None,
                    };
                    *last_start = Some(Instant::now());
                    let result = body(&mut ctx);
                    let elapsed = last_start.take().expect("set above").elapsed();
                    *body_time += elapsed;
                    shared.instruments.record_latency(kernel, elapsed);
                    shared.trace(|| TraceEvent::BodyEnd {
                        kernel,
                        age: age.0,
                        indices: indices.clone(),
                        attempt: 0,
                        ok: result.is_ok(),
                    });
                    outcomes.push(match result {
                        Ok(()) => Ok(std::mem::take(&mut ctx.staged)),
                        Err(e) => Err(e),
                    });
                }
            }))
        };
        IN_KERNEL.with(|c| c.set(false));
        if let Err(payload) = segment {
            // The panicking body is the first without an outcome; its
            // staging died with the unwound ctx.
            let indices = &instances[outcomes.len()];
            if let Some(t) = last_start {
                let elapsed = t.elapsed();
                *body_time += elapsed;
                shared.instruments.record_latency(kernel, elapsed);
            }
            shared.trace(|| TraceEvent::BodyEnd {
                kernel,
                age: age.0,
                indices: indices.clone(),
                attempt: 0,
                ok: false,
            });
            outcomes.push(Err(format!("panic: {}", panic_message(payload.as_ref()))));
        }
    }
    outcomes
}

/// Apply one merged range store: a maximal run of consecutive instances'
/// 1-D stores into the same declaration lands as one write-lock
/// acquisition, one concatenated payload, and one store event whose
/// region's leading dimension is the run's range. Row-major region
/// enumeration makes the concatenation order (ascending instance
/// coordinate) exactly the flattened element order.
#[allow(clippy::too_many_arguments)]
fn apply_store_merged(
    shared: &Arc<Shared>,
    kernel: KernelId,
    kspec: &p2g_graph::spec::KernelSpec,
    age: Age,
    instances: &[Vec<usize>],
    j: usize,
    sidx: usize,
    run: &[(usize, StagedStore)],
    stored_any: &mut bool,
) -> Result<(), RuntimeError> {
    use p2g_field::DimSel;
    let decl = &kspec.stores[sidx];
    let target_age = decl.age.resolve(age);
    let mut region = crate::program::resolve_region(&decl.dims, &instances[run[0].0]);
    region.0[0] = DimSel::Range {
        start: instances[run[0].0][j],
        len: run.len(),
    };
    let payload = Buffer::concat(run.iter().map(|(_, st)| &st.buffer))?;
    let (outcome, region, extents) = {
        let mut field = shared.fields[decl.field.idx()].write();
        // Batched units are first attempts with dedup ruled out by
        // eligibility, so the strict write-once store applies.
        let outcome = field.store(target_age, &region, &payload)?;
        let extents = field
            .extents(target_age)
            .cloned()
            .expect("age resident after store");
        let resolved = region.resolved_against(&extents);
        (outcome, resolved, extents)
    };
    *stored_any = true;
    shared.trace(|| {
        store_event(
            Some(kernel),
            decl.field,
            target_age,
            region.clone(),
            outcome.stored,
            outcome.deduped,
            outcome.age_complete,
        )
    });
    shared
        .instruments
        .record_store(kernel, decl.field, outcome.stored as u64);
    if outcome.deduped > 0 {
        shared.instruments.record_deduped(outcome.deduped as u64);
    }
    if let Some(tap) = &shared.store_tap {
        tap(decl.field, target_age, &region, &payload);
    }
    // A merged region spans several points, so the inline fast path
    // (single-point stores only) never applies here.
    shared.send_event(Event::Store(StoreEvent {
        field: decl.field,
        age: target_age,
        region,
        extents,
        elements: outcome.stored,
        age_complete: outcome.age_complete,
        resized: outcome.resized,
        inline_dispatched: None,
    }));
    Ok(())
}

/// Invoke a kernel body inside `catch_unwind`: a panic is contained to
/// this instance and reported as a body failure. The staged stores of a
/// failed body are discarded by the caller (the `KernelCtx` holds them),
/// so a panicking instance leaves no partial writes behind.
fn invoke_body(body: &KernelBody, ctx: &mut KernelCtx) -> Result<(), String> {
    IN_KERNEL.with(|c| c.set(true));
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| body(ctx)));
    IN_KERNEL.with(|c| c.set(false));
    match result {
        Ok(r) => r,
        Err(payload) => Err(format!("panic: {}", panic_message(payload.as_ref()))),
    }
}

/// Execute one kernel instance (and its fused consumer, if any). Returns
/// whether any store was performed.
fn run_instance(
    shared: &Arc<Shared>,
    kernel: KernelId,
    age: Age,
    indices: &[usize],
    attempt: u32,
    cancel: Option<&AtomicBool>,
    body_time: &mut Duration,
) -> Result<bool, InstanceError> {
    let kspec = shared.spec.kernel(kernel);
    // A retry may re-apply stores an earlier attempt already landed (a
    // fused consumer can fail after the producer stores applied), so
    // attempts > 0 store idempotently.
    let idempotent = attempt > 0;

    // Assemble fetch buffers (copies — workers never hold field locks
    // while running kernel code).
    let mut inputs = Vec::with_capacity(kspec.fetches.len());
    for fe in &kspec.fetches {
        let fa = fe.age.resolve(age);
        let region = crate::program::resolve_region(&fe.dims, indices);
        let buf = shared.fields[fe.field.idx()].read().fetch(fa, &region)?;
        inputs.push(buf);
    }

    let mut ctx = KernelCtx {
        spec: kspec,
        age,
        indices,
        inputs,
        staged: Vec::new(),
        timers: &shared.timers,
        cancel,
    };
    let body = shared.bodies[kernel.idx()]
        .as_ref()
        .expect("bodies checked before run");
    shared.trace(|| TraceEvent::BodyStart {
        kernel,
        age: age.0,
        indices: indices.to_vec(),
        attempt,
    });
    let t_body = Instant::now();
    let body_result = invoke_body(body, &mut ctx);
    let body_elapsed = t_body.elapsed();
    *body_time += body_elapsed;
    shared.instruments.record_latency(kernel, body_elapsed);
    shared.trace(|| TraceEvent::BodyEnd {
        kernel,
        age: age.0,
        indices: indices.to_vec(),
        attempt,
        ok: body_result.is_ok(),
    });
    // Body failure (Err or contained panic): the staged stores die with
    // the ctx — nothing was applied to any field.
    body_result.map_err(InstanceError::Body)?;

    let staged = std::mem::take(&mut ctx.staged);
    let fusion = shared.fusions.iter().find(|f| f.producer == kernel);
    let mut stored_any = false;

    for st in &staged {
        let elide = fusion.is_some_and(|f| f.elide_store && f.producer_store == st.store_idx);
        if !elide {
            apply_store(
                shared,
                kernel,
                age,
                indices,
                st,
                idempotent,
                &mut stored_any,
            )?;
        } else {
            stored_any = true;
        }
    }

    // Fused consumer: run inline on the producer's staged output.
    if let Some(plan) = fusion {
        for st in &staged {
            if st.store_idx != plan.producer_store {
                continue;
            }
            let cspec = shared.spec.kernel(plan.consumer);
            // The consumer's index variables take the values selected by
            // the producer's store pattern at the Var positions.
            let decl = &kspec.stores[st.store_idx];
            let fe = &cspec.fetches[0];
            let mut cidx = vec![0usize; cspec.index_vars as usize];
            for (sel_p, sel_c) in decl.dims.iter().zip(&fe.dims) {
                if let (p2g_graph::spec::IndexSel::Var(pv), p2g_graph::spec::IndexSel::Var(cv)) =
                    (sel_p, sel_c)
                {
                    cidx[cv.0 as usize] = indices[pv.0 as usize];
                }
            }
            let mut cctx = KernelCtx {
                spec: cspec,
                age,
                indices: &cidx,
                inputs: vec![st.buffer.clone()],
                staged: Vec::new(),
                timers: &shared.timers,
                cancel,
            };
            let cbody = shared.bodies[plan.consumer.idx()]
                .as_ref()
                .expect("bodies checked before run");
            shared.trace(|| TraceEvent::BodyStart {
                kernel: plan.consumer,
                age: age.0,
                indices: cidx.clone(),
                attempt,
            });
            let t_body = Instant::now();
            let cresult = invoke_body(cbody, &mut cctx);
            let c_elapsed = t_body.elapsed();
            *body_time += c_elapsed;
            shared.instruments.record_latency(plan.consumer, c_elapsed);
            shared.trace(|| TraceEvent::BodyEnd {
                kernel: plan.consumer,
                age: age.0,
                indices: cidx.clone(),
                attempt,
                ok: cresult.is_ok(),
            });
            cresult.map_err(InstanceError::Body)?;
            let cstaged = std::mem::take(&mut cctx.staged);
            for cst in &cstaged {
                apply_store_for(
                    shared,
                    plan.consumer,
                    cspec,
                    age,
                    &cidx,
                    cst,
                    idempotent,
                    &mut stored_any,
                )?;
            }
            shared
                .instruments
                .record_unit(plan.consumer, 1, Duration::ZERO, Duration::ZERO);
        }
    }

    Ok(stored_any)
}

#[allow(clippy::too_many_arguments)]
fn apply_store(
    shared: &Arc<Shared>,
    kernel: KernelId,
    age: Age,
    indices: &[usize],
    st: &StagedStore,
    idempotent: bool,
    stored_any: &mut bool,
) -> Result<(), RuntimeError> {
    let kspec = shared.spec.kernel(kernel);
    apply_store_for(
        shared, kernel, kspec, age, indices, st, idempotent, stored_any,
    )
}

#[allow(clippy::too_many_arguments)]
fn apply_store_for(
    shared: &Arc<Shared>,
    kernel: KernelId,
    kspec: &p2g_graph::spec::KernelSpec,
    age: Age,
    indices: &[usize],
    st: &StagedStore,
    idempotent: bool,
    stored_any: &mut bool,
) -> Result<(), RuntimeError> {
    let decl = &kspec.stores[st.store_idx];
    let target_age = st.age.unwrap_or_else(|| decl.age.resolve(age));
    let region = match &st.region {
        Some(r) => r.clone(),
        None => crate::program::resolve_region(&decl.dims, indices),
    };
    // Cluster mode stores dedup: recovery re-executes kernels whose data
    // already (partially) exists, and write-once equality makes that a
    // no-op instead of a violation. Single-node mode keeps the strict
    // write-once error, which is a program bug there — except on fault
    // retries, which may legitimately replay stores an earlier attempt
    // already landed.
    //
    // The store event must describe the store relative to the extents at
    // store time (later stores may grow the field before the analyzer
    // observes this event), so the resolved region and post-store extents
    // are captured inside the write lock.
    let (outcome, region, extents) = {
        let mut field = shared.fields[decl.field.idx()].write();
        let outcome = if shared.dedup_stores || idempotent {
            field.store_idempotent(target_age, &region, &st.buffer)?
        } else {
            field.store(target_age, &region, &st.buffer)?
        };
        let extents = field
            .extents(target_age)
            .cloned()
            .expect("age resident after store");
        let resolved = region.resolved_against(&extents);
        (outcome, resolved, extents)
    };
    // An attempted store counts for source sequencing even when fully
    // deduped — the re-executed source must keep advancing its ages.
    *stored_any = true;
    // Recorded before the store event is sent, so the trace's StoreApplied
    // happens-before any dispatch the analyzer derives from it.
    shared.trace(|| {
        store_event(
            Some(kernel),
            decl.field,
            target_age,
            region.clone(),
            outcome.stored,
            outcome.deduped,
            outcome.age_complete,
        )
    });
    shared
        .instruments
        .record_store(kernel, decl.field, outcome.stored as u64);
    if outcome.deduped > 0 {
        shared.instruments.record_deduped(outcome.deduped as u64);
    }
    // Forward even fully-deduped stores: subscribers may have missed the
    // original producer's forward, and their replicas dedup in turn.
    if let Some(tap) = &shared.store_tap {
        tap(decl.field, target_age, &region, &st.buffer);
    }
    // Inline fast path: a fresh single-point store into a field with a
    // pointwise single-fetch consumer proves exactly one instance ready —
    // dispatch it from this worker and tag the store event so the owning
    // analyzer shard reconciles instead of re-dispatching, keeping the
    // analyzer round trip off the dispatch critical path.
    let mut inline: Option<(KernelId, Age, Vec<usize>)> = None;
    if let Some(plan) = &shared.inline[decl.field.idx()] {
        if !idempotent && outcome.deduped == 0 && !shared.poisoned.load(Ordering::SeqCst) {
            let ca = target_age.0 as i64 - plan.t;
            if ca >= 0 && plan.max_ages.is_none_or(|m| (ca as u64) < m) {
                if let Ok(spans) = region.resolve(&extents) {
                    if spans.iter().all(|&(_, len)| len == 1) {
                        let mut cidx = vec![0usize; plan.index_vars];
                        for (d, &(start, _)) in spans.iter().enumerate() {
                            cidx[plan.var_of_dim[d]] = start;
                        }
                        inline = Some((plan.consumer, Age(ca as u64), cidx));
                    }
                }
            }
        }
    }
    // The tagged store event is sent before the inline unit is dispatched,
    // so the owning shard observes the tag ahead of any event the unit
    // itself produces.
    shared.send_event(Event::Store(StoreEvent {
        field: decl.field,
        age: target_age,
        region,
        extents,
        elements: outcome.stored,
        age_complete: outcome.age_complete,
        resized: outcome.resized,
        inline_dispatched: inline.as_ref().map(|(consumer, _, _)| *consumer),
    }));
    if let Some((consumer, cage, cidx)) = inline {
        shared.trace(|| TraceEvent::InstanceDispatched {
            kernel: consumer,
            age: cage.0,
            indices: cidx.clone(),
        });
        shared.instruments.record_inline_dispatch();
        shared.outstanding.fetch_add(1, Ordering::SeqCst);
        shared.dispatch(DispatchUnit {
            kernel: consumer,
            age: cage,
            instances: vec![cidx],
            attempt: 0,
            prior_stored: false,
        });
    }
    Ok(())
}

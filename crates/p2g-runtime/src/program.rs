//! Executable programs: a validated [`ProgramSpec`] plus kernel bodies.
//!
//! Kernel bodies are plain Rust closures — the substitution for the paper's
//! embedded C/C++ native blocks (the kernel-language crate additionally
//! provides an interpreter that wraps interpreted native blocks in this same
//! closure form). A body receives a [`KernelCtx`] with its prefetched input
//! buffers and stages stores; it never touches fields directly, which is
//! what preserves the write-once discipline.

use std::sync::Arc;
use std::time::Duration;

use p2g_field::{Age, Buffer, Region, Value};
use p2g_graph::spec::{AgeExpr, IndexSel, KernelSpec};
use p2g_graph::{KernelId, ProgramSpec};

use crate::error::RuntimeError;
use crate::options::{FaultPolicy, KernelOptions};
use crate::timer::TimerTable;

/// What a kernel body returns: `Err` aborts the run with a kernel failure.
pub type BodyResult = Result<(), String>;

/// A kernel body closure.
pub type KernelBody = Box<dyn Fn(&mut KernelCtx) -> BodyResult + Send + Sync>;

/// A batch kernel body closure: executes a whole dispatch unit's worth of
/// instances in one call (see [`BatchCtx`]).
pub type BatchKernelBody = Box<dyn Fn(&mut BatchCtx) -> BodyResult + Send + Sync>;

/// A store staged by a kernel body, applied by the worker after the body
/// returns.
#[derive(Debug)]
pub struct StagedStore {
    /// Which of the kernel's store declarations this fulfils.
    pub store_idx: usize,
    /// Explicit target region (absolute field coordinates) for
    /// data-dependent stores; `None` resolves the declaration's index
    /// pattern against the instance's index variables.
    pub region: Option<Region>,
    /// Explicit age override for data-dependent ages (rare); `None`
    /// resolves the declaration's age expression.
    pub age: Option<Age>,
    pub buffer: Buffer,
}

/// The execution context handed to a kernel body: one kernel instance's
/// view of the world.
pub struct KernelCtx<'a> {
    pub(crate) spec: &'a KernelSpec,
    pub(crate) age: Age,
    pub(crate) indices: &'a [usize],
    pub(crate) inputs: Vec<Buffer>,
    pub(crate) staged: Vec<StagedStore>,
    pub(crate) timers: &'a TimerTable,
    /// Cooperative cancellation token, set by the watchdog thread when the
    /// instance overruns its fault-policy soft deadline. `None` when the
    /// kernel has no deadline configured.
    pub(crate) cancel: Option<&'a std::sync::atomic::AtomicBool>,
}

impl KernelCtx<'_> {
    /// The instance's age (0 for kernels without an age variable).
    pub fn age(&self) -> Age {
        self.age
    }

    /// The kernel definition's name (useful in shared bodies and logs).
    pub fn kernel_name(&self) -> &str {
        &self.spec.name
    }

    /// The value of index variable `v`.
    pub fn index(&self, v: usize) -> usize {
        self.indices[v]
    }

    /// The fetched buffer for the kernel's `i`-th fetch declaration.
    pub fn input(&self, i: usize) -> &Buffer {
        &self.inputs[i]
    }

    /// Number of fetch declarations / input buffers.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Take ownership of an input buffer (useful to mutate in place and
    /// store back out without a copy).
    pub fn take_input(&mut self, i: usize) -> Buffer {
        std::mem::replace(&mut self.inputs[i], Buffer::from_vec(Vec::<u8>::new()))
    }

    /// Stage a store fulfilling store declaration `store_idx`; the target
    /// region comes from the declaration's index pattern and this
    /// instance's index variables.
    pub fn store(&mut self, store_idx: usize, buffer: Buffer) {
        self.staged.push(StagedStore {
            store_idx,
            region: None,
            age: None,
            buffer,
        });
    }

    /// Stage a single-element store through the declaration's pattern.
    pub fn store_value(&mut self, store_idx: usize, value: Value) {
        self.store(store_idx, Buffer::scalar(value));
    }

    /// Stage a store to an explicit region of the declared field — for
    /// data-dependent target indices (the k-means `assign` kernel stores to
    /// the cluster chosen at runtime).
    pub fn store_region(&mut self, store_idx: usize, region: Region, buffer: Buffer) {
        self.staged.push(StagedStore {
            store_idx,
            region: Some(region),
            age: None,
            buffer,
        });
    }

    /// Poll a deadline: has `timeout` passed since timer `name` was reset?
    pub fn deadline_expired(&self, name: &str, timeout: Duration) -> bool {
        self.timers.expired(name, timeout)
    }

    /// Reset a global timer (`t1 = now`).
    pub fn reset_timer(&self, name: &str) {
        self.timers.reset(name);
    }

    /// Elapsed time since a timer was reset.
    pub fn timer_elapsed(&self, name: &str) -> Option<Duration> {
        self.timers.elapsed(name)
    }

    /// Cooperative cancellation poll: true once the watchdog has flagged
    /// this instance past its [`crate::options::FaultPolicy`] soft
    /// deadline. Long-running bodies should poll this and return `Err` to
    /// yield the worker; the failure then follows the kernel's normal
    /// retry/exhaustion path. Always false for kernels without a deadline.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
            .unwrap_or(false)
    }
}

/// The execution context for a [`BatchKernelBody`]: every instance of one
/// dispatch unit (same kernel, same age) at once, so the body can hoist
/// per-unit setup (quantization tables, lookup tables) out of the
/// per-instance loop and process instances back-to-back with warm caches.
///
/// Contract: batch bodies must be pure with respect to staged stores —
/// when a batch body returns `Err` or panics, the runtime falls back to
/// running the per-instance body for every instance of the unit, so any
/// partial staging is discarded, never applied.
pub struct BatchCtx<'a> {
    pub(crate) spec: &'a KernelSpec,
    pub(crate) age: Age,
    pub(crate) instances: &'a [Vec<usize>],
    /// `inputs[instance][fetch]`.
    pub(crate) inputs: &'a [Vec<Buffer>],
    /// `staged[instance]` — stores staged for each instance.
    pub(crate) staged: Vec<Vec<StagedStore>>,
    pub(crate) timers: &'a TimerTable,
}

impl BatchCtx<'_> {
    /// Number of instances in the unit.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the unit holds no instances (never happens in practice;
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The unit's age (shared by every instance).
    pub fn age(&self) -> Age {
        self.age
    }

    /// The kernel definition's name.
    pub fn kernel_name(&self) -> &str {
        &self.spec.name
    }

    /// Index-variable values of instance `i`.
    pub fn indices(&self, i: usize) -> &[usize] {
        &self.instances[i]
    }

    /// The fetched buffer for instance `i`'s `fetch`-th fetch declaration.
    pub fn input(&self, i: usize, fetch: usize) -> &Buffer {
        &self.inputs[i][fetch]
    }

    /// Stage a store for instance `i` through store declaration
    /// `store_idx`'s index pattern.
    pub fn store(&mut self, i: usize, store_idx: usize, buffer: Buffer) {
        self.staged[i].push(StagedStore {
            store_idx,
            region: None,
            age: None,
            buffer,
        });
    }

    /// Elapsed time since a timer was reset.
    pub fn timer_elapsed(&self, name: &str) -> Option<Duration> {
        self.timers.elapsed(name)
    }
}

/// How a fused consumer kernel is executed inline after its producer.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    pub producer: KernelId,
    pub consumer: KernelId,
    /// Index of the producer's store declaration feeding the consumer.
    pub producer_store: usize,
    /// Whether the intermediate field store can be elided entirely (no
    /// other consumer fetches it — paper Figure 4's "if print was not
    /// present, storing to m_data could be circumvented").
    pub elide_store: bool,
}

/// A runnable P2G program: spec + bodies + per-kernel options + timers.
pub struct Program {
    pub(crate) spec: Arc<ProgramSpec>,
    pub(crate) bodies: Vec<Option<KernelBody>>,
    pub(crate) batch_bodies: Vec<Option<BatchKernelBody>>,
    pub(crate) options: Vec<KernelOptions>,
    pub(crate) fusions: Vec<FusionPlan>,
    pub(crate) timers: Arc<TimerTable>,
}

impl Program {
    /// Wrap a validated spec. Fails when the spec is invalid.
    pub fn new(spec: ProgramSpec) -> Result<Program, RuntimeError> {
        spec.validate()?;
        let n = spec.kernels.len();
        Ok(Program {
            spec: Arc::new(spec),
            bodies: (0..n).map(|_| None).collect(),
            batch_bodies: (0..n).map(|_| None).collect(),
            options: vec![KernelOptions::default(); n],
            fusions: Vec::new(),
            timers: Arc::new(TimerTable::new()),
        })
    }

    /// The underlying spec.
    pub fn spec(&self) -> &ProgramSpec {
        &self.spec
    }

    /// The program's timer table (declare timers before running).
    pub fn timers(&self) -> &Arc<TimerTable> {
        &self.timers
    }

    /// Register a body for a kernel by name. Panics on unknown names —
    /// that is a programming error, not a runtime condition.
    pub fn body<F>(&mut self, kernel: &str, f: F) -> &mut Program
    where
        F: Fn(&mut KernelCtx) -> BodyResult + Send + Sync + 'static,
    {
        let id = self
            .spec
            .kernel_by_name(kernel)
            .unwrap_or_else(|| panic!("unknown kernel '{kernel}'"));
        self.bodies[id.idx()] = Some(Box::new(f));
        self
    }

    /// Register a body by kernel id.
    pub fn body_id<F>(&mut self, kernel: KernelId, f: F) -> &mut Program
    where
        F: Fn(&mut KernelCtx) -> BodyResult + Send + Sync + 'static,
    {
        self.bodies[kernel.idx()] = Some(Box::new(f));
        self
    }

    /// Register an optional batch body for a kernel by name. The runtime
    /// uses it opportunistically when batched execution (`--batch`) hands
    /// the worker a multi-instance unit with no retry/fusion/deadline in
    /// play; every kernel still needs a per-instance [`Self::body`] as the
    /// fallback and single-instance path.
    pub fn batch_body<F>(&mut self, kernel: &str, f: F) -> &mut Program
    where
        F: Fn(&mut BatchCtx) -> BodyResult + Send + Sync + 'static,
    {
        let id = self
            .spec
            .kernel_by_name(kernel)
            .unwrap_or_else(|| panic!("unknown kernel '{kernel}'"));
        self.batch_bodies[id.idx()] = Some(Box::new(f));
        self
    }

    /// Register a batch body by kernel id.
    pub fn batch_body_id<F>(&mut self, kernel: KernelId, f: F) -> &mut Program
    where
        F: Fn(&mut BatchCtx) -> BodyResult + Send + Sync + 'static,
    {
        self.batch_bodies[kernel.idx()] = Some(Box::new(f));
        self
    }

    /// Check every kernel has a body.
    pub fn check_bodies(&self) -> Result<(), RuntimeError> {
        for (i, b) in self.bodies.iter().enumerate() {
            if b.is_none() {
                return Err(RuntimeError::MissingBody {
                    kernel: self.spec.kernels[i].name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Mutable access to a kernel's scheduler options.
    pub fn options_mut(&mut self, kernel: &str) -> &mut KernelOptions {
        let id = self
            .spec
            .kernel_by_name(kernel)
            .unwrap_or_else(|| panic!("unknown kernel '{kernel}'"));
        &mut self.options[id.idx()]
    }

    /// Set the data-granularity chunk size for a kernel (Figure 4, Age=2).
    pub fn set_chunk_size(&mut self, kernel: &str, chunk: usize) -> &mut Program {
        self.options_mut(kernel).chunk_size = chunk.max(1);
        self
    }

    /// Dispatch a kernel's instances strictly in age order (for kernels
    /// with ordered side effects like bitstream writers).
    pub fn set_ordered(&mut self, kernel: &str) -> &mut Program {
        self.options_mut(kernel).ordered = true;
        self
    }

    /// Set the fault-isolation policy for one kernel.
    pub fn set_fault_policy(&mut self, kernel: &str, policy: FaultPolicy) -> &mut Program {
        self.options_mut(kernel).fault = policy;
        self
    }

    /// Set the same fault-isolation policy on every kernel.
    pub fn set_fault_policy_all(&mut self, policy: FaultPolicy) -> &mut Program {
        for o in &mut self.options {
            o.fault = policy.clone();
        }
        self
    }

    /// Fuse `consumer` to run inline after `producer` (Figure 4, Age=3).
    ///
    /// Requirements (checked): the consumer has exactly one fetch; that
    /// fetch reads a field the producer stores, with the same age
    /// expression and a compatible index pattern. The intermediate store is
    /// elided when no other kernel fetches the field.
    pub fn fuse(&mut self, producer: &str, consumer: &str) -> Result<(), RuntimeError> {
        let pid = self
            .spec
            .kernel_by_name(producer)
            .ok_or_else(|| RuntimeError::MissingBody {
                kernel: producer.into(),
            })?;
        let cid = self
            .spec
            .kernel_by_name(consumer)
            .ok_or_else(|| RuntimeError::MissingBody {
                kernel: consumer.into(),
            })?;
        let c = self.spec.kernel(cid);
        if c.fetches.len() != 1 {
            return Err(RuntimeError::Kernel {
                kernel: consumer.into(),
                message: "fusion requires the consumer to have exactly one fetch".into(),
            });
        }
        let fe = &c.fetches[0];
        let p = self.spec.kernel(pid);
        let (store_idx, st) = p
            .stores
            .iter()
            .enumerate()
            .find(|(_, s)| s.field == fe.field && s.age == fe.age)
            .ok_or_else(|| RuntimeError::Kernel {
                kernel: producer.into(),
                message: "fusion requires a producer store matching the consumer fetch".into(),
            })?;
        let compatible = st.dims.len() == fe.dims.len()
            && st.dims.iter().zip(&fe.dims).all(|(a, b)| match (a, b) {
                (IndexSel::Var(_), IndexSel::Var(_)) => true,
                (IndexSel::All, IndexSel::All) => true,
                (IndexSel::Const(x), IndexSel::Const(y)) => x == y,
                _ => false,
            });
        if !compatible || st.age == AgeExpr::Const(u64::MAX) {
            return Err(RuntimeError::Kernel {
                kernel: consumer.into(),
                message: "fusion requires matching index patterns".into(),
            });
        }
        // Both sides must iterate over the same age space: fusing an aged
        // consumer onto an age-less producer (or vice versa) would pin the
        // consumer to the producer's single age.
        if p.has_age_var != c.has_age_var {
            return Err(RuntimeError::Kernel {
                kernel: consumer.into(),
                message: "fusion requires both kernels to age identically".into(),
            });
        }
        // The intermediate store survives when anyone else fetches it.
        let other_consumers = self
            .spec
            .consumers_of(fe.field)
            .iter()
            .any(|&(k, _)| k != cid);
        self.options[pid.idx()].fuse_consumer = Some(cid);
        self.fusions.push(FusionPlan {
            producer: pid,
            consumer: cid,
            producer_store: store_idx,
            elide_store: !other_consumers,
        });
        Ok(())
    }

    /// The fusion plan where `k` is the producer, if any.
    pub fn fusion_for(&self, k: KernelId) -> Option<&FusionPlan> {
        self.fusions.iter().find(|f| f.producer == k)
    }

    /// True when `k` is a fused consumer (the analyzer must not dispatch
    /// it independently).
    pub fn is_fused_consumer(&self, k: KernelId) -> bool {
        self.fusions.iter().any(|f| f.consumer == k)
    }
}

/// Resolve a fetch/store declaration's index pattern against an instance's
/// index-variable values, yielding the absolute region.
pub fn resolve_region(dims: &[IndexSel], indices: &[usize]) -> Region {
    Region(
        dims.iter()
            .map(|sel| match *sel {
                IndexSel::Var(v) => p2g_field::DimSel::Index(indices[v.0 as usize]),
                IndexSel::Const(c) => p2g_field::DimSel::Index(c),
                IndexSel::All => p2g_field::DimSel::All,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2g_graph::spec::mul_sum_example;

    #[test]
    fn program_builds_from_valid_spec() {
        let p = Program::new(mul_sum_example()).unwrap();
        assert_eq!(p.spec().kernels.len(), 4);
        assert!(p.check_bodies().is_err()); // no bodies yet
    }

    #[test]
    fn body_registration() {
        let mut p = Program::new(mul_sum_example()).unwrap();
        for k in ["init", "mul2", "plus5", "print"] {
            p.body(k, |_| Ok(()));
        }
        p.check_bodies().unwrap();
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn unknown_body_name_panics() {
        let mut p = Program::new(mul_sum_example()).unwrap();
        p.body("nope", |_| Ok(()));
    }

    #[test]
    fn fusion_mul2_plus5() {
        let mut p = Program::new(mul_sum_example()).unwrap();
        p.fuse("mul2", "plus5").unwrap();
        let mul2 = p.spec().kernel_by_name("mul2").unwrap();
        let plus5 = p.spec().kernel_by_name("plus5").unwrap();
        let plan = p.fusion_for(mul2).unwrap();
        assert_eq!(plan.consumer, plus5);
        // print also fetches p_data, so the store cannot be elided.
        assert!(!plan.elide_store);
        assert!(p.is_fused_consumer(plus5));
    }

    #[test]
    fn fusion_rejects_multi_fetch_consumer() {
        let mut p = Program::new(mul_sum_example()).unwrap();
        // print has two fetches.
        assert!(p.fuse("mul2", "print").is_err());
    }

    #[test]
    fn fusion_rejects_unrelated_pair() {
        let mut p = Program::new(mul_sum_example()).unwrap();
        // init stores m_data; plus5 fetches p_data: no matching store.
        assert!(p.fuse("init", "plus5").is_err());
    }

    #[test]
    fn resolve_region_substitutes_vars() {
        use p2g_graph::spec::IndexVar;
        let r = resolve_region(
            &[
                IndexSel::Var(IndexVar(1)),
                IndexSel::Const(3),
                IndexSel::All,
            ],
            &[10, 20],
        );
        assert_eq!(
            r,
            Region(vec![
                p2g_field::DimSel::Index(20),
                p2g_field::DimSel::Index(3),
                p2g_field::DimSel::All,
            ])
        );
    }

    #[test]
    fn options_builders() {
        let mut p = Program::new(mul_sum_example()).unwrap();
        p.set_chunk_size("mul2", 5).set_ordered("print");
        let mul2 = p.spec().kernel_by_name("mul2").unwrap();
        let print = p.spec().kernel_by_name("print").unwrap();
        assert_eq!(p.options[mul2.idx()].chunk_size, 5);
        assert!(p.options[print.idx()].ordered);
    }
}

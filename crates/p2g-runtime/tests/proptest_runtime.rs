//! Property tests of the scheduler's core guarantee: determinism — field
//! contents depend only on the program and its inputs, never on worker
//! count, chunk size, or fusion decisions.

use proptest::prelude::*;

use p2g_field::{Age, Buffer, Region};
use p2g_graph::spec::mul_sum_example;
use p2g_runtime::{NodeBuilder, Program, RunLimits};

fn build_program(init_values: Vec<i32>, mul: i32, add: i32) -> Program {
    let mut program = Program::new(mul_sum_example()).unwrap();
    program.body("init", move |ctx| {
        ctx.store(0, Buffer::from_vec(init_values.clone()));
        Ok(())
    });
    program.body("mul2", move |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(mul)]));
        Ok(())
    });
    program.body("plus5", move |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_add(add)]));
        Ok(())
    });
    program.body("print", |_| Ok(()));
    program
}

fn run_fields(program: Program, workers: usize, ages: u64) -> Vec<(u64, Vec<i32>, Vec<i32>)> {
    let (_, fields) = NodeBuilder::new(program)
        .workers(workers)
        .launch(RunLimits::ages(ages))
        .and_then(|n| n.collect())
        .unwrap();
    (0..ages)
        .map(|a| {
            let m = fields
                .fetch("m_data", Age(a), &Region::all(1))
                .map(|b| b.as_i32().unwrap().to_vec())
                .unwrap_or_default();
            let p = fields
                .fetch("p_data", Age(a), &Region::all(1))
                .map(|b| b.as_i32().unwrap().to_vec())
                .unwrap_or_default();
            (a, m, p)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary initial data, multipliers and worker counts: results are
    /// a pure function of the program.
    #[test]
    fn results_independent_of_workers(
        init in prop::collection::vec(-1000i32..1000, 1..12),
        mul in -5i32..5,
        add in -100i32..100,
        workers_a in 1usize..4,
        workers_b in 4usize..9,
        ages in 1u64..4,
    ) {
        let a = run_fields(build_program(init.clone(), mul, add), workers_a, ages);
        let b = run_fields(build_program(init, mul, add), workers_b, ages);
        prop_assert_eq!(a, b);
    }

    /// Chunking and fusion are pure scheduling decisions: any combination
    /// yields the same field contents.
    #[test]
    fn results_independent_of_granularity(
        init in prop::collection::vec(-100i32..100, 2..10),
        chunk in 1usize..8,
        fuse in any::<bool>(),
        ages in 1u64..4,
    ) {
        let reference = run_fields(build_program(init.clone(), 2, 5), 2, ages);
        let mut program = build_program(init, 2, 5);
        program.set_chunk_size("mul2", chunk).set_chunk_size("plus5", chunk);
        if fuse {
            program.fuse("mul2", "plus5").unwrap();
        }
        let got = run_fields(program, 3, ages);
        prop_assert_eq!(got, reference);
    }

    /// The expected values themselves: m(a+1)[i] = mul*m(a)[i] + add,
    /// verified symbolically against the runtime for arbitrary inputs.
    #[test]
    fn pipeline_computes_the_recurrence(
        init in prop::collection::vec(-50i32..50, 1..8),
        ages in 2u64..4,
    ) {
        let got = run_fields(build_program(init.clone(), 2, 5), 2, ages);
        let mut m = init;
        for (a, gm, gp) in got {
            prop_assert_eq!(&gm, &m, "m_data at age {}", a);
            let p: Vec<i32> = m.iter().map(|v| v.wrapping_mul(2)).collect();
            prop_assert_eq!(&gp, &p, "p_data at age {}", a);
            m = p.iter().map(|v| v.wrapping_add(5)).collect();
        }
    }
}

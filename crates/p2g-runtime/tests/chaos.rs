//! Chaos tests of kernel fault isolation: panic containment, retry with
//! backoff, deadline flagging, and poison-propagating graceful degradation.
//!
//! The property at the core: under random kernel panics and slow instances
//! every run *terminates* (no hangs), the poisoned-instance set exactly
//! matches the transitive dependents of the failed stores (checked against
//! an oracle over the static graph), and with retries enabled and
//! deterministic bodies the final field contents are identical to the
//! fault-free run.

use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use p2g_field::{Age, Buffer, Extents, FieldDef, Region, ScalarType};
use p2g_graph::spec::{
    mul_sum_example, AgeExpr, FetchDecl, IndexSel, IndexVar, KernelSpec, StoreDecl,
};
use p2g_graph::KernelId;
use p2g_runtime::{FaultPolicy, NodeBuilder, Program, RunLimits, Termination};

/// Hang guard for every run in this file: a run that blows this deadline
/// terminates `DeadlineExpired`, which the assertions below reject — so a
/// genuine hang fails the test instead of wedging the suite.
const WALL: Duration = Duration::from_secs(20);

fn fast_retries(n: u32) -> FaultPolicy {
    FaultPolicy::retries(n).with_backoff(Duration::from_millis(1), Duration::from_millis(5))
}

// ---------------------------------------------------------------------------
// Satellite: a panicking kernel body must abort the run, not hang it.
// Before panic containment the panicking worker leaked the unit's
// outstanding-work count, so the node never observed quiescence and `wait`
// blocked until the wall deadline (or forever without one).
// ---------------------------------------------------------------------------

#[test]
fn panicking_body_aborts_run_not_hangs() {
    let mut program = Program::new(mul_sum_example()).unwrap();
    program.body("init", |ctx| {
        ctx.store(0, Buffer::from_vec(vec![1i32, 2, 3]));
        Ok(())
    });
    program.body("mul2", |_ctx| -> Result<(), String> {
        panic!("chaos: kernel body panic");
    });
    program.body("plus5", |_| Ok(()));
    program.body("print", |_| Ok(()));

    let start = std::time::Instant::now();
    let result = NodeBuilder::new(program)
        .workers(2)
        .launch(RunLimits::ages(3).with_deadline(WALL))
        .unwrap()
        .wait();
    // Default fault policy: fail fast. The panic is contained, converted
    // into a kernel failure, and the run aborts with an error — well
    // before the wall deadline.
    let err = result.expect_err("a panicking body must abort the run");
    assert!(
        err.to_string().contains("panic"),
        "abort should carry the panic message, got: {err}"
    );
    assert!(
        start.elapsed() < WALL,
        "run must abort promptly, not sit on the wall deadline"
    );
}

#[test]
fn body_error_aborts_whole_unit_cleanly() {
    // Same guarantee for plain Err returns, including when other instances
    // of the same kernel succeed first.
    let mut program = Program::new(mul_sum_example()).unwrap();
    program.body("init", |ctx| {
        ctx.store(0, Buffer::from_vec((0..8).collect::<Vec<i32>>()));
        Ok(())
    });
    program.body("mul2", |ctx| {
        if ctx.index(0) == 5 {
            return Err("chaos: instance 5 fails".into());
        }
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v * 2]));
        Ok(())
    });
    program.body("plus5", |_| Ok(()));
    program.body("print", |_| Ok(()));

    let result = NodeBuilder::new(program)
        .workers(3)
        .launch(RunLimits::ages(2).with_deadline(WALL))
        .unwrap()
        .wait();
    assert!(result.is_err(), "body error must abort under Abort policy");
}

// ---------------------------------------------------------------------------
// Retry with backoff: transient failures are retried to success and the
// final field contents equal the fault-free run.
// ---------------------------------------------------------------------------

fn mul_sum_program(n: usize) -> Program {
    let mut program = Program::new(mul_sum_example()).unwrap();
    let init: Vec<i32> = (0..n as i32).collect();
    program.body("init", move |ctx| {
        ctx.store(0, Buffer::from_vec(init.clone()));
        Ok(())
    });
    program.body("mul2", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.body("plus5", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_add(5)]));
        Ok(())
    });
    program.body("print", |_| Ok(()));
    program
}

fn m_data_at(fields: &p2g_runtime::FieldStore, ages: u64) -> Vec<Vec<i32>> {
    (0..ages)
        .map(|a| {
            fields
                .fetch("m_data", Age(a), &Region::all(1))
                .map(|b| b.as_i32().unwrap().to_vec())
                .unwrap_or_default()
        })
        .collect()
}

#[test]
fn transient_failures_retried_to_identical_result() {
    let ages = 3u64;
    // Fault-free reference.
    let (_, reference) = NodeBuilder::new(mul_sum_program(6))
        .workers(2)
        .launch(RunLimits::ages(ages).with_deadline(WALL))
        .and_then(|n| n.collect())
        .unwrap();
    let reference = m_data_at(&reference, ages);

    // Same program, but mul2 fails the first execution of every third
    // instance (by panic and by Err, alternating) and succeeds on retry.
    let mut program = mul_sum_program(6);
    let failed_once: Arc<Mutex<HashSet<(u64, usize)>>> = Arc::new(Mutex::new(HashSet::new()));
    let injected = failed_once.clone();
    program.body("mul2", move |ctx| {
        let key = (ctx.age().0, ctx.index(0));
        if key.1 % 3 == 0 && injected.lock().unwrap().insert(key) {
            if key.1.is_multiple_of(2) {
                panic!("chaos: transient panic at {key:?}");
            }
            return Err(format!("chaos: transient failure at {key:?}"));
        }
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.set_fault_policy("mul2", fast_retries(3));

    let (report, fields) = NodeBuilder::new(program)
        .workers(3)
        .launch(RunLimits::ages(ages).with_deadline(WALL).with_trace())
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(report.termination, Termination::Quiescent);
    p2g_runtime::trace_check::all(&report);
    assert!(
        report.instruments.total_retries() > 0,
        "the injected failures must have gone through the retry path"
    );
    assert!(report.instruments.total_failures() > 0);
    assert_eq!(
        m_data_at(&fields, ages),
        reference,
        "retried run must converge to the fault-free result"
    );
}

// ---------------------------------------------------------------------------
// Poison: a permanently failing instance inside an aging cycle degrades
// exactly its transitive dependents; unrelated lanes keep flowing.
// ---------------------------------------------------------------------------

#[test]
fn permanent_failure_degrades_only_dependents() {
    let ages = 3u64;
    let mut program = mul_sum_program(3);
    // mul2 at age 1, lane 0 fails every attempt.
    program.body("mul2", |ctx| {
        if ctx.age().0 == 1 && ctx.index(0) == 0 {
            return Err("chaos: permanent failure".into());
        }
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.set_fault_policy_all(fast_retries(1).poison());

    let (report, fields) = NodeBuilder::new(program)
        .workers(2)
        .launch(RunLimits::ages(ages).with_deadline(WALL))
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(report.termination, Termination::Degraded);

    let poisoned: BTreeSet<(String, u64, Vec<usize>)> = report
        .instruments
        .poisoned_instances()
        .iter()
        .flat_map(|((k, a), idxs)| idxs.iter().map(move |idx| (k.clone(), *a, idx.clone())))
        .collect();
    // The cascade: mul2@1[0] → plus5@1[0] (p_data(1)[0] missing) →
    // mul2@2[0] (m_data(2)[0] missing), and the whole-field print at ages
    // 1 and 2. plus5@2[0] follows from mul2@2[0].
    for expect in [
        ("mul2".to_string(), 1, vec![0usize]),
        ("plus5".to_string(), 1, vec![0usize]),
        ("mul2".to_string(), 2, vec![0usize]),
        ("plus5".to_string(), 2, vec![0usize]),
        ("print".to_string(), 1, vec![]),
        ("print".to_string(), 2, vec![]),
    ] {
        assert!(poisoned.contains(&expect), "missing poisoned {expect:?}");
    }
    // Lane 0 stops at the failure; the other lanes flow through every age.
    assert!(fields.fetch_element("m_data", Age(2), &[0]).is_none());
    let v1 = fields
        .fetch_element("m_data", Age(2), &[1])
        .expect("unrelated lane must keep flowing");
    // lane 1: ((1*2+5)*2+5) = 19.
    assert_eq!(v1.as_i64(), 19);
    // Exactly-one retry was attempted before exhaustion.
    assert!(report.instruments.total_retries() >= 1);
}

// ---------------------------------------------------------------------------
// Deadline watchdog: an overrunning instance is flagged through the
// cooperative token, recorded as a deadline miss, and (here) poisoned.
// ---------------------------------------------------------------------------

#[test]
fn deadline_flags_and_degrades_overrunning_instance() {
    let mut program = mul_sum_program(3);
    let saw_cancel = Arc::new(AtomicBool::new(false));
    let saw = saw_cancel.clone();
    program.body("mul2", move |ctx| {
        if ctx.age().0 == 0 && ctx.index(0) == 1 {
            // Overrun the soft deadline, bail out when flagged.
            while !ctx.cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            saw.store(true, Ordering::Relaxed);
            return Err("chaos: cancelled by deadline".into());
        }
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.set_fault_policy(
        "mul2",
        FaultPolicy::retries(0)
            .poison()
            .with_deadline(Duration::from_millis(20)),
    );

    let (report, _) = NodeBuilder::new(program)
        .workers(2)
        .launch(RunLimits::ages(2).with_deadline(WALL).with_trace())
        .and_then(|n| n.collect())
        .unwrap();
    assert!(saw_cancel.load(Ordering::Relaxed), "token must be flagged");
    assert_eq!(report.termination, Termination::Degraded);
    p2g_runtime::trace_check::all(&report);
    assert!(report.instruments.total_deadline_misses() >= 1);
    assert!(report.instruments.total_poisoned() >= 1);
    // The watchdog traced the miss with the overrunning instance identity.
    let trace = report.trace.as_ref().unwrap();
    assert!(
        trace.of_kind("DeadlineMiss").count() >= 1,
        "deadline miss must appear in the trace"
    );
}

// ---------------------------------------------------------------------------
// The chaos property proper, on a four-stage layered pipeline with
// statically-sized fields (so the poison oracle is exact):
//
//     read(a) ─▶ src(a)[x] ─▶ stage1 ─▶ mid(a)[x] ─▶ stage2 ─▶ out(a)[x]
//                                                     └────────▶ reduce(a) ─▶ sum(a)
// ---------------------------------------------------------------------------

fn layered_spec(lanes: usize) -> p2g_graph::ProgramSpec {
    let mut p = p2g_graph::ProgramSpec::new();
    let src = p.add_field(FieldDef::with_extents(
        "src",
        ScalarType::I32,
        Extents(vec![lanes]),
    ));
    let mid = p.add_field(FieldDef::with_extents(
        "mid",
        ScalarType::I32,
        Extents(vec![lanes]),
    ));
    let out = p.add_field(FieldDef::with_extents(
        "out",
        ScalarType::I32,
        Extents(vec![lanes]),
    ));
    let sum = p.add_field(FieldDef::with_extents(
        "sum",
        ScalarType::I32,
        Extents(vec![1]),
    ));
    p.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "read".into(),
        index_vars: 0,
        has_age_var: true,
        fetches: vec![],
        stores: vec![StoreDecl {
            field: src,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
    });
    p.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "stage1".into(),
        index_vars: 1,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: src,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
        stores: vec![StoreDecl {
            field: mid,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
    });
    p.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "stage2".into(),
        index_vars: 1,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: mid,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
        stores: vec![StoreDecl {
            field: out,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
    });
    p.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "reduce".into(),
        index_vars: 0,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: out,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
        stores: vec![StoreDecl {
            field: sum,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
    });
    p
}

/// splitmix64 — the deterministic chaos coin.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn chaos_coin(seed: u64, kernel: u32, age: u64, lane: usize) -> u64 {
    mix(seed ^ mix(kernel as u64 ^ mix(age ^ mix(lane as u64 + 1))))
}

#[derive(Clone)]
struct ChaosPlan {
    seed: u64,
    /// Failure probability in permille (0..=200 keeps p ≤ 0.2).
    permille: u64,
}

impl ChaosPlan {
    fn fails(&self, kernel: u32, age: u64, lane: usize) -> bool {
        chaos_coin(self.seed, kernel, age, lane) % 1000 < self.permille
    }
    /// Failure mode: contained panic or plain Err.
    fn panics(&self, kernel: u32, age: u64, lane: usize) -> bool {
        chaos_coin(self.seed ^ 0xDEAD, kernel, age, lane).is_multiple_of(2)
    }
    /// Slow instances: a small fraction of bodies sleeps briefly.
    fn slow(&self, kernel: u32, age: u64, lane: usize) -> bool {
        chaos_coin(self.seed ^ 0xBEEF, kernel, age, lane) % 1000 < 50
    }
}

/// Build the layered program with failures injected per `plan`. When
/// `transient` is true an instance fails only the first time it executes
/// (the retry succeeds); otherwise it fails every attempt.
fn layered_program(lanes: usize, plan: ChaosPlan, transient: bool) -> Program {
    let mut program = Program::new(layered_spec(lanes)).unwrap();
    let failed_once: Arc<Mutex<HashSet<(u32, u64, usize)>>> = Arc::new(Mutex::new(HashSet::new()));

    let inject = move |plan: &ChaosPlan,
                       failed_once: &Mutex<HashSet<(u32, u64, usize)>>,
                       kernel: u32,
                       age: u64,
                       lane: usize|
          -> Result<(), String> {
        if plan.slow(kernel, age, lane) {
            std::thread::sleep(Duration::from_millis(1));
        }
        if !plan.fails(kernel, age, lane) {
            return Ok(());
        }
        if transient && !failed_once.lock().unwrap().insert((kernel, age, lane)) {
            return Ok(()); // already failed once; the retry succeeds
        }
        if plan.panics(kernel, age, lane) {
            panic!("chaos: injected panic k{kernel}@{age}[{lane}]");
        }
        Err(format!("chaos: injected failure k{kernel}@{age}[{lane}]"))
    };

    {
        let (plan, fo, inject) = (plan.clone(), failed_once.clone(), inject);
        program.body("read", move |ctx| {
            let a = ctx.age().0;
            inject(&plan, &fo, 0, a, 0)?;
            let data: Vec<i32> = (0..lanes as i32).map(|i| (a as i32) * 31 + i).collect();
            ctx.store(0, Buffer::from_vec(data));
            Ok(())
        });
    }
    {
        let (plan, fo, inject) = (plan.clone(), failed_once.clone(), inject);
        program.body("stage1", move |ctx| {
            inject(&plan, &fo, 1, ctx.age().0, ctx.index(0))?;
            let v = ctx.input(0).value(0).as_i64() as i32;
            ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(3).wrapping_add(1)]));
            Ok(())
        });
    }
    {
        let (plan, fo, inject) = (plan.clone(), failed_once.clone(), inject);
        program.body("stage2", move |ctx| {
            inject(&plan, &fo, 2, ctx.age().0, ctx.index(0))?;
            let v = ctx.input(0).value(0).as_i64() as i32;
            ctx.store(0, Buffer::from_vec(vec![v.wrapping_add(7)]));
            Ok(())
        });
    }
    {
        let (plan, fo, inject) = (plan, failed_once, inject);
        program.body("reduce", move |ctx| {
            inject(&plan, &fo, 3, ctx.age().0, 0)?;
            let buf = ctx.input(0);
            let total: i32 = (0..buf.len()).map(|i| buf.value(i).as_i64() as i32).sum();
            ctx.store(0, Buffer::from_vec(vec![total]));
            Ok(())
        });
    }
    program
}

const KERNEL_NAMES: [&str; 4] = ["read", "stage1", "stage2", "reduce"];

/// The oracle: the transitive closure of the failure plan over the static
/// dependency graph of the layered pipeline.
fn expected_poisoned(
    plan: &ChaosPlan,
    lanes: usize,
    ages: u64,
) -> BTreeSet<(String, u64, Vec<usize>)> {
    // (kernel index, age, lane); kernels without index vars use lane 0 and
    // report an empty index vector.
    let mut poisoned: HashSet<(u32, u64, usize)> = HashSet::new();
    for a in 0..ages {
        for (k, name) in KERNEL_NAMES.iter().enumerate() {
            let lanes_of = if *name == "read" || *name == "reduce" {
                1
            } else {
                lanes
            };
            for lane in 0..lanes_of {
                if plan.fails(k as u32, a, lane) {
                    poisoned.insert((k as u32, a, lane));
                }
            }
        }
    }
    // Fixpoint over the static edges.
    loop {
        let mut grew = false;
        let snapshot: Vec<_> = poisoned.iter().copied().collect();
        for (k, a, lane) in snapshot {
            let dependents: Vec<(u32, u64, usize)> = match k {
                0 => (0..lanes).map(|x| (1, a, x)).collect(), // read → all stage1
                1 => vec![(2, a, lane)],                      // stage1 → stage2
                2 => vec![(3, a, 0)],                         // stage2 → reduce
                _ => vec![],                                  // reduce → nothing
            };
            for d in dependents {
                grew |= poisoned.insert(d);
            }
        }
        if !grew {
            break;
        }
    }
    poisoned
        .into_iter()
        .map(|(k, a, lane)| {
            let name = KERNEL_NAMES[k as usize].to_string();
            let idx = if k == 1 || k == 2 { vec![lane] } else { vec![] };
            (name, a, idx)
        })
        .collect()
}

fn run_layered(
    lanes: usize,
    ages: u64,
    workers: usize,
    plan: ChaosPlan,
    transient: bool,
    policy: FaultPolicy,
) -> (p2g_runtime::RunReport, p2g_runtime::FieldStore) {
    let mut program = layered_program(lanes, plan, transient);
    program.set_fault_policy_all(policy);
    let (report, fields) = NodeBuilder::new(program)
        .workers(workers)
        .launch(RunLimits::ages(ages).with_deadline(WALL).with_trace())
        .and_then(|n| n.collect())
        .expect("poison-mode chaos runs never abort");
    // Trace invariants must hold under chaos too: dependencies before
    // dispatch, write-once, retries within budget, poison consistency.
    p2g_runtime::trace_check::all(&report);
    (report, fields)
}

fn sums_at(fields: &p2g_runtime::FieldStore, ages: u64) -> Vec<Option<i64>> {
    (0..ages)
        .map(|a| {
            fields
                .fetch_element("sum", Age(a), &[0])
                .map(|v| v.as_i64())
        })
        .collect()
}

/// One permanent-failure chaos run checked against the oracle.
fn check_chaos_case(seed: u64, permille: u64, lanes: usize, ages: u64, workers: usize) {
    let plan = ChaosPlan { seed, permille };
    let policy = FaultPolicy::retries(0)
        .poison()
        .with_deadline(Duration::from_millis(250));
    let (report, fields) = run_layered(lanes, ages, workers, plan.clone(), false, policy);

    let expected = expected_poisoned(&plan, lanes, ages);
    assert!(
        report.termination.finished(),
        "seed {seed}: run must terminate cleanly, got {:?}",
        report.termination
    );
    assert_eq!(
        report.termination == Termination::Degraded,
        !expected.is_empty(),
        "seed {seed}: degradation iff something failed"
    );
    let actual: BTreeSet<(String, u64, Vec<usize>)> = report
        .instruments
        .poisoned_instances()
        .iter()
        .flat_map(|((k, a), idxs)| idxs.iter().map(move |idx| (k.clone(), *a, idx.clone())))
        .collect();
    assert_eq!(
        actual, expected,
        "seed {seed}: poisoned set must exactly match the transitive dependents"
    );

    // Un-poisoned reductions carry the exact fault-free value.
    let lanes_i = lanes as i32;
    for a in 0..ages {
        if expected.contains(&("reduce".to_string(), a, vec![])) {
            assert!(
                fields.fetch_element("sum", Age(a), &[0]).is_none(),
                "seed {seed}: poisoned reduce@{a} must not produce a sum"
            );
        } else {
            let expect: i32 = (0..lanes_i)
                .map(|i| {
                    ((a as i32) * 31 + i)
                        .wrapping_mul(3)
                        .wrapping_add(1)
                        .wrapping_add(7)
                })
                .sum();
            assert_eq!(
                fields
                    .fetch_element("sum", Age(a), &[0])
                    .map(|v| v.as_i64()),
                Some(expect as i64),
                "seed {seed}: surviving reduce@{a} must be exact"
            );
        }
    }
}

/// Fixed seed matrix — the deterministic CI smoke set.
#[test]
fn chaos_fixed_seed_matrix() {
    for (seed, permille, lanes, ages, workers) in [
        (1u64, 0u64, 4usize, 3u64, 2usize), // fault-free baseline
        (2, 100, 4, 3, 2),
        (3, 200, 3, 4, 3),
        (4, 200, 5, 3, 4),
        (5, 150, 2, 5, 2),
        (42, 200, 4, 4, 8),
    ] {
        check_chaos_case(seed, permille, lanes, ages, workers);
    }
}

/// Fixed seed matrix for the retry path: transient failures with retries
/// enabled converge to the exact fault-free field contents.
#[test]
fn chaos_retries_fixed_seed_matrix() {
    for (seed, permille, lanes, ages, workers) in [
        (7u64, 200u64, 4usize, 3u64, 2usize),
        (8, 150, 3, 4, 4),
        (9, 200, 5, 3, 8),
    ] {
        let clean = ChaosPlan { seed, permille: 0 };
        let (clean_report, clean_fields) =
            run_layered(lanes, ages, workers, clean, false, fast_retries(0).poison());
        assert_eq!(clean_report.termination, Termination::Quiescent);

        let plan = ChaosPlan { seed, permille };
        let (report, fields) =
            run_layered(lanes, ages, workers, plan, true, fast_retries(2).poison());
        assert_eq!(
            report.termination,
            Termination::Quiescent,
            "seed {seed}: transient failures with retries must not degrade"
        );
        assert_eq!(
            sums_at(&fields, ages),
            sums_at(&clean_fields, ages),
            "seed {seed}: retried run must equal the fault-free run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random kernel panics (p ≤ 0.2) and slow instances: every run
    /// terminates, and the poisoned set exactly matches the oracle.
    #[test]
    fn chaos_poison_matches_oracle(
        seed in 0u64..1_000_000,
        permille in 0u64..=200,
        lanes in 1usize..5,
        ages in 1u64..5,
        workers in 1usize..5,
    ) {
        check_chaos_case(seed, permille, lanes, ages, workers);
    }

    /// With retries and deterministic bodies the final field store is
    /// identical to the fault-free run.
    #[test]
    fn chaos_retries_converge(
        seed in 0u64..1_000_000,
        permille in 0u64..=200,
        lanes in 1usize..4,
        ages in 1u64..4,
        workers in 1usize..5,
    ) {
        let clean = ChaosPlan { seed, permille: 0 };
        let (_, clean_fields) =
            run_layered(lanes, ages, workers, clean, false, fast_retries(0).poison());
        let plan = ChaosPlan { seed, permille };
        let (report, fields) =
            run_layered(lanes, ages, workers, plan, true, fast_retries(2).poison());
        prop_assert_eq!(report.termination, Termination::Quiescent);
        prop_assert_eq!(sums_at(&fields, ages), sums_at(&clean_fields, ages));
    }
}

//! Tests of the resident streaming runtime: admission control and
//! backpressure, flat-memory age GC over long streams, multi-tenant
//! fairness on the shared pool, dropped-frame reporting, and trace
//! invariants over a session-mode run.

use std::sync::Arc;
use std::time::Duration;

use p2g_field::{Buffer, Extents, FieldDef, FieldId, Region, ScalarType};
use p2g_graph::spec::{AgeExpr, FetchDecl, IndexSel, KernelId, KernelSpec, ProgramSpec, StoreDecl};
use p2g_runtime::{
    FaultPolicy, Program, Session, SessionConfig, SessionRuntime, SessionSink, SubmitError,
};

const IN_FIELD: FieldId = FieldId(0);

/// A minimal streaming tenant: `double` consumes the injected `in` plane,
/// `emit` (ordered, terminal) stages the doubled values in the session
/// sink. `fail_age` makes `double` fail at that age (poisoned under the
/// installed policy); `delay` slows `double` down to provoke backpressure.
fn stream_program(
    sink: Arc<SessionSink>,
    fail_age: Option<u64>,
    delay: Option<Duration>,
) -> Program {
    let mut spec = ProgramSpec::new();
    let f_in = spec.add_field(FieldDef::with_extents(
        "in",
        ScalarType::I32,
        Extents::new([4]),
    ));
    let f_out = spec.add_field(FieldDef::with_extents(
        "out",
        ScalarType::I32,
        Extents::new([4]),
    ));
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "double".into(),
        index_vars: 0,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: f_in,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
        stores: vec![StoreDecl {
            field: f_out,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
    });
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "emit".into(),
        index_vars: 0,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: f_out,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
        stores: vec![],
    });
    let mut program = Program::new(spec).unwrap();
    program.body("double", move |ctx| {
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        if fail_age == Some(ctx.age().0) {
            return Err("injected failure".into());
        }
        let out: Vec<i32> = ctx
            .input(0)
            .as_i32()
            .unwrap()
            .iter()
            .map(|v| v * 2)
            .collect();
        ctx.store(0, Buffer::from_vec(out));
        Ok(())
    });
    program.body("emit", move |ctx| {
        let bytes: Vec<u8> = ctx
            .input(0)
            .as_i32()
            .unwrap()
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        sink.push(ctx.age().0, bytes);
        Ok(())
    });
    program.set_ordered("emit");
    if fail_age.is_some() {
        program.set_fault_policy("double", FaultPolicy::retries(0).poison());
    }
    program
}

fn frame(age: u64) -> Vec<(FieldId, Region, Buffer)> {
    vec![(
        IN_FIELD,
        Region::all(1),
        Buffer::from_vec(vec![age as i32, 1, 2, 3]),
    )]
}

fn drain_outputs(session: &Session, expect: u64) -> Vec<u64> {
    let mut ages = Vec::new();
    while ages.len() < expect as usize {
        let out = session
            .recv(Duration::from_secs(20))
            .expect("session output before timeout");
        ages.push(out.age);
    }
    ages
}

/// The tentpole soak: thousands of frames through one session with a small
/// GC window must complete with resident memory flat — the live slab count
/// stays bounded by the window, nowhere near the frame count.
#[test]
fn soak_age_gc_keeps_memory_flat() {
    const FRAMES: u64 = 2_000;
    let runtime = SessionRuntime::new(4);
    let sink = SessionSink::new();
    let program = stream_program(sink.clone(), None, None);
    let session = runtime
        .open(
            program,
            SessionConfig::new("emit")
                .sink(sink)
                .max_in_flight(8)
                .gc_window(8),
        )
        .unwrap();

    let mut ages = Vec::new();
    let mut peak_resident = 0usize;
    for n in 0..FRAMES {
        session.submit(frame(n)).unwrap();
        while let Some(out) = session.poll_output() {
            assert_eq!(
                out.payload.as_deref().map(|b| b.len()),
                Some(16),
                "4 doubled i32s per frame"
            );
            ages.push(out.age);
        }
        if n % 64 == 0 {
            peak_resident = peak_resident.max(session.resident_ages());
        }
    }
    ages.extend(drain_outputs(&session, FRAMES - ages.len() as u64));

    // Outputs arrive in strict age order (ordered terminal kernel + the
    // analyzer watch fires ages in order).
    assert_eq!(ages, (0..FRAMES).collect::<Vec<_>>());
    assert!(
        peak_resident < 200,
        "resident (field, age) slabs must stay near the GC window over \
         {FRAMES} frames, saw peak {peak_resident}"
    );

    let report = session.finish(Duration::from_secs(20)).unwrap();
    assert_eq!(report.frames_submitted, FRAMES);
    assert_eq!(report.frames_completed, FRAMES);
    assert_eq!(report.frames_dropped, 0);
    let peak_live = report.report.instruments.peak_live_ages();
    assert!(
        peak_live > 0 && peak_live < 200,
        "analyzer live-age gauge must stay bounded, saw {peak_live}"
    );
    assert!(
        report.report.instruments.gc_ages_collected() > FRAMES,
        "age GC must have retired most of the stream's slabs"
    );
    runtime.shutdown();
}

/// Two tenants on one pool: a heavy session saturating the workers must
/// not starve a light one — both finish their streams.
#[test]
fn two_tenants_share_the_pool_without_starvation() {
    const HEAVY: u64 = 300;
    const LIGHT: u64 = 100;
    let runtime = SessionRuntime::new(2);

    let sink_a = SessionSink::new();
    let heavy = runtime
        .open(
            stream_program(sink_a.clone(), None, Some(Duration::from_micros(200))),
            SessionConfig::new("emit")
                .sink(sink_a)
                .max_in_flight(64)
                .gc_window(8),
        )
        .unwrap();
    let sink_b = SessionSink::new();
    let light = runtime
        .open(
            stream_program(sink_b.clone(), None, None),
            SessionConfig::new("emit")
                .sink(sink_b)
                .max_in_flight(4)
                .gc_window(8),
        )
        .unwrap();

    std::thread::scope(|s| {
        s.spawn(|| {
            for n in 0..HEAVY {
                heavy.submit(frame(n)).unwrap();
            }
        });
        s.spawn(|| {
            for n in 0..LIGHT {
                light.submit(frame(n)).unwrap();
                // The light tenant's outputs must keep flowing while the
                // heavy tenant floods the pool.
                if n % 10 == 9 {
                    light
                        .recv(Duration::from_secs(20))
                        .expect("light session output while heavy session floods");
                }
            }
        });
    });

    let heavy_report = heavy.finish(Duration::from_secs(30)).unwrap();
    let light_report = light.finish(Duration::from_secs(30)).unwrap();
    assert_eq!(heavy_report.frames_completed, HEAVY);
    assert_eq!(light_report.frames_completed, LIGHT);
    runtime.shutdown();
}

/// Admission control: with the in-flight window full, `try_submit` refuses
/// with `WouldBlock`; the window reopens once a frame completes; a closed
/// session refuses with `Closed`.
#[test]
fn backpressure_blocks_submissions_at_the_window() {
    let runtime = SessionRuntime::new(1);
    let sink = SessionSink::new();
    let program = stream_program(sink.clone(), None, Some(Duration::from_millis(30)));
    let session = runtime
        .open(
            program,
            SessionConfig::new("emit")
                .sink(sink)
                .max_in_flight(2)
                .gc_window(4),
        )
        .unwrap();

    session.submit(frame(0)).unwrap();
    session.submit(frame(1)).unwrap();
    assert_eq!(session.try_submit(frame(2)), Err(SubmitError::WouldBlock));

    // Blocking submit waits for the window instead of failing.
    let t = session.submit(frame(2)).unwrap();
    assert_eq!(t.age, 2);
    assert!(session.in_flight() <= 2);

    session.close();
    assert_eq!(session.try_submit(frame(3)), Err(SubmitError::Closed));
    assert_eq!(session.submit(frame(3)), Err(SubmitError::Closed));

    let report = session.finish(Duration::from_secs(20)).unwrap();
    assert_eq!(report.frames_submitted, 3);
    assert_eq!(report.frames_completed, 3);
    runtime.shutdown();
}

/// A frame whose kernel poisons under the fault policy completes as a
/// *dropped* output (payload `None`) instead of stalling the stream, and
/// the session report counts it.
#[test]
fn poisoned_frame_surfaces_as_dropped_output() {
    const FRAMES: u64 = 10;
    let runtime = SessionRuntime::new(2);
    let sink = SessionSink::new();
    let program = stream_program(sink.clone(), Some(3), None);
    let session = runtime
        .open(
            program,
            SessionConfig::new("emit")
                .sink(sink)
                .max_in_flight(4)
                .gc_window(16),
        )
        .unwrap();

    for n in 0..FRAMES {
        session.submit(frame(n)).unwrap();
    }
    let mut dropped = Vec::new();
    for _ in 0..FRAMES {
        let out = session
            .recv(Duration::from_secs(20))
            .expect("every frame completes, dropped or not");
        if out.dropped() {
            dropped.push(out.age);
        }
    }
    assert_eq!(dropped, vec![3], "exactly the failing age drops");

    let report = session.finish(Duration::from_secs(20)).unwrap();
    assert_eq!(report.frames_completed, FRAMES);
    assert_eq!(report.frames_dropped, 1);
    runtime.shutdown();
}

/// The soak forced onto the sharded analyzer path: a 4-shard session must
/// deliver every frame in age order with resident memory flat, and the
/// per-shard instrumentation must be populated. This is the streaming-mode
/// counterpart of the batch sharded-invariants test: age watches live on
/// one pinned shard while unpinned analysis spreads across all four.
#[test]
fn sharded_session_soak_stays_flat_and_ordered() {
    const FRAMES: u64 = 1_000;
    let runtime = SessionRuntime::new(4);
    let sink = SessionSink::new();
    let program = stream_program(sink.clone(), None, None);
    let session = runtime
        .open(
            program,
            SessionConfig::new("emit")
                .sink(sink)
                .max_in_flight(8)
                .gc_window(8)
                .shards(4),
        )
        .unwrap();

    let mut ages = Vec::new();
    let mut peak_resident = 0usize;
    for n in 0..FRAMES {
        session.submit(frame(n)).unwrap();
        while let Some(out) = session.poll_output() {
            assert_eq!(
                out.payload.as_deref().map(|b| b.len()),
                Some(16),
                "4 doubled i32s per frame"
            );
            ages.push(out.age);
        }
        if n % 64 == 0 {
            peak_resident = peak_resident.max(session.resident_ages());
        }
    }
    ages.extend(drain_outputs(&session, FRAMES - ages.len() as u64));
    assert_eq!(ages, (0..FRAMES).collect::<Vec<_>>());
    assert!(
        peak_resident < 200,
        "resident slabs must stay near the GC window on the sharded path, \
         saw peak {peak_resident}"
    );

    let report = session.finish(Duration::from_secs(20)).unwrap();
    assert_eq!(report.frames_submitted, FRAMES);
    assert_eq!(report.frames_completed, FRAMES);
    assert_eq!(report.frames_dropped, 0);
    let ins = &report.report.instruments;
    assert_eq!(ins.shard_events().len(), 4);
    assert!(
        ins.shard_events().iter().sum::<u64>() > 0,
        "sharded session recorded no per-shard events"
    );
    assert!(
        ins.gc_ages_collected() > FRAMES,
        "sharded age GC must have retired most of the stream's slabs"
    );
    runtime.shutdown();
}

/// A traced session run passes every trace invariant, including the GC
/// no-store-after-retire check over the `AgeRetired` records.
#[test]
fn session_trace_passes_invariant_checks() {
    const FRAMES: u64 = 120;
    let runtime = SessionRuntime::new(2);
    let sink = SessionSink::new();
    let program = stream_program(sink.clone(), None, None);
    let session = runtime
        .open(
            program,
            SessionConfig::new("emit")
                .sink(sink)
                .max_in_flight(8)
                .gc_window(4)
                .with_trace(),
        )
        .unwrap();

    for n in 0..FRAMES {
        session.submit(frame(n)).unwrap();
    }
    drain_outputs(&session, FRAMES);
    let report = session.finish(Duration::from_secs(20)).unwrap();
    let trace = report.report.trace.as_ref().expect("tracing was enabled");
    assert!(
        trace.of_kind("AgeRetired").next().is_some(),
        "a small GC window over {FRAMES} frames must retire slabs"
    );
    p2g_runtime::trace_check::all(&report.report);
    runtime.shutdown();
}

//! Per-session QoS on the shared pool: weighted fair shares between
//! saturating tenants, bounded high-priority latency under a bulk flood,
//! and trace invariants (per-session age order) under QoS scheduling.

use std::sync::Arc;
use std::time::{Duration, Instant};

use p2g_field::{Buffer, Extents, FieldDef, FieldId, Region, ScalarType};
use p2g_graph::spec::{AgeExpr, FetchDecl, IndexSel, KernelId, KernelSpec, ProgramSpec, StoreDecl};
use p2g_runtime::{Program, Qos, Session, SessionConfig, SessionRuntime, SessionSink};

const IN_FIELD: FieldId = FieldId(0);

/// The minimal streaming tenant from the session tests: `work` burns
/// `delay` per frame on the injected plane, `emit` (ordered, terminal)
/// stages the result.
fn stream_program(sink: Arc<SessionSink>, delay: Duration) -> Program {
    let mut spec = ProgramSpec::new();
    let f_in = spec.add_field(FieldDef::with_extents(
        "in",
        ScalarType::I32,
        Extents::new([4]),
    ));
    let f_out = spec.add_field(FieldDef::with_extents(
        "out",
        ScalarType::I32,
        Extents::new([4]),
    ));
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "work".into(),
        index_vars: 0,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: f_in,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
        stores: vec![StoreDecl {
            field: f_out,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
    });
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "emit".into(),
        index_vars: 0,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: f_out,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
        stores: vec![],
    });
    let mut program = Program::new(spec).unwrap();
    program.body("work", move |ctx| {
        // Busy-wait, not sleep: a sleeping worker thread would let the
        // queue drain ordering stop mattering.
        let until = Instant::now() + delay;
        while Instant::now() < until {
            std::hint::spin_loop();
        }
        let out: Vec<i32> = ctx
            .input(0)
            .as_i32()
            .unwrap()
            .iter()
            .map(|v| v * 2)
            .collect();
        ctx.store(0, Buffer::from_vec(out));
        Ok(())
    });
    program.body("emit", move |ctx| {
        let bytes: Vec<u8> = ctx
            .input(0)
            .as_i32()
            .unwrap()
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        sink.push(ctx.age().0, bytes);
        Ok(())
    });
    program.set_ordered("emit");
    program
}

fn frame(age: u64) -> Vec<(FieldId, Region, Buffer)> {
    vec![(
        IN_FIELD,
        Region::all(1),
        Buffer::from_vec(vec![age as i32, 1, 2, 3]),
    )]
}

fn open_tenant(runtime: &SessionRuntime, qos: Qos, window: usize, delay: Duration) -> Session {
    let sink = SessionSink::new();
    runtime
        .open(
            stream_program(sink.clone(), delay),
            SessionConfig::new("emit")
                .sink(sink)
                .max_in_flight(window)
                .gc_window(8)
                .with_qos(qos),
        )
        .unwrap()
}

/// Two tenants saturating the pool at weights 2:1 receive dispatch shares
/// in that proportion, within tolerance. Measured over a mid-run window
/// (deltas of the per-session dispatch gauge) so startup transients and
/// the drain tail don't skew the ratio.
#[test]
fn weighted_fair_shares_two_to_one() {
    const FRAMES: u64 = 4_000;
    let runtime = SessionRuntime::new(2);
    // The kernel must clearly dominate per-frame submit overhead or the
    // ready queue never builds the backlog fair queueing arbitrates over.
    let work = Duration::from_millis(1);
    let heavy = open_tenant(&runtime, Qos::normal().weight(2), 64, work);
    let light = open_tenant(&runtime, Qos::normal(), 64, work);

    std::thread::scope(|s| {
        let heavy = &heavy;
        let light = &light;
        s.spawn(move || {
            for n in 0..FRAMES {
                if heavy.submit(frame(n)).is_err() {
                    break;
                }
                while heavy.poll_output().is_some() {}
            }
        });
        s.spawn(move || {
            for n in 0..FRAMES {
                if light.submit(frame(n)).is_err() {
                    break;
                }
                while light.poll_output().is_some() {}
            }
        });

        // Let both reach steady saturation, then measure a window.
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            heavy.in_flight() >= 32 && light.in_flight() >= 32,
            "both tenants must be saturating their windows (heavy {}, light {})",
            heavy.in_flight(),
            light.in_flight()
        );
        let (h0, l0) = (
            heavy.metrics().dispatched_units,
            light.metrics().dispatched_units,
        );
        std::thread::sleep(Duration::from_millis(800));
        let dh = heavy.metrics().dispatched_units - h0;
        let dl = light.metrics().dispatched_units - l0;
        assert!(
            dh > 100 && dl > 50,
            "both tenants must make progress in the window (heavy {dh}, light {dl})"
        );
        let ratio = dh as f64 / dl as f64;
        assert!(
            (1.4..=2.8).contains(&ratio),
            "weight-2 tenant should get ~2x the dispatches of weight-1, got \
             {dh}:{dl} = {ratio:.2}"
        );
        // Unblock the submit loops: stop admitting so the threads exit.
        heavy.close();
        light.close();
    });

    let _ = heavy.finish(Duration::from_secs(30)).unwrap();
    let _ = light.finish(Duration::from_secs(30)).unwrap();
    runtime.shutdown();
}

/// A realtime-class tenant's p95 completion latency stays bounded while a
/// bulk tenant floods the pool with a deep backlog: strict classes mean
/// the high tenant's units never queue behind the flood.
#[test]
fn high_priority_latency_bounded_under_bulk_flood() {
    const HIGH_FRAMES: u64 = 60;
    let runtime = SessionRuntime::new(2);
    let work = Duration::from_micros(200);
    let bulk = open_tenant(&runtime, Qos::bulk(), 256, work);
    let high = open_tenant(&runtime, Qos::high(), 4, work);

    std::thread::scope(|s| {
        let bulk = &bulk;
        let high = &high;
        let flood = s.spawn(move || {
            for n in 0..20_000u64 {
                if bulk.submit(frame(n)).is_err() {
                    break;
                }
                while bulk.poll_output().is_some() {}
            }
        });
        // Paced realtime stream while the flood saturates the pool.
        for n in 0..HIGH_FRAMES {
            high.submit(frame(n)).unwrap();
            std::thread::sleep(Duration::from_millis(5));
            while high.poll_output().is_some() {}
        }
        let m = high.metrics();
        assert!(
            m.frames_completed > HIGH_FRAMES / 2,
            "realtime tenant must keep completing under the flood, got {}",
            m.frames_completed
        );
        let p95_ms = m.p95_latency_ns as f64 / 1e6;
        assert!(
            p95_ms < 100.0,
            "realtime p95 must stay bounded under a bulk flood, got {p95_ms:.1}ms"
        );
        let bulk_backlog = bulk.in_flight();
        assert!(
            bulk_backlog > 16,
            "the flood must actually have a deep backlog (saw {bulk_backlog} in flight)"
        );
        bulk.close();
        high.close();
        let _ = flood.join();
    });

    let _ = bulk.finish(Duration::from_secs(60)).unwrap();
    let _ = high.finish(Duration::from_secs(30)).unwrap();
    runtime.shutdown();
}

/// QoS scheduling must not break per-session age order: outputs of each
/// tenant arrive in strictly increasing age order and a traced QoS run
/// passes every trace invariant.
#[test]
fn qos_preserves_per_session_age_order() {
    const FRAMES: u64 = 200;
    let runtime = SessionRuntime::new(2);
    let sink = SessionSink::new();
    let session = runtime
        .open(
            stream_program(sink.clone(), Duration::from_micros(50)),
            SessionConfig::new("emit")
                .sink(sink)
                .max_in_flight(16)
                .gc_window(8)
                .with_qos(Qos::normal().weight(3))
                .with_trace(),
        )
        .unwrap();

    let mut ages = Vec::new();
    for n in 0..FRAMES {
        session.submit(frame(n)).unwrap();
        while let Some(out) = session.poll_output() {
            ages.push(out.age);
        }
    }
    while ages.len() < FRAMES as usize {
        let out = session
            .recv(Duration::from_secs(20))
            .expect("every frame completes");
        ages.push(out.age);
    }
    assert_eq!(
        ages,
        (0..FRAMES).collect::<Vec<_>>(),
        "outputs must arrive in age order under QoS scheduling"
    );

    let report = session.finish(Duration::from_secs(20)).unwrap();
    assert!(report.report.trace.is_some(), "tracing was enabled");
    p2g_runtime::trace_check::all(&report.report);
    runtime.shutdown();
}

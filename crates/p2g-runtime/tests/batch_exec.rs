//! Tests of batched instance execution ([`RunLimits::batch_exec`]) and
//! online granularity adaptation ([`RunLimits::adaptive`]): results must
//! be bit-identical to the scalar per-instance path, fault containment
//! must stay per-instance, and every trace invariant must keep holding.

use p2g_field::{Age, Buffer, Region, Value};
use p2g_graph::spec::mul_sum_example;
use p2g_runtime::{
    AdaptiveGranularity, FaultPolicy, NodeBuilder, Program, RunLimits, Termination,
};

fn build_program() -> Program {
    let mut program = Program::new(mul_sum_example()).unwrap();
    program.body("init", |ctx| {
        ctx.store(
            0,
            Buffer::from_vec((0..5).map(|i| i + 10).collect::<Vec<i32>>()),
        );
        Ok(())
    });
    program.body("mul2", |ctx| {
        let v = match ctx.input(0).value(0) {
            Value::I32(v) => v,
            other => return Err(format!("unexpected type {other:?}")),
        };
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.body("plus5", |ctx| {
        let v = match ctx.input(0).value(0) {
            Value::I32(v) => v,
            other => return Err(format!("unexpected type {other:?}")),
        };
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_add(5)]));
        Ok(())
    });
    program.body("print", |_| Ok(()));
    program
}

fn i32s(fields: &p2g_runtime::node::FieldStore, name: &str, age: u64) -> Vec<i32> {
    fields
        .fetch(name, Age(age), &Region::all(1))
        .unwrap_or_else(|| panic!("{name} age {age} missing"))
        .as_i32()
        .unwrap()
        .to_vec()
}

/// The paper's sequences survive the batched path unchanged, the batched
/// counter proves the path actually ran, and every trace invariant holds
/// (merged store events still carry analyzable regions).
#[test]
fn batched_execution_matches_scalar_results() {
    let mut program = build_program();
    program.set_chunk_size("mul2", 5).set_chunk_size("plus5", 5);
    let (report, fields) = NodeBuilder::new(program)
        .workers(2)
        .launch(RunLimits::ages(3).with_batch_exec().with_trace())
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(report.termination, Termination::Quiescent);
    p2g_runtime::trace_check::all(&report);
    assert_eq!(i32s(&fields, "m_data", 0), vec![10, 11, 12, 13, 14]);
    assert_eq!(i32s(&fields, "p_data", 0), vec![20, 22, 24, 26, 28]);
    assert_eq!(i32s(&fields, "m_data", 1), vec![25, 27, 29, 31, 33]);
    assert_eq!(i32s(&fields, "p_data", 1), vec![50, 54, 58, 62, 66]);
    assert_eq!(i32s(&fields, "m_data", 2), vec![55, 59, 63, 67, 71]);
    assert!(
        report.instruments.batched_instances() > 0,
        "chunked units must have taken the batched path"
    );
}

/// A registered whole-unit batch body runs instead of per-instance bodies
/// and produces identical results.
#[test]
fn batch_body_replaces_per_instance_bodies() {
    let mut program = build_program();
    program.set_chunk_size("mul2", 5);
    program.batch_body("mul2", |bctx| {
        for i in 0..bctx.len() {
            let v = match bctx.input(i, 0).value(0) {
                Value::I32(v) => v,
                other => return Err(format!("unexpected type {other:?}")),
            };
            bctx.store(i, 0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        }
        Ok(())
    });
    let (report, fields) = NodeBuilder::new(program)
        .workers(2)
        .launch(RunLimits::ages(3).with_batch_exec().with_trace())
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(report.termination, Termination::Quiescent);
    p2g_runtime::trace_check::all(&report);
    assert_eq!(i32s(&fields, "m_data", 2), vec![55, 59, 63, 67, 71]);
    assert!(report.instruments.batched_instances() > 0);
}

/// Per-instance fault containment on the batched path: one failing
/// instance inside a batch poisons only its own stores — its batch peers'
/// results land normally and the run degrades instead of aborting.
#[test]
fn failing_instance_in_batch_poisons_only_itself() {
    let mut program = build_program();
    program.set_chunk_size("mul2", 5);
    program.body("mul2", |ctx| {
        let v = match ctx.input(0).value(0) {
            Value::I32(v) => v,
            other => return Err(format!("unexpected type {other:?}")),
        };
        if ctx.index(0) == 2 {
            return Err("instance 2 always fails".into());
        }
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.set_fault_policy("mul2", FaultPolicy::default().poison());
    let (report, fields) = NodeBuilder::new(program)
        .workers(2)
        .launch(RunLimits::ages(1).with_batch_exec().with_trace())
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(report.termination, Termination::Degraded);
    p2g_runtime::trace_check::all(&report);
    let p = fields.field_by_name("p_data").unwrap();
    for x in [0usize, 1, 3, 4] {
        assert_eq!(
            p.fetch_element(Age(0), &[x]).unwrap(),
            Value::I32((10 + x as i32) * 2),
            "surviving batch peer {x} must have stored"
        );
    }
    assert!(
        p.fetch_element(Age(0), &[2]).is_err(),
        "the failed instance's store must be absent"
    );
}

/// A panic inside a batched segment is contained to the panicking
/// instance; completed peers keep their outcomes (bodies never re-run,
/// observed via the write-once guarantee holding).
#[test]
fn panic_in_batch_contained_to_one_instance() {
    let mut program = build_program();
    program.set_chunk_size("mul2", 5);
    program.body("mul2", |ctx| {
        let v = match ctx.input(0).value(0) {
            Value::I32(v) => v,
            other => return Err(format!("unexpected type {other:?}")),
        };
        assert!(ctx.index(0) != 3, "boom at 3");
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.set_fault_policy("mul2", FaultPolicy::default().poison());
    let (report, fields) = NodeBuilder::new(program)
        .workers(1)
        .launch(RunLimits::ages(1).with_batch_exec().with_trace())
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(report.termination, Termination::Degraded);
    p2g_runtime::trace_check::all(&report);
    let p = fields.field_by_name("p_data").unwrap();
    for x in [0usize, 1, 2, 4] {
        assert_eq!(
            p.fetch_element(Age(0), &[x]).unwrap(),
            Value::I32((10 + x as i32) * 2)
        );
    }
    assert!(p.fetch_element(Age(0), &[3]).is_err());
}

/// Retryable failures on the batched path re-dispatch as a scalar retry
/// unit and eventually succeed, leaving complete results.
#[test]
fn batched_failures_retry_to_success() {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    let attempts = Arc::new(AtomicU32::new(0));
    let mut program = build_program();
    program.set_chunk_size("mul2", 5);
    let a = attempts.clone();
    program.body("mul2", move |ctx| {
        let v = match ctx.input(0).value(0) {
            Value::I32(v) => v,
            other => return Err(format!("unexpected type {other:?}")),
        };
        if ctx.index(0) == 1 && a.fetch_add(1, Ordering::SeqCst) == 0 {
            return Err("transient".into());
        }
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.set_fault_policy(
        "mul2",
        FaultPolicy::retries(2).with_backoff(
            std::time::Duration::from_millis(1),
            std::time::Duration::from_millis(2),
        ),
    );
    let (report, fields) = NodeBuilder::new(program)
        .workers(2)
        .launch(RunLimits::ages(1).with_batch_exec().with_trace())
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(report.termination, Termination::Quiescent);
    p2g_runtime::trace_check::all(&report);
    assert_eq!(i32s(&fields, "p_data", 0), vec![20, 22, 24, 26, 28]);
    assert!(report.instruments.total_retries() >= 1);
}

/// Online granularity adaptation: an aggressive controller on a dispatch-
/// dominated workload grows chunk sizes, the decisions trace as a sane
/// factor-of-two chain, and results stay exact.
#[test]
fn adaptive_granularity_adapts_and_stays_correct() {
    let cfg = AdaptiveGranularity {
        interval: std::time::Duration::from_micros(100),
        min_samples: 4,
        overhead_high: 0.05,
        p95_budget: None,
        ..AdaptiveGranularity::default()
    };
    let (report, fields) = NodeBuilder::new(build_program())
        .workers(2)
        .launch(
            RunLimits::ages(200)
                .with_adaptive(cfg)
                .with_batch_exec()
                .with_gc_window(8)
                .with_trace(),
        )
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(report.termination, Termination::Quiescent);
    p2g_runtime::trace_check::all(&report);
    // Spot-check late ages for exactness under adaptation.
    let m = fields.field_by_name("m_data").unwrap();
    assert!(m.is_complete(Age(199)));
    // The trace invariant (granularity_sane) has already validated any
    // decisions; a dispatch-bound run this long with a 5% overhead
    // threshold reliably triggers growth.
    assert!(
        report.instruments.granularity_changes() > 0,
        "controller never adapted a 200-age dispatch-dominated run"
    );
}

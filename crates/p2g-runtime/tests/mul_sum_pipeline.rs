//! End-to-end tests of the paper's Figure-5 example program: the
//! mul2/plus5/print aging cycle. The paper states the exact sequences the
//! program produces; these tests assert them.

use p2g_field::{Age, Buffer, Region, Value};
use p2g_graph::spec::mul_sum_example;
use p2g_runtime::{NodeBuilder, Program, RunLimits};

fn build_program() -> Program {
    let mut program = Program::new(mul_sum_example()).unwrap();
    program.body("init", |ctx| {
        // for(i in 0..5) put(values, i+10, i); store m_data(0) = values
        ctx.store(
            0,
            Buffer::from_vec((0..5).map(|i| i + 10).collect::<Vec<i32>>()),
        );
        Ok(())
    });
    program.body("mul2", |ctx| {
        let v = match ctx.input(0).value(0) {
            Value::I32(v) => v,
            other => return Err(format!("unexpected type {other:?}")),
        };
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.body("plus5", |ctx| {
        let v = match ctx.input(0).value(0) {
            Value::I32(v) => v,
            other => return Err(format!("unexpected type {other:?}")),
        };
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_add(5)]));
        Ok(())
    });
    program.body("print", |_| Ok(()));
    program
}

fn run_ages(program: Program, workers: usize, ages: u64) -> p2g_runtime::node::FieldStore {
    let node = NodeBuilder::new(program).workers(workers);
    let (report, fields) = node
        .launch(RunLimits::ages(ages).with_trace())
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(
        report.termination,
        p2g_runtime::instrument::Termination::Quiescent
    );
    p2g_runtime::trace_check::all(&report);
    fields
}

fn i32s(fields: &p2g_runtime::node::FieldStore, name: &str, age: u64) -> Vec<i32> {
    fields
        .fetch(name, Age(age), &Region::all(1))
        .unwrap_or_else(|| panic!("{name} age {age} missing"))
        .as_i32()
        .unwrap()
        .to_vec()
}

/// The paper: "The print kernel writes {10,11,12,13,14}, {20,22,24,26,28}
/// for the first age and {25,27,29,31,33}, {50,54,58,62,66} for the second".
#[test]
fn produces_the_papers_sequences() {
    let fields = run_ages(build_program(), 2, 3);
    assert_eq!(i32s(&fields, "m_data", 0), vec![10, 11, 12, 13, 14]);
    assert_eq!(i32s(&fields, "p_data", 0), vec![20, 22, 24, 26, 28]);
    assert_eq!(i32s(&fields, "m_data", 1), vec![25, 27, 29, 31, 33]);
    assert_eq!(i32s(&fields, "p_data", 1), vec![50, 54, 58, 62, 66]);
    assert_eq!(i32s(&fields, "m_data", 2), vec![55, 59, 63, 67, 71]);
}

/// Deterministic output independent of worker count — the core write-once
/// guarantee.
#[test]
fn deterministic_across_worker_counts() {
    let reference: Vec<Vec<i32>> = {
        let fields = run_ages(build_program(), 1, 5);
        (0..5)
            .flat_map(|a| vec![i32s(&fields, "m_data", a), i32s(&fields, "p_data", a)])
            .collect()
    };
    for workers in [2, 4, 8] {
        let fields = run_ages(build_program(), workers, 5);
        let got: Vec<Vec<i32>> = (0..5)
            .flat_map(|a| vec![i32s(&fields, "m_data", a), i32s(&fields, "p_data", a)])
            .collect();
        assert_eq!(got, reference, "worker count {workers} diverged");
    }
}

/// Instance accounting: per age, 5 mul2 + 5 plus5 + 1 print, and init once.
#[test]
fn instance_counts_match_model() {
    let program = build_program();
    let node = NodeBuilder::new(program).workers(4);
    let report = node
        .launch(RunLimits::ages(4).with_trace())
        .and_then(|n| n.wait())
        .unwrap();
    p2g_runtime::trace_check::all(&report);
    let ins = &report.instruments;
    assert_eq!(ins.kernel("init").unwrap().instances, 1);
    assert_eq!(ins.kernel("mul2").unwrap().instances, 4 * 5);
    // plus5 stores into age a+1; at the age cap its stores are still
    // performed but the capped age spawns no new instances.
    assert_eq!(ins.kernel("plus5").unwrap().instances, 4 * 5);
    assert_eq!(ins.kernel("print").unwrap().instances, 4);
}

/// Figure 4, Age=2: reduced data parallelism via chunking must not change
/// results.
#[test]
fn chunking_preserves_results() {
    let mut program = build_program();
    program.set_chunk_size("mul2", 5).set_chunk_size("plus5", 3);
    let fields = run_ages(program, 4, 3);
    assert_eq!(i32s(&fields, "p_data", 1), vec![50, 54, 58, 62, 66]);
    assert_eq!(i32s(&fields, "m_data", 2), vec![55, 59, 63, 67, 71]);
}

/// Chunked dispatch shows fewer units than instances in instrumentation.
#[test]
fn chunking_reduces_units() {
    let mut program = build_program();
    program.set_chunk_size("mul2", 5);
    let node = NodeBuilder::new(program).workers(2);
    let report = node
        .launch(RunLimits::ages(3))
        .and_then(|n| n.wait())
        .unwrap();
    let st = report.instruments.kernel("mul2").unwrap();
    assert_eq!(st.instances, 15);
    // Chunking is opportunistic: instances that become runnable together
    // merge into one unit. Age 0 (whole-field init store) always merges to
    // a single unit; later ages depend on event arrival order, so we only
    // require strictly fewer units than instances.
    assert!(
        st.units < st.instances,
        "expected merged units, got {} units for {} instances",
        st.units,
        st.instances
    );
}

/// Figure 4, Age=3: task fusion (mul2+plus5) must not change results and
/// must suppress separate plus5 dispatch units.
#[test]
fn fusion_preserves_results() {
    let mut program = build_program();
    program.fuse("mul2", "plus5").unwrap();
    let node = NodeBuilder::new(program).workers(4);
    let (report, fields) = node
        .launch(RunLimits::ages(3))
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(i32s(&fields, "m_data", 1), vec![25, 27, 29, 31, 33]);
    assert_eq!(i32s(&fields, "p_data", 1), vec![50, 54, 58, 62, 66]);
    // plus5 ran (instances recorded) but under mul2's dispatch (0 units of
    // its own would show as units == 0 is not tracked separately; its
    // dispatch overhead is folded into mul2's).
    let plus5 = report.instruments.kernel("plus5").unwrap();
    assert_eq!(plus5.instances, 15);
}

/// Figure 4, Age=4: fusion + full chunking — a classical sequential loop.
#[test]
fn fusion_plus_chunking() {
    let mut program = build_program();
    program.fuse("mul2", "plus5").unwrap();
    program.set_chunk_size("mul2", 5);
    let fields = run_ages(program, 1, 3);
    assert_eq!(i32s(&fields, "m_data", 2), vec![55, 59, 63, 67, 71]);
}

/// GC window keeps memory bounded without corrupting live ages.
#[test]
fn gc_window_bounds_residency() {
    let program = build_program();
    let node = NodeBuilder::new(program).workers(2);
    let (_, fields) = node
        .launch(RunLimits::ages(20).with_gc_window(4))
        .and_then(|n| n.collect())
        .unwrap();
    let m = fields.field_by_name("m_data").unwrap();
    let resident = m.resident_ages().count();
    // Consumer-aware GC collects behind the slowest completed consumer at
    // store time, so residency depends on scheduling; it must stay well
    // below the 20 ages produced.
    assert!(resident <= 12, "expected bounded residency, got {resident}");
    // The newest ages are intact.
    assert!(m.is_complete(Age(19)));
}

/// A failing kernel body aborts the run with its message.
#[test]
fn kernel_failure_propagates() {
    let mut program = build_program();
    program.body("plus5", |_| Err("boom".into()));
    let node = NodeBuilder::new(program).workers(2);
    let err = node
        .launch(RunLimits::ages(3))
        .and_then(|n| n.wait())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("plus5") && msg.contains("boom"), "{msg}");
}

/// A body that double-stores trips the write-once enforcement.
#[test]
fn write_once_violation_detected_at_runtime() {
    let mut program = build_program();
    program.body("mul2", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v * 2]));
        ctx.store(0, Buffer::from_vec(vec![v * 2])); // second store: violation
        Ok(())
    });
    let node = NodeBuilder::new(program).workers(2);
    let err = node
        .launch(RunLimits::ages(2))
        .and_then(|n| n.wait())
        .unwrap_err();
    assert!(err.to_string().contains("write-once"), "{err}");
}

/// Missing bodies are rejected before any thread spawns.
#[test]
fn missing_body_rejected() {
    let program = Program::new(mul_sum_example()).unwrap();
    let node = NodeBuilder::new(program).workers(1);
    let err = node
        .launch(RunLimits::ages(1))
        .and_then(|n| n.wait())
        .unwrap_err();
    assert!(err.to_string().contains("no registered body"));
}

/// The wall deadline stops an otherwise infinite program.
#[test]
fn wall_deadline_stops_unbounded_run() {
    let program = build_program();
    let node = NodeBuilder::new(program).workers(2);
    let report = node
        .launch(
            RunLimits::unbounded()
                .with_deadline(std::time::Duration::from_millis(100))
                .with_gc_window(4),
        )
        .and_then(|n| n.wait())
        .unwrap();
    assert_eq!(
        report.termination,
        p2g_runtime::instrument::Termination::DeadlineExpired
    );
    // It made real progress before the deadline.
    assert!(report.instruments.kernel("mul2").unwrap().instances > 10);
}

//! Regression stress for the distributed-termination race: the outstanding
//! counter can reach zero on a worker thread (the analyzer may process a
//! unit's completion event before the unit releases its own count), and
//! quiescence must still be detected. Before the fix this hung roughly
//! once per few hundred runs at 3 workers on a loaded machine.

use p2g_field::Buffer;
use p2g_graph::spec::mul_sum_example;
use p2g_runtime::instrument::Termination;
use p2g_runtime::{NodeBuilder, Program, RunLimits};

fn tiny_program() -> Program {
    let mut program = Program::new(mul_sum_example()).unwrap();
    program.body("init", |ctx| {
        ctx.store(0, Buffer::from_vec(vec![1i32, 2, 3]));
        Ok(())
    });
    program.body("mul2", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.body("plus5", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_add(5)]));
        Ok(())
    });
    program.body("print", |_| Ok(()));
    program
}

#[test]
fn quiescence_always_detected() {
    // Many short runs across worker counts; the 30 s deadline acts as the
    // hang detector — a correct run takes milliseconds.
    for round in 0..60 {
        let workers = 1 + round % 5;
        let report = NodeBuilder::new(tiny_program())
            .workers(workers)
            .launch(RunLimits::ages(3).with_deadline(std::time::Duration::from_secs(30)))
            .and_then(|n| n.wait())
            .unwrap();
        assert_eq!(
            report.termination,
            Termination::Quiescent,
            "round {round} with {workers} workers did not quiesce"
        );
    }
}

#[test]
fn quiescence_with_sourceless_completion() {
    // A program whose last action is a store-less kernel (print): the
    // final counter release is especially likely to land on a worker.
    for _ in 0..40 {
        let report = NodeBuilder::new(tiny_program())
            .workers(3)
            .launch(RunLimits::ages(1).with_deadline(std::time::Duration::from_secs(30)))
            .and_then(|n| n.wait())
            .unwrap();
        assert_eq!(report.termination, Termination::Quiescent);
    }
}

//! End-to-end tests of the structured tracing subsystem: trace presence
//! and gating, invariant certification on real runs, export formats, and
//! the per-kernel latency histograms fed by the same instrumentation path.

use p2g_field::Buffer;
use p2g_graph::spec::mul_sum_example;
use p2g_runtime::{NodeBuilder, Program, RunLimits, RunReport, TraceEvent};

fn build_program() -> Program {
    let mut program = Program::new(mul_sum_example()).unwrap();
    program.body("init", |ctx| {
        ctx.store(
            0,
            Buffer::from_vec((0..5).map(|i| i + 10).collect::<Vec<i32>>()),
        );
        Ok(())
    });
    program.body("mul2", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.body("plus5", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_add(5)]));
        Ok(())
    });
    program.body("print", |_| Ok(()));
    program
}

fn traced_run(ages: u64, workers: usize) -> RunReport {
    NodeBuilder::new(build_program())
        .workers(workers)
        .launch(RunLimits::ages(ages).with_trace())
        .and_then(|n| n.wait())
        .unwrap()
}

/// Tracing is off by default (without the `trace` feature) and on when
/// requested; the gate decides whether `RunReport::trace` is populated.
#[test]
fn trace_presence_follows_the_gate() {
    let on = traced_run(3, 2);
    let trace = on.trace.as_ref().expect("with_trace populates the trace");
    assert!(!trace.is_empty());

    #[cfg(not(feature = "trace"))]
    {
        let off = NodeBuilder::new(build_program())
            .workers(2)
            .launch(RunLimits::ages(3))
            .and_then(|n| n.wait())
            .unwrap();
        assert!(off.trace.is_none(), "tracing must stay opt-in");
    }
}

/// The reusable invariant suite certifies a clean run, and the trace
/// carries every phase of the execution model.
#[test]
fn invariants_and_counts_on_a_real_run() {
    let report = traced_run(4, 4);
    p2g_runtime::trace_check::all(&report);

    let trace = report.trace.as_ref().unwrap();
    assert_eq!(trace.dropped, 0);
    let counts = trace.counts();

    // Every instance the instruments saw is visible as dispatch + body
    // start/end events (no fusion in this program).
    let instances: u64 = ["init", "mul2", "plus5", "print"]
        .iter()
        .map(|k| report.instruments.kernel(k).unwrap().instances)
        .sum();
    assert_eq!(counts["InstanceDispatched"] as u64, instances);
    assert_eq!(counts["BodyStart"], counts["BodyEnd"]);
    assert_eq!(counts["BodyStart"] as u64, instances);
    assert!(counts["StoreApplied"] > 0);
    assert!(counts["AnalyzerBatch"] > 0);

    // Timestamps are monotone in the merged log.
    let ts: Vec<u64> = trace.records.iter().map(|r| r.ts_ns).collect();
    let mut sorted = ts.clone();
    sorted.sort();
    assert_eq!(ts, sorted);

    // Every BodyEnd in a clean run succeeded.
    assert!(trace.of_kind("BodyEnd").all(|r| match &r.event {
        TraceEvent::BodyEnd { ok, .. } => *ok,
        _ => unreachable!(),
    }));
}

/// JSONL export: one object per line, every `type` drawn from the event
/// schema vocabulary.
#[test]
fn jsonl_export_is_schema_clean() {
    let report = traced_run(3, 2);
    let trace = report.trace.as_ref().unwrap();
    let jsonl = trace.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), trace.len());
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        let kind = TraceEvent::KINDS
            .iter()
            .find(|k| line.contains(&format!("\"type\":\"{k}\"")));
        assert!(kind.is_some(), "unknown event type in: {line}");
    }
}

/// Chrome trace-event export: balanced duration pairs on every thread and
/// thread-name metadata for each buffer.
#[test]
fn chrome_export_has_balanced_spans() {
    let report = traced_run(3, 3);
    let trace = report.trace.as_ref().unwrap();
    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
    assert_eq!(
        json.matches("\"ph\":\"B\"").count(),
        json.matches("\"ph\":\"E\"").count()
    );
    for label in &trace.thread_labels {
        assert!(json.contains(&format!("\"name\":\"{label}\"")), "{label}");
    }
}

/// The latency histograms populated alongside the trace yield usable
/// quantiles for every kernel that ran.
#[test]
fn latency_histograms_are_populated()  {
    let report = traced_run(4, 2);
    for kernel in ["init", "mul2", "plus5", "print"] {
        let (p50, p95, p99) = report
            .instruments
            .latency_quantiles(kernel)
            .unwrap_or_else(|| panic!("{kernel} has no latency data"));
        assert!(p50.as_nanos() > 0, "{kernel} p50 empty");
        assert!(p95 >= p50 && p99 >= p95, "{kernel} quantiles not monotone");
    }
    // The histogram saw exactly as many samples as instances ran.
    let st = report.instruments.kernel("mul2").unwrap();
    assert_eq!(st.latency.count(), st.instances);
}

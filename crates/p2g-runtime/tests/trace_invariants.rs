//! End-to-end tests of the structured tracing subsystem: trace presence
//! and gating, invariant certification on real runs, export formats, and
//! the per-kernel latency histograms fed by the same instrumentation path.

use p2g_field::{Buffer, Extents, FieldDef, ScalarType};
use p2g_graph::spec::{
    mul_sum_example, AgeExpr, FetchDecl, IndexSel, IndexVar, KernelId, KernelSpec, ProgramSpec,
    StoreDecl,
};
use p2g_runtime::{NodeBuilder, Program, RunLimits, RunReport, TraceEvent};

fn build_program() -> Program {
    let mut program = Program::new(mul_sum_example()).unwrap();
    program.body("init", |ctx| {
        ctx.store(
            0,
            Buffer::from_vec((0..5).map(|i| i + 10).collect::<Vec<i32>>()),
        );
        Ok(())
    });
    program.body("mul2", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.body("plus5", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_add(5)]));
        Ok(())
    });
    program.body("print", |_| Ok(()));
    program
}

fn traced_run(ages: u64, workers: usize) -> RunReport {
    NodeBuilder::new(build_program())
        .workers(workers)
        .launch(RunLimits::ages(ages).with_trace())
        .and_then(|n| n.wait())
        .unwrap()
}

/// Tracing is off by default (without the `trace` feature) and on when
/// requested; the gate decides whether `RunReport::trace` is populated.
#[test]
fn trace_presence_follows_the_gate() {
    let on = traced_run(3, 2);
    let trace = on.trace.as_ref().expect("with_trace populates the trace");
    assert!(!trace.is_empty());

    #[cfg(not(feature = "trace"))]
    {
        let off = NodeBuilder::new(build_program())
            .workers(2)
            .launch(RunLimits::ages(3))
            .and_then(|n| n.wait())
            .unwrap();
        assert!(off.trace.is_none(), "tracing must stay opt-in");
    }
}

/// The reusable invariant suite certifies a clean run, and the trace
/// carries every phase of the execution model.
#[test]
fn invariants_and_counts_on_a_real_run() {
    let report = traced_run(4, 4);
    p2g_runtime::trace_check::all(&report);

    let trace = report.trace.as_ref().unwrap();
    assert_eq!(trace.dropped, 0);
    let counts = trace.counts();

    // Every instance the instruments saw is visible as dispatch + body
    // start/end events (no fusion in this program).
    let instances: u64 = ["init", "mul2", "plus5", "print"]
        .iter()
        .map(|k| report.instruments.kernel(k).unwrap().instances)
        .sum();
    assert_eq!(counts["InstanceDispatched"] as u64, instances);
    assert_eq!(counts["BodyStart"], counts["BodyEnd"]);
    assert_eq!(counts["BodyStart"] as u64, instances);
    assert!(counts["StoreApplied"] > 0);
    assert!(counts["AnalyzerBatch"] > 0);

    // Timestamps are monotone in the merged log.
    let ts: Vec<u64> = trace.records.iter().map(|r| r.ts_ns).collect();
    let mut sorted = ts.clone();
    sorted.sort();
    assert_eq!(ts, sorted);

    // Every BodyEnd in a clean run succeeded.
    assert!(trace.of_kind("BodyEnd").all(|r| match &r.event {
        TraceEvent::BodyEnd { ok, .. } => *ok,
        _ => unreachable!(),
    }));
}

/// A run on the single-analyzer path (`shards = 1`) satisfies the *strict*
/// dependency ordering — every dependency store appears at a strictly
/// earlier position in the merged trace than the dispatch it enables.
/// Sharded runs are only required to satisfy the relaxed per-(field, age)
/// form checked by `trace_check::all`; this pins the stronger single-queue
/// guarantee so it can't silently regress.
#[test]
fn single_shard_satisfies_strict_ordering() {
    let report = traced_run(4, 4);
    let trace = report.trace.as_ref().unwrap();
    p2g_runtime::trace_check::dependencies_respected_strict(trace);
}

/// The full invariant suite certifies a sharded run, and the sharded
/// instrumentation (per-shard event counts, queue peaks) is populated.
#[test]
fn invariants_hold_on_a_sharded_run() {
    let report = NodeBuilder::new(build_program())
        .workers(4)
        .launch(RunLimits::ages(6).with_trace().with_shards(4))
        .and_then(|n| n.wait())
        .unwrap();
    p2g_runtime::trace_check::all(&report);

    // The same instance space ran as on the single-shard path.
    let single = NodeBuilder::new(build_program())
        .workers(4)
        .launch(RunLimits::ages(6))
        .and_then(|n| n.wait())
        .unwrap();
    for k in ["init", "mul2", "plus5", "print"] {
        assert_eq!(
            report.instruments.kernel(k).unwrap().instances,
            single.instruments.kernel(k).unwrap().instances,
            "sharded run dispatched a different number of {k} instances"
        );
    }

    // Per-shard counters surfaced in the snapshot.
    let shard_events = report.instruments.shard_events();
    assert_eq!(shard_events.len(), 4);
    assert!(
        shard_events.iter().sum::<u64>() > 0,
        "sharded run recorded no per-shard events"
    );
    assert_eq!(report.instruments.shard_queue_peaks().len(), 4);
    assert!(report.instruments.render_table().contains("analyzer-0"));
}

/// A pointwise aging pipeline over statically-sized fields: each kernel
/// has exactly one single-point `Rel` fetch, so every store is
/// inline-eligible. `N` is the per-field element count.
fn pointwise_program(n: usize) -> Program {
    let mut spec = ProgramSpec::new();
    let f0 = spec.add_field(FieldDef::with_extents(
        "f0",
        ScalarType::I32,
        Extents::new([n]),
    ));
    let f1 = spec.add_field(FieldDef::with_extents(
        "f1",
        ScalarType::I32,
        Extents::new([n]),
    ));
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "seed".into(),
        index_vars: 0,
        has_age_var: false,
        fetches: vec![],
        stores: vec![StoreDecl {
            field: f0,
            age: AgeExpr::Const(0),
            dims: vec![IndexSel::All],
        }],
    });
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "twice".into(),
        index_vars: 1,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: f0,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
        stores: vec![StoreDecl {
            field: f1,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
    });
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "inc".into(),
        index_vars: 1,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: f1,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
        stores: vec![StoreDecl {
            field: f0,
            age: AgeExpr::Rel(1),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
    });
    let mut program = Program::new(spec).unwrap();
    program.body("seed", move |ctx| {
        ctx.store(0, Buffer::from_vec((0..n as i32).collect::<Vec<_>>()));
        Ok(())
    });
    program.body("twice", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_mul(2)]));
        Ok(())
    });
    program.body("inc", |ctx| {
        let v = ctx.input(0).value(0).as_i64() as i32;
        ctx.store(0, Buffer::from_vec(vec![v.wrapping_add(1)]));
        Ok(())
    });
    program
}

/// The worker-side inline fast path actually fires on an eligible
/// (pointwise, statically-sized) pipeline, the dispatched instance space
/// matches the analyzer-only run exactly, and every trace invariant still
/// holds — the tagged store events reconcile so nothing double-dispatches
/// (a duplicate would trip the write-once check).
#[test]
fn inline_fast_path_fires_and_stays_consistent() {
    const AGES: u64 = 6;
    const N: usize = 8;
    let baseline = NodeBuilder::new(pointwise_program(N))
        .workers(4)
        .launch(RunLimits::ages(AGES))
        .and_then(|n| n.wait())
        .unwrap();
    for (limits, label) in [
        (RunLimits::ages(AGES).with_shards(4), "shards=4"),
        (
            RunLimits::ages(AGES).with_inline_dispatch(),
            "shards=1 + inline",
        ),
    ] {
        let report = NodeBuilder::new(pointwise_program(N))
            .workers(4)
            .launch(limits.with_trace())
            .and_then(|n| n.wait())
            .unwrap();
        assert!(
            report.instruments.inline_dispatches() > 0,
            "{label}: inline fast path never fired on an eligible pipeline"
        );
        p2g_runtime::trace_check::all(&report);
        for k in ["seed", "twice", "inc"] {
            assert_eq!(
                report.instruments.kernel(k).unwrap().instances,
                baseline.instruments.kernel(k).unwrap().instances,
                "{label}: inline dispatch changed the {k} instance space"
            );
        }
    }
}

/// JSONL export: one object per line, every `type` drawn from the event
/// schema vocabulary.
#[test]
fn jsonl_export_is_schema_clean() {
    let report = traced_run(3, 2);
    let trace = report.trace.as_ref().unwrap();
    let jsonl = trace.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), trace.len());
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        let kind = TraceEvent::KINDS
            .iter()
            .find(|k| line.contains(&format!("\"type\":\"{k}\"")));
        assert!(kind.is_some(), "unknown event type in: {line}");
    }
}

/// Chrome trace-event export: balanced duration pairs on every thread and
/// thread-name metadata for each buffer.
#[test]
fn chrome_export_has_balanced_spans() {
    let report = traced_run(3, 3);
    let trace = report.trace.as_ref().unwrap();
    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
    assert_eq!(
        json.matches("\"ph\":\"B\"").count(),
        json.matches("\"ph\":\"E\"").count()
    );
    for label in &trace.thread_labels {
        assert!(json.contains(&format!("\"name\":\"{label}\"")), "{label}");
    }
}

/// The latency histograms populated alongside the trace yield usable
/// quantiles for every kernel that ran.
#[test]
fn latency_histograms_are_populated()  {
    let report = traced_run(4, 2);
    for kernel in ["init", "mul2", "plus5", "print"] {
        let (p50, p95, p99) = report
            .instruments
            .latency_quantiles(kernel)
            .unwrap_or_else(|| panic!("{kernel} has no latency data"));
        assert!(p50.as_nanos() > 0, "{kernel} p50 empty");
        assert!(p95 >= p50 && p99 >= p95, "{kernel} quantiles not monotone");
    }
    // The histogram saw exactly as many samples as instances ran.
    let st = report.instruments.kernel("mul2").unwrap();
    assert_eq!(st.latency.count(), st.instances);
}

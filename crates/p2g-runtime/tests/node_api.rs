//! Tests of the execution-node control surface: the start/join lifecycle,
//! remote-store injection, hold-open mode, stop requests, timers and field
//! extraction.

use std::time::Duration;

use p2g_field::{Age, Buffer, DimSel, Extents, FieldDef, Region, ScalarType, Value};
use p2g_graph::spec::{AgeExpr, FetchDecl, IndexSel, KernelId, KernelSpec, ProgramSpec, StoreDecl};
use p2g_runtime::instrument::Termination;
use p2g_runtime::{NodeBuilder, Program, RunLimits};

/// A consumer-only program: one kernel waits for `input`, doubles it into
/// `output`. Nothing local produces `input` — only remote stores can.
fn consumer_program() -> Program {
    let mut spec = ProgramSpec::new();
    let input = spec.add_field(FieldDef::with_extents(
        "input",
        ScalarType::I32,
        Extents::new([4]),
    ));
    let output = spec.add_field(FieldDef::with_extents(
        "output",
        ScalarType::I32,
        Extents::new([4]),
    ));
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "double".into(),
        index_vars: 0,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: input,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
        stores: vec![StoreDecl {
            field: output,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
    });
    let mut program = Program::new(spec).unwrap();
    program.body("double", |ctx| {
        let out: Vec<i32> = ctx
            .input(0)
            .as_i32()
            .unwrap()
            .iter()
            .map(|v| v * 2)
            .collect();
        ctx.store(0, Buffer::from_vec(out));
        Ok(())
    });
    program
}

#[test]
fn hold_open_node_processes_injected_stores() {
    let mut limits = RunLimits::ages(3);
    limits.hold_open = true;
    let running = NodeBuilder::new(consumer_program())
        .workers(2)
        .launch(limits)
        .unwrap();

    // Inject two ages of remote data.
    for age in 0..2u64 {
        running.inject_remote_store(
            p2g_field::FieldId(0),
            Age(age),
            Region::all(1),
            Buffer::from_vec(vec![1i32 + age as i32, 2, 3, 4]),
        );
    }

    // Wait until the node is locally quiescent again.
    let t0 = std::time::Instant::now();
    while running.outstanding() != 0 {
        assert!(t0.elapsed() < Duration::from_secs(10), "node never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    running.request_stop();
    let (report, fields) = running.join().unwrap();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(
        fields
            .fetch("output", Age(0), &Region::all(1))
            .unwrap()
            .as_i32()
            .unwrap(),
        &[2, 4, 6, 8]
    );
    assert_eq!(
        fields
            .fetch("output", Age(1), &Region::all(1))
            .unwrap()
            .as_i32()
            .unwrap(),
        &[4, 4, 6, 8]
    );
    assert_eq!(report.instruments.kernel("double").unwrap().instances, 2);
}

#[test]
fn node_without_sources_quiesces_immediately_when_not_held_open() {
    let report = NodeBuilder::new(consumer_program())
        .workers(1)
        .launch(RunLimits::ages(3))
        .and_then(|n| n.wait())
        .unwrap();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(report.instruments.kernel("double").unwrap().instances, 0);
}

#[test]
fn request_stop_interrupts_held_open_node() {
    let mut limits = RunLimits::unbounded();
    limits.hold_open = true;
    let running = NodeBuilder::new(consumer_program())
        .workers(1)
        .launch(limits)
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    running.request_stop();
    let (report, _) = running.join().unwrap();
    assert_eq!(report.termination, Termination::Quiescent);
}

#[test]
fn field_store_accessors() {
    let mut spec = ProgramSpec::new();
    let f = spec.add_field(FieldDef::with_extents(
        "data",
        ScalarType::F64,
        Extents::new([2, 2]),
    ));
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "src".into(),
        index_vars: 0,
        has_age_var: false,
        fetches: vec![],
        stores: vec![StoreDecl {
            field: f,
            age: AgeExpr::Const(0),
            dims: vec![IndexSel::All, IndexSel::All],
        }],
    });
    let mut program = Program::new(spec).unwrap();
    program.body("src", |ctx| {
        ctx.store(
            0,
            Buffer::from_vec(vec![1.0f64, 2.0, 3.0, 4.0])
                .reshape(Extents::new([2, 2]))
                .unwrap(),
        );
        Ok(())
    });
    let (_, fields) = NodeBuilder::new(program)
        .workers(1)
        .launch(RunLimits::unbounded())
        .and_then(|n| n.collect())
        .unwrap();

    assert_eq!(
        fields.fetch_element("data", Age(0), &[1, 0]),
        Some(Value::F64(3.0))
    );
    assert!(fields.fetch_element("nope", Age(0), &[0, 0]).is_none());
    let row = fields
        .fetch("data", Age(0), &Region(vec![DimSel::Index(1), DimSel::All]))
        .unwrap();
    assert_eq!(row.as_f64().unwrap(), &[3.0, 4.0]);
    let by_name = fields.field_by_name("data").unwrap();
    assert!(by_name.is_complete(Age(0)));
    assert_eq!(fields.field(f).name(), "data");
}

#[test]
fn timers_reachable_from_bodies() {
    let mut spec = ProgramSpec::new();
    let f = spec.add_field(FieldDef::with_extents(
        "out",
        ScalarType::I32,
        Extents::new([1]),
    ));
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "probe".into(),
        index_vars: 0,
        has_age_var: false,
        fetches: vec![],
        stores: vec![StoreDecl {
            field: f,
            age: AgeExpr::Const(0),
            dims: vec![IndexSel::All],
        }],
    });
    let mut program = Program::new(spec).unwrap();
    program.timers().declare("watchdog");
    program.body("probe", |ctx| {
        // Fresh timer: not expired with a generous timeout; expired with a
        // zero timeout after a tiny sleep.
        let fresh = !ctx.deadline_expired("watchdog", Duration::from_secs(60));
        std::thread::sleep(Duration::from_millis(2));
        let expired = ctx.deadline_expired("watchdog", Duration::from_millis(1));
        ctx.reset_timer("watchdog");
        let reset_ok = !ctx.deadline_expired("watchdog", Duration::from_millis(500));
        let all = fresh && expired && reset_ok;
        ctx.store_value(0, Value::I32(all as i32));
        Ok(())
    });
    let (_, fields) = NodeBuilder::new(program)
        .workers(1)
        .launch(RunLimits::unbounded())
        .and_then(|n| n.collect())
        .unwrap();
    assert_eq!(
        fields.fetch_element("out", Age(0), &[0]),
        Some(Value::I32(1))
    );
}

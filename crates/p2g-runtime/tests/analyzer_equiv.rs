//! Property test of the incremental dependency analyzer against the
//! enumerate-and-check oracle.
//!
//! The incremental path (pending tables + counter decrements + gates) must
//! dispatch exactly the instances the slow path derives from field ground
//! truth — for any program shape it covers, any store order, any partial
//! coverage, and any duplicated event delivery. The oracle is a *fresh*
//! analyzer over the same fields driven through `Event::Reassign`, which
//! resynchronizes views from the fields and dispatches via the
//! enumerate-and-check path.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use p2g_field::{Age, Extents, Field, FieldDef, FieldId, Region, ScalarType, Value};
use p2g_graph::spec::{AgeExpr, FetchDecl, IndexSel, IndexVar, KernelSpec};
use p2g_graph::{KernelId, ProgramSpec};
use p2g_runtime::analyzer::{DependencyAnalyzer, SharedFields};
use p2g_runtime::events::{Event, StoreEvent};
use p2g_runtime::{KernelOptions, RunLimits, ShardGc, ShardPlan};

/// Pure-consumer program exercising every fetch shape the analyzer
/// classifies: pointwise, row-like, whole-field, constant-age, and the
/// ineligible constant-index + whole-dimension mix (oracle fallback).
fn consumer_spec(n0: usize, n1: usize, n2: usize) -> ProgramSpec {
    let mut spec = ProgramSpec::new();
    let f0 = spec.add_field(FieldDef::with_extents(
        "f0",
        ScalarType::I32,
        Extents::new([n0]),
    ));
    let f1 = spec.add_field(FieldDef::with_extents(
        "f1",
        ScalarType::I32,
        Extents::new([n1, n2]),
    ));
    let fetch = |field: FieldId, age: AgeExpr, dims: Vec<IndexSel>| FetchDecl { field, age, dims };
    let kernel = |name: &str, index_vars: u8, fetches: Vec<FetchDecl>| KernelSpec {
        id: KernelId(0),
        name: name.into(),
        index_vars,
        has_age_var: true,
        fetches,
        stores: vec![],
    };
    spec.add_kernel(kernel(
        "k_point",
        1,
        vec![fetch(f0, AgeExpr::Rel(0), vec![IndexSel::Var(IndexVar(0))])],
    ));
    spec.add_kernel(kernel(
        "k_row",
        1,
        vec![fetch(
            f1,
            AgeExpr::Rel(0),
            vec![IndexSel::Var(IndexVar(0)), IndexSel::All],
        )],
    ));
    spec.add_kernel(kernel(
        "k_whole",
        0,
        vec![
            fetch(f0, AgeExpr::Rel(0), vec![IndexSel::All]),
            fetch(f1, AgeExpr::Rel(0), vec![IndexSel::All, IndexSel::All]),
        ],
    ));
    spec.add_kernel(kernel(
        "k_cell",
        2,
        vec![
            fetch(f0, AgeExpr::Const(0), vec![IndexSel::Var(IndexVar(0))]),
            fetch(
                f1,
                AgeExpr::Rel(0),
                vec![IndexSel::Var(IndexVar(0)), IndexSel::Var(IndexVar(1))],
            ),
        ],
    ));
    spec.add_kernel(kernel(
        "k_inel",
        0,
        vec![fetch(
            f1,
            AgeExpr::Rel(0),
            vec![IndexSel::Const(0), IndexSel::All],
        )],
    ));
    spec
}

fn make_analyzer(spec: &Arc<ProgramSpec>, fields: &SharedFields, ages: u64) -> DependencyAnalyzer {
    DependencyAnalyzer::new(
        spec.clone(),
        vec![KernelOptions::default(); spec.kernels.len()],
        HashSet::new(),
        fields.clone(),
        RunLimits::ages(ages),
    )
}

fn make_fields(spec: &Arc<ProgramSpec>) -> SharedFields {
    Arc::new(
        spec.fields
            .iter()
            .enumerate()
            .map(|(i, d)| parking_lot::RwLock::new(Field::new(FieldId(i as u32), d.clone())))
            .collect(),
    )
}

/// Flatten dispatch units into (kernel, age, indices) instance tuples.
fn instances_of(units: &[p2g_runtime::instance::DispatchUnit]) -> Vec<(u32, u64, Vec<usize>)> {
    units
        .iter()
        .flat_map(|u| {
            u.instances
                .iter()
                .map(move |idx| (u.kernel.0, u.age.0, idx.clone()))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Feed a random subset of element stores in random order (with random
    /// duplicate event deliveries) through the incremental analyzer; the
    /// set of dispatched instances must equal the oracle's, and nothing
    /// may be dispatched twice.
    #[test]
    fn incremental_matches_rescan_oracle(
        n0 in 1usize..5,
        n1 in 1usize..4,
        n2 in 1usize..4,
        ages in 1u64..4,
        subset_seed in any::<u64>(),
        keep_num in 0u32..=100,
        dup_mask in any::<u64>(),
        order in any::<u64>(),
    ) {
        let spec = Arc::new(consumer_spec(n0, n1, n2));
        let fields = make_fields(&spec);
        let mut incremental = make_analyzer(&spec, &fields, ages);
        let mut inc_units = incremental.seed();

        // Enumerate the candidate stores: every element of both fields at
        // every age, keep a pseudo-random subset, shuffle.
        let mut stores: Vec<(u32, u64, Vec<usize>)> = Vec::new();
        for a in 0..ages {
            for x in 0..n0 {
                stores.push((0, a, vec![x]));
            }
            for y in 0..n1 {
                for z in 0..n2 {
                    stores.push((1, a, vec![y, z]));
                }
            }
        }
        let mut keep: Vec<(u32, u64, Vec<usize>)> = stores
            .into_iter()
            .enumerate()
            .filter(|(i, _)| {
                // Cheap splitmix-style hash for subset selection.
                let mut h = subset_seed ^ (*i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                h ^= h >> 31;
                h = h.wrapping_mul(0xBF58476D1CE4E5B9);
                (h % 100) < keep_num as u64
            })
            .map(|(_, s)| s)
            .collect();
        // Fisher–Yates with the perturbed order seed.
        let mut state = order;
        for i in (1..keep.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            keep.swap(i, (state as usize) % (i + 1));
        }

        for (i, (fid, a, idx)) in keep.iter().enumerate() {
            let ev = {
                let mut field = fields[*fid as usize].write();
                let region = Region::point(idx);
                let out = field
                    .store_element(Age(*a), idx, Value::I32(i as i32))
                    .unwrap();
                let extents = field.extents(Age(*a)).cloned().unwrap();
                Event::Store(StoreEvent {
                    field: FieldId(*fid),
                    age: Age(*a),
                    region: region.resolved_against(&extents),
                    extents,
                    elements: out.stored,
                    age_complete: out.age_complete,
                    resized: out.resized,
                    inline_dispatched: None,
                })
            };
            inc_units.extend(incremental.on_event(&ev).unwrap());
            // Duplicate delivery of some events: must be absorbed.
            if dup_mask & (1 << (i % 64)) != 0 {
                inc_units.extend(incremental.on_event(&ev).unwrap());
            }
        }

        // Oracle: fresh analyzer over the same fields, resynchronized via
        // Reassign (rescan path).
        let mut oracle = make_analyzer(&spec, &fields, ages);
        let all: HashSet<KernelId> = spec.kernels.iter().map(|k| k.id).collect();
        let oracle_units = oracle.on_event(&Event::Reassign { kernels: all }).unwrap();

        let mut got = instances_of(&inc_units);
        let mut want = instances_of(&oracle_units);
        let got_len = got.len();
        got.sort();
        got.dedup();
        prop_assert_eq!(got.len(), got_len, "incremental dispatched a duplicate instance");
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Drive the same storm through N shard-scoped analyzers: each store
    /// is delivered (in a deterministic single-thread interleaving) to
    /// exactly the shards the [`ShardPlan`] routes it to, expectation
    /// broadcasts are forwarded to every peer as the node's analyzer loop
    /// does, and the union of dispatched instances must equal the rescan
    /// oracle's — nothing missed, nothing dispatched twice.
    #[test]
    fn sharded_union_matches_rescan_oracle(
        n0 in 1usize..5,
        n1 in 1usize..4,
        n2 in 1usize..4,
        ages in 1u64..4,
        shards in 2usize..5,
        subset_seed in any::<u64>(),
        keep_num in 0u32..=100,
        dup_mask in any::<u64>(),
        order in any::<u64>(),
    ) {
        let spec = Arc::new(consumer_spec(n0, n1, n2));
        let fields = make_fields(&spec);
        let options = vec![KernelOptions::default(); spec.kernels.len()];
        let plan = Arc::new(ShardPlan::new(
            &spec,
            &options,
            &HashSet::new(),
            &HashSet::new(),
            shards,
        ));
        let gc = Arc::new(ShardGc::new(spec.kernels.len(), spec.fields.len(), shards));
        let mut analyzers: Vec<DependencyAnalyzer> = (0..shards)
            .map(|s| {
                let mut an = make_analyzer(&spec, &fields, ages);
                an.set_shard_scope(plan.clone(), s, gc.clone());
                an
            })
            .collect();
        let mut units = Vec::new();
        for an in analyzers.iter_mut() {
            units.extend(an.seed());
        }

        let mut stores: Vec<(u32, u64, Vec<usize>)> = Vec::new();
        for a in 0..ages {
            for x in 0..n0 {
                stores.push((0, a, vec![x]));
            }
            for y in 0..n1 {
                for z in 0..n2 {
                    stores.push((1, a, vec![y, z]));
                }
            }
        }
        let mut keep: Vec<(u32, u64, Vec<usize>)> = stores
            .into_iter()
            .enumerate()
            .filter(|(i, _)| {
                let mut h = subset_seed ^ (*i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                h ^= h >> 31;
                h = h.wrapping_mul(0xBF58476D1CE4E5B9);
                (h % 100) < keep_num as u64
            })
            .map(|(_, s)| s)
            .collect();
        let mut state = order;
        for i in (1..keep.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            keep.swap(i, (state as usize) % (i + 1));
        }

        // Deliver each event to its destination shards (a valid
        // linearization of the runtime's per-shard FIFO channels, where
        // expectation broadcasts always precede later stores).
        let deliver = |analyzers: &mut Vec<DependencyAnalyzer>,
                           units: &mut Vec<p2g_runtime::instance::DispatchUnit>,
                           ev: &Event,
                           fid: u32,
                           a: u64| {
            let mut mask = plan.store_dests(FieldId(fid), a);
            let mut s = 0usize;
            while mask != 0 {
                if mask & 1 != 0 {
                    units.extend(analyzers[s].on_event(ev).unwrap());
                    for bc in analyzers[s].take_outbox() {
                        for (p, peer) in analyzers.iter_mut().enumerate() {
                            if p != s {
                                units.extend(peer.on_event(&bc).unwrap());
                            }
                        }
                    }
                }
                mask >>= 1;
                s += 1;
            }
        };
        for (i, (fid, a, idx)) in keep.iter().enumerate() {
            let ev = {
                let mut field = fields[*fid as usize].write();
                let region = Region::point(idx);
                let out = field
                    .store_element(Age(*a), idx, Value::I32(i as i32))
                    .unwrap();
                let extents = field.extents(Age(*a)).cloned().unwrap();
                Event::Store(StoreEvent {
                    field: FieldId(*fid),
                    age: Age(*a),
                    region: region.resolved_against(&extents),
                    extents,
                    elements: out.stored,
                    age_complete: out.age_complete,
                    resized: out.resized,
                    inline_dispatched: None,
                })
            };
            deliver(&mut analyzers, &mut units, &ev, *fid, *a);
            if dup_mask & (1 << (i % 64)) != 0 {
                deliver(&mut analyzers, &mut units, &ev, *fid, *a);
            }
        }

        let mut oracle = make_analyzer(&spec, &fields, ages);
        let all: HashSet<KernelId> = spec.kernels.iter().map(|k| k.id).collect();
        let oracle_units = oracle.on_event(&Event::Reassign { kernels: all }).unwrap();

        let mut got = instances_of(&units);
        let mut want = instances_of(&oracle_units);
        let got_len = got.len();
        got.sort();
        got.dedup();
        prop_assert_eq!(got.len(), got_len, "sharded analyzers dispatched a duplicate instance");
        want.sort();
        prop_assert_eq!(got, want);
    }
}

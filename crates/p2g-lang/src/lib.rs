//! The P2G kernel language: lexer, parser, semantic analysis and an
//! interpreter for embedded native code blocks.
//!
//! The paper exposes P2G through a C-like kernel language (Figure 5):
//! field definitions with an `age` marker, kernel definitions made of
//! `age`/`index`/`local` declarations, `fetch`/`store` statements, and
//! native code blocks in `%{ ... %}`. The paper's compiler emitted C++
//! linked against the runtime; here the native blocks are executed by a
//! small interpreter instead (see DESIGN.md's substitution table), which
//! keeps the language fully self-contained while driving the identical
//! runtime code paths.
//!
//! ```
//! use p2g_lang::compile_source;
//! use p2g_runtime::{NodeBuilder, RunLimits};
//!
//! let src = r#"
//! int32[] m_data age;
//! int32[] p_data age;
//!
//! init:
//!   local int32[] values;
//!   %{
//!     int i = 0;
//!     for (; i < 5; ++i) put(values, i + 10, i);
//!   %}
//!   store m_data(0) = values;
//!
//! mul2:
//!   age a; index x;
//!   local int32 value;
//!   fetch value = m_data(a)[x];
//!   %{ value = value * 2; %}
//!   store p_data(a)[x] = value;
//!
//! plus5:
//!   age a; index x;
//!   local int32 value;
//!   fetch value = p_data(a)[x];
//!   %{ value = value + 5; %}
//!   store m_data(a+1)[x] = value;
//! "#;
//! let compiled = compile_source(src).unwrap();
//! let report = NodeBuilder::new(compiled.program)
//!     .workers(2)
//!     .launch(RunLimits::ages(2))
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! assert_eq!(report.instruments.kernel("mul2").unwrap().instances, 10);
//! ```

pub mod ast;
pub mod compile;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use compile::{compile_source, CompiledProgram, PrintSink};
pub use error::LangError;
pub use parser::parse;

//! Recursive-descent parser for the kernel language.

use p2g_field::ScalarType;

use crate::ast::*;
use crate::error::{LangError, Pos};
use crate::lexer::lex;
use crate::token::{Spanned, Tok};

/// Parse a kernel-language source file.
pub fn parse(src: &str) -> Result<SourceUnit, LangError> {
    let toks = lex(src)?;
    Parser { toks, i: 0 }.source_unit()
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.i + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<(), LangError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(LangError::parse(
                self.pos(),
                format!(
                    "expected {}, found {}",
                    want.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(LangError::parse(
                self.pos(),
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    fn source_unit(&mut self) -> Result<SourceUnit, LangError> {
        let mut unit = SourceUnit::default();
        loop {
            match self.peek().clone() {
                Tok::Eof => return Ok(unit),
                Tok::KwTimer => {
                    self.bump();
                    unit.timers.push(self.ident()?);
                    self.eat(&Tok::Semi)?;
                }
                Tok::Type(ty) => {
                    self.bump();
                    unit.fields.push(self.field_decl(ty)?);
                }
                Tok::Ident(_) if *self.peek2() == Tok::Colon => {
                    unit.kernels.push(self.kernel_def()?);
                }
                other => {
                    return Err(LangError::parse(
                        self.pos(),
                        format!(
                            "expected field, timer or kernel definition, found {}",
                            other.describe()
                        ),
                    ))
                }
            }
        }
    }

    /// `int32[] m_data age;` — the type keyword is already consumed.
    fn field_decl(&mut self, ty: ScalarType) -> Result<FieldDecl, LangError> {
        let mut dims = Vec::new();
        while *self.peek() == Tok::LBracket {
            self.bump();
            let extent = match self.peek().clone() {
                Tok::Int(n) if n >= 0 => {
                    self.bump();
                    Some(n as usize)
                }
                _ => None,
            };
            self.eat(&Tok::RBracket)?;
            dims.push(extent);
        }
        if dims.is_empty() {
            return Err(LangError::parse(
                self.pos(),
                "field declarations need at least one [] dimension",
            ));
        }
        let name = self.ident()?;
        let aged = if *self.peek() == Tok::KwAge {
            self.bump();
            true
        } else {
            false
        };
        self.eat(&Tok::Semi)?;
        Ok(FieldDecl {
            name,
            ty,
            dims,
            aged,
        })
    }

    fn kernel_def(&mut self) -> Result<KernelDef, LangError> {
        let name = self.ident()?;
        self.eat(&Tok::Colon)?;
        let mut k = KernelDef {
            name,
            age_var: None,
            index_vars: Vec::new(),
            locals: Vec::new(),
            body: Vec::new(),
        };
        loop {
            match self.peek().clone() {
                // A new kernel starts (ident ':') or the file ends.
                Tok::Eof => return Ok(k),
                Tok::Ident(_) if *self.peek2() == Tok::Colon => return Ok(k),
                Tok::KwAge => {
                    self.bump();
                    let v = self.ident()?;
                    if k.age_var.is_some() {
                        return Err(LangError::parse(self.pos(), "duplicate age declaration"));
                    }
                    k.age_var = Some(v);
                    self.eat(&Tok::Semi)?;
                }
                Tok::KwIndex => {
                    self.bump();
                    k.index_vars.push(self.ident()?);
                    self.eat(&Tok::Semi)?;
                }
                Tok::KwLocal => {
                    self.bump();
                    let ty = match self.bump() {
                        Tok::Type(t) => t,
                        other => {
                            return Err(LangError::parse(
                                self.pos(),
                                format!("expected type after 'local', found {}", other.describe()),
                            ))
                        }
                    };
                    let mut dims = 0;
                    while *self.peek() == Tok::LBracket {
                        self.bump();
                        self.eat(&Tok::RBracket)?;
                        dims += 1;
                    }
                    let name = self.ident()?;
                    self.eat(&Tok::Semi)?;
                    k.locals.push(LocalDecl { name, ty, dims });
                }
                Tok::KwFetch => {
                    self.bump();
                    let target = self.ident()?;
                    self.eat(&Tok::Assign)?;
                    let (field, age, subscripts) = self.field_ref()?;
                    self.eat(&Tok::Semi)?;
                    k.body.push(KernelStmt::Fetch {
                        target,
                        field,
                        age,
                        subscripts,
                    });
                }
                Tok::KwStore => {
                    self.bump();
                    let (field, age, subscripts) = self.field_ref()?;
                    self.eat(&Tok::Assign)?;
                    let value = self.ident()?;
                    self.eat(&Tok::Semi)?;
                    k.body.push(KernelStmt::Store {
                        field,
                        age,
                        subscripts,
                        value,
                    });
                }
                Tok::BlockOpen => {
                    self.bump();
                    let mut stmts = Vec::new();
                    while *self.peek() != Tok::BlockClose {
                        if *self.peek() == Tok::Eof {
                            return Err(LangError::parse(self.pos(), "unterminated %{ block"));
                        }
                        stmts.push(self.stmt()?);
                    }
                    self.bump();
                    k.body.push(KernelStmt::Native(stmts));
                }
                other => {
                    return Err(LangError::parse(
                        self.pos(),
                        format!("unexpected {} in kernel body", other.describe()),
                    ))
                }
            }
        }
    }

    /// `m_data(a+1)[x][*]`
    fn field_ref(&mut self) -> Result<(String, AgeRef, Vec<Subscript>), LangError> {
        let field = self.ident()?;
        self.eat(&Tok::LParen)?;
        let age = match self.bump() {
            Tok::Int(n) if n >= 0 => AgeRef::Const(n as u64),
            Tok::Ident(var) => {
                if *self.peek() == Tok::Plus {
                    self.bump();
                    match self.bump() {
                        Tok::Int(d) => AgeRef::Rel { var, delta: d },
                        other => {
                            return Err(LangError::parse(
                                self.pos(),
                                format!("expected integer age delta, found {}", other.describe()),
                            ))
                        }
                    }
                } else {
                    AgeRef::Rel { var, delta: 0 }
                }
            }
            other => {
                return Err(LangError::parse(
                    self.pos(),
                    format!("expected age expression, found {}", other.describe()),
                ))
            }
        };
        self.eat(&Tok::RParen)?;
        let mut subs = Vec::new();
        while *self.peek() == Tok::LBracket {
            self.bump();
            if *self.peek() == Tok::Star {
                self.bump();
                subs.push(Subscript::All);
            } else {
                subs.push(Subscript::Expr(self.expr()?));
            }
            self.eat(&Tok::RBracket)?;
        }
        Ok((field, age, subs))
    }

    // ---- native-block statements ------------------------------------

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while *self.peek() != Tok::RBrace {
                    if *self.peek() == Tok::Eof {
                        return Err(LangError::parse(self.pos(), "unterminated block"));
                    }
                    stmts.push(self.stmt()?);
                }
                self.bump();
                Ok(Stmt::Block(stmts))
            }
            Tok::Type(ty) => {
                self.bump();
                let name = self.ident()?;
                let init = if *self.peek() == Tok::Assign {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Decl { ty, name, init })
            }
            Tok::KwIf => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if *self.peek() == Tok::KwElse {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(Stmt::While {
                    cond,
                    body: Box::new(self.stmt()?),
                })
            }
            Tok::KwFor => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let init = if *self.peek() == Tok::Semi {
                    self.bump();
                    None
                } else {
                    let s = match self.peek().clone() {
                        Tok::Type(ty) => {
                            self.bump();
                            let name = self.ident()?;
                            let init = if *self.peek() == Tok::Assign {
                                self.bump();
                                Some(self.expr()?)
                            } else {
                                None
                            };
                            Stmt::Decl { ty, name, init }
                        }
                        _ => Stmt::Expr(self.expr()?),
                    };
                    self.eat(&Tok::Semi)?;
                    Some(Box::new(s))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::RParen)?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body: Box::new(self.stmt()?),
                })
            }
            Tok::KwBreak => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::KwContinue => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Continue)
            }
            Tok::KwReturn => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Return)
            }
            _ => {
                let e = self.expr()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    // ---- expressions (precedence climbing) ---------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, LangError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Assign => AssignOp::Set,
            Tok::PlusAssign => AssignOp::Add,
            Tok::MinusAssign => AssignOp::Sub,
            Tok::StarAssign => AssignOp::Mul,
            Tok::SlashAssign => AssignOp::Div,
            _ => return Ok(lhs),
        };
        let pos = self.pos();
        self.bump();
        let target = match lhs {
            Expr::Var(name) => name,
            _ => {
                return Err(LangError::parse(
                    pos,
                    "assignment target must be a variable (use put() for array elements)",
                ))
            }
        };
        let value = Box::new(self.assignment()?);
        Ok(Expr::Assign { target, op, value })
    }

    fn ternary(&mut self) -> Result<Expr, LangError> {
        let cond = self.or_expr()?;
        if *self.peek() != Tok::Question {
            return Ok(cond);
        }
        self.bump();
        let then_val = Box::new(self.expr()?);
        self.eat(&Tok::Colon)?;
        let else_val = Box::new(self.expr()?);
        Ok(Expr::Ternary {
            cond: Box::new(cond),
            then_val,
            else_val,
        })
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(self.and_expr()?),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.equality()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(self.equality()?),
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                _ => return Ok(lhs),
            };
            self.bump();
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(self.relational()?),
            };
        }
    }

    fn relational(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Gt => BinOp::Gt,
                Tok::Le => BinOp::Le,
                Tok::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(self.additive()?),
            };
        }
    }

    fn additive(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(self.multiplicative()?),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(self.unary()?),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let op = match self.peek() {
            Tok::Minus => UnaryOp::Neg,
            Tok::Not => UnaryOp::Not,
            Tok::PlusPlus => UnaryOp::PreInc,
            Tok::MinusMinus => UnaryOp::PreDec,
            _ => return self.postfix(),
        };
        self.bump();
        Ok(Expr::Unary {
            op,
            expr: Box::new(self.unary()?),
        })
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let e = self.primary()?;
        match self.peek() {
            Tok::PlusPlus | Tok::MinusMinus => {
                let inc = *self.peek() == Tok::PlusPlus;
                let pos = self.pos();
                match e {
                    Expr::Var(target) => {
                        self.bump();
                        Ok(Expr::PostIncDec { target, inc })
                    }
                    _ => Err(LangError::parse(pos, "++/-- needs a variable")),
                }
            }
            _ => Ok(e),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(LangError::parse(
                self.pos(),
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MUL_SUM: &str = r#"
int32[] m_data age;
int32[] p_data age;

init:
  local int32[] values;
  %{
    int i = 0;
    for (; i < 5; ++i) put(values, i + 10, i);
  %}
  store m_data(0) = values;

mul2:
  age a;
  index x;
  local int32 value;
  fetch value = m_data(a)[x];
  %{ value *= 2; %}
  store p_data(a)[x] = value;

plus5:
  age a;
  index x;
  local int32 value;
  fetch value = p_data(a)[x];
  %{ value += 5; %}
  store m_data(a+1)[x] = value;

print:
  age a;
  local int32[] m;
  local int32[] p;
  fetch m = m_data(a);
  fetch p = p_data(a);
  %{
    for (int i = 0; i < extent(m, 0); ++i) print(get(m, i));
    println();
    for (int i = 0; i < extent(p, 0); ++i) print(get(p, i));
    println();
  %}
"#;

    #[test]
    fn parses_figure5_program() {
        let unit = parse(MUL_SUM).unwrap();
        assert_eq!(unit.fields.len(), 2);
        assert_eq!(unit.kernels.len(), 4);
        assert_eq!(unit.kernels[0].name, "init");
        assert_eq!(unit.kernels[1].age_var, Some("a".into()));
        assert_eq!(unit.kernels[1].index_vars, vec!["x".to_string()]);
    }

    #[test]
    fn field_decl_with_extents() {
        let unit = parse("uint8[1584][64] y_input age;").unwrap();
        let f = &unit.fields[0];
        assert_eq!(f.dims, vec![Some(1584), Some(64)]);
        assert!(f.aged);
        assert_eq!(f.ty, ScalarType::U8);
    }

    #[test]
    fn timer_decl() {
        let unit = parse("timer t1;").unwrap();
        assert_eq!(unit.timers, vec!["t1".to_string()]);
    }

    #[test]
    fn fetch_store_shapes() {
        let unit = parse(
            "int32[][] f age;\nk:\n age a; index x;\n local int32[] row;\n fetch row = f(a)[x][*];\n store f(a+1)[x][*] = row;",
        )
        .unwrap();
        let k = &unit.kernels[0];
        match &k.body[0] {
            KernelStmt::Fetch {
                field,
                age,
                subscripts,
                ..
            } => {
                assert_eq!(field, "f");
                assert_eq!(
                    *age,
                    AgeRef::Rel {
                        var: "a".into(),
                        delta: 0
                    }
                );
                assert_eq!(subscripts.len(), 2);
                assert!(matches!(subscripts[1], Subscript::All));
            }
            other => panic!("expected fetch, got {other:?}"),
        }
        match &k.body[1] {
            KernelStmt::Store { age, .. } => {
                assert_eq!(
                    *age,
                    AgeRef::Rel {
                        var: "a".into(),
                        delta: 1
                    }
                );
            }
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let unit = parse("k:\n %{ int x = 1 + 2 * 3; %}").unwrap();
        match &unit.kernels[0].body[0] {
            KernelStmt::Native(stmts) => match &stmts[0] {
                Stmt::Decl {
                    init: Some(Expr::Binary { op, rhs, .. }),
                    ..
                } => {
                    assert_eq!(*op, BinOp::Add);
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary_and_logic() {
        parse("k:\n %{ int x = a < b && c != 0 ? 1 : 0; %}").unwrap();
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = parse("int32[] ;").unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }), "{err}");
        let err = parse("k:\n fetch = f(a);").unwrap_err();
        assert!(err.to_string().contains("identifier"), "{err}");
    }

    #[test]
    fn rejects_assignment_to_call() {
        let err = parse("k:\n %{ get(a, 0) = 1; %}").unwrap_err();
        assert!(err.to_string().contains("assignment target"), "{err}");
    }

    #[test]
    fn if_else_while_break() {
        parse("k:\n %{ while (1) { if (x > 3) break; else x++; } %}").unwrap();
    }
}

//! The native-block interpreter.
//!
//! The paper embeds C/C++ in `%{ ... %}` blocks and compiles them natively;
//! this interpreter executes the same blocks directly (see the substitution
//! table in DESIGN.md). Semantics follow C where applicable: lexical
//! scoping, integer/float promotion, short-circuit logic, pre/post
//! increment. Arrays are accessed through `get`/`put`/`extent` builtins
//! exactly as the paper's Figure-5 listing does.

use std::collections::HashMap;

use p2g_field::{Buffer, Extents, Region, ScalarType, Value};
use p2g_runtime::KernelCtx;

use crate::ast::{AssignOp, BinOp, Expr, Stmt, UnaryOp};
use crate::compile::PrintSink;
use crate::sema::{BodyStep, KernelPlan};

/// A runtime array value.
#[derive(Debug, Clone)]
pub struct ArrayVal {
    pub ty: ScalarType,
    pub extents: Vec<usize>,
    /// Canonicalized element values (I64 for integer types, F64 for
    /// floats); cast to `ty` at field boundaries.
    pub data: Vec<f64>,
}

impl ArrayVal {
    fn empty(ty: ScalarType, dims: usize) -> ArrayVal {
        ArrayVal {
            ty,
            extents: vec![0; dims.max(1)],
            data: Vec::new(),
        }
    }

    fn from_buffer(buf: &Buffer) -> ArrayVal {
        ArrayVal {
            ty: buf.scalar_type(),
            extents: buf.shape().0.clone(),
            data: (0..buf.len()).map(|i| buf.value(i).as_f64()).collect(),
        }
    }

    fn to_buffer(&self, ty: ScalarType) -> Buffer {
        let mut buf = Buffer::zeroed(ty, Extents::new(self.extents.clone()));
        for (i, &v) in self.data.iter().enumerate() {
            let val = Value::F64(v).cast(ty);
            buf.set_value(i, val).expect("cast to target type");
        }
        buf
    }

    fn linearize(&self, idx: &[usize]) -> Option<usize> {
        Extents::new(self.extents.clone()).linearize(idx)
    }
}

/// A scalar slot canonicalized to i64 or f64 depending on its declared
/// type.
#[derive(Debug, Clone)]
pub enum RtVal {
    Int(i64),
    Float(f64),
    Str(String),
    Array(ArrayVal),
}

impl RtVal {
    fn type_name(&self) -> &'static str {
        match self {
            RtVal::Int(_) => "int",
            RtVal::Float(_) => "float",
            RtVal::Str(_) => "string",
            RtVal::Array(_) => "array",
        }
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            RtVal::Int(v) => Ok(*v as f64),
            RtVal::Float(v) => Ok(*v),
            other => Err(format!("expected number, got {}", other.type_name())),
        }
    }

    fn as_i64(&self) -> Result<i64, String> {
        match self {
            RtVal::Int(v) => Ok(*v),
            RtVal::Float(v) => Ok(*v as i64),
            other => Err(format!("expected number, got {}", other.type_name())),
        }
    }

    fn truthy(&self) -> Result<bool, String> {
        Ok(self.as_f64()? != 0.0)
    }

    fn display(&self) -> String {
        match self {
            RtVal::Int(v) => v.to_string(),
            RtVal::Float(v) => format!("{v}"),
            RtVal::Str(s) => s.clone(),
            RtVal::Array(a) => format!("<array{:?}>", a.extents),
        }
    }
}

/// A variable slot: value plus the declared scalar type (used to cast on
/// assignment, mirroring C's typed variables).
#[derive(Debug, Clone)]
struct Slot {
    ty: Option<ScalarType>,
    val: RtVal,
}

fn canonical(ty: ScalarType, v: f64) -> RtVal {
    if ty.is_float() {
        RtVal::Float(Value::F64(v).cast(ty).as_f64())
    } else {
        RtVal::Int(Value::F64(v).cast(ty).as_i64())
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

struct Interp<'a, 'c> {
    scopes: Vec<HashMap<String, Slot>>,
    ctx: &'a mut KernelCtx<'c>,
    sink: &'a PrintSink,
    kernel: &'a str,
    /// xorshift64* state for the deterministic `random()` builtin, seeded
    /// from the instance identity so results don't depend on scheduling.
    rng: u64,
}

/// Execute one kernel instance according to its plan.
pub fn run_kernel(
    plan: &KernelPlan,
    spec_stores: &[p2g_graph::spec::StoreDecl],
    field_types: &[ScalarType],
    ctx: &mut KernelCtx,
    sink: &PrintSink,
) -> Result<(), String> {
    let mut scope0: HashMap<String, Slot> = HashMap::new();

    if let Some(av) = &plan.age_var {
        scope0.insert(
            av.clone(),
            Slot {
                ty: Some(ScalarType::I64),
                val: RtVal::Int(ctx.age().0 as i64),
            },
        );
    }
    for (i, iv) in plan.index_vars.iter().enumerate() {
        scope0.insert(
            iv.clone(),
            Slot {
                ty: Some(ScalarType::I64),
                val: RtVal::Int(ctx.index(i) as i64),
            },
        );
    }
    for l in &plan.locals {
        let val = if l.dims == 0 {
            canonical(l.ty, 0.0)
        } else {
            RtVal::Array(ArrayVal::empty(l.ty, l.dims))
        };
        scope0.insert(
            l.name.clone(),
            Slot {
                ty: Some(l.ty),
                val,
            },
        );
    }
    // Bind fetch targets: 1-element buffers bind scalars when the local is
    // scalar; otherwise arrays.
    for (i, target) in plan.fetch_targets.iter().enumerate() {
        let buf = ctx.input(i);
        let decl = plan
            .locals
            .iter()
            .find(|l| &l.name == target)
            .expect("sema checked fetch targets");
        let val = if decl.dims == 0 {
            canonical(decl.ty, buf.value(0).as_f64())
        } else {
            let mut arr = ArrayVal::from_buffer(buf);
            // A fetch like f(a)[x][*] produces a [1, n] slice; squeeze
            // size-1 dimensions until the rank matches the local's
            // declared rank (flatten entirely for 1-D locals).
            while arr.extents.len() > decl.dims && arr.extents.contains(&1) {
                let pos = arr
                    .extents
                    .iter()
                    .position(|&e| e == 1)
                    .expect("contains 1");
                arr.extents.remove(pos);
            }
            if decl.dims == 1 && arr.extents.len() > 1 {
                arr.extents = vec![arr.data.len()];
            }
            RtVal::Array(arr)
        };
        scope0.get_mut(target).expect("local exists").val = val;
    }

    // Deterministic per-instance RNG seed.
    let mut seed = 0xcbf29ce484222325u64;
    for b in plan.name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
    }
    seed = (seed ^ ctx.age().0).wrapping_mul(0x100000001b3);
    for i in 0..plan.index_vars.len() {
        seed = (seed ^ ctx.index(i) as u64).wrapping_mul(0x100000001b3);
    }

    let mut interp = Interp {
        scopes: vec![scope0],
        ctx,
        sink,
        kernel: &plan.name,
        rng: seed | 1,
    };

    for step in &plan.steps {
        match step {
            BodyStep::Native(stmts) => {
                for s in stmts {
                    if !matches!(interp.stmt(s)?, Flow::Normal) {
                        break;
                    }
                }
            }
            BodyStep::Store(sp) => {
                interp.run_store(sp, spec_stores, field_types)?;
            }
        }
    }
    Ok(())
}

impl Interp<'_, '_> {
    fn lookup(&self, name: &str) -> Option<&Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn lookup_mut(&mut self, name: &str) -> Option<&mut Slot> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }

    fn assign(&mut self, name: &str, raw: RtVal) -> Result<RtVal, String> {
        let slot = self
            .lookup_mut(name)
            .ok_or_else(|| format!("assignment to undeclared variable '{name}'"))?;
        let val = match (&slot.ty, &raw) {
            (Some(ty), RtVal::Int(_) | RtVal::Float(_)) => canonical(*ty, raw.as_f64()?),
            _ => raw,
        };
        slot.val = val.clone();
        Ok(val)
    }

    fn run_store(
        &mut self,
        sp: &crate::sema::StorePlan,
        spec_stores: &[p2g_graph::spec::StoreDecl],
        field_types: &[ScalarType],
    ) -> Result<(), String> {
        let decl = &spec_stores[sp.store_idx];
        let field_ty = field_types[decl.field.idx()];
        let value = self
            .lookup(&sp.value_var)
            .ok_or_else(|| format!("store of undeclared variable '{}'", sp.value_var))?
            .val
            .clone();
        let buffer = match value {
            RtVal::Array(a) => a.to_buffer(field_ty),
            RtVal::Int(v) => Buffer::scalar(Value::F64(v as f64).cast(field_ty)),
            RtVal::Float(v) => Buffer::scalar(Value::F64(v).cast(field_ty)),
            RtVal::Str(_) => return Err("cannot store a string into a field".into()),
        };
        // Build the absolute target region: static selectors from the
        // declaration, dynamic subscripts evaluated now.
        let mut dims = Vec::with_capacity(decl.dims.len());
        for (d, sel) in decl.dims.iter().enumerate() {
            let dyn_expr = sp.dyn_subs.get(d).and_then(|o| o.as_ref());
            dims.push(match (sel, dyn_expr) {
                (_, Some(e)) => {
                    let v = self.eval(e)?.as_i64()?;
                    if v < 0 {
                        return Err(format!("negative store index {v}"));
                    }
                    p2g_field::DimSel::Index(v as usize)
                }
                (p2g_graph::spec::IndexSel::Var(v), None) => {
                    p2g_field::DimSel::Index(self.ctx.index(v.0 as usize))
                }
                (p2g_graph::spec::IndexSel::Const(c), None) => p2g_field::DimSel::Index(*c),
                (p2g_graph::spec::IndexSel::All, None) => p2g_field::DimSel::All,
            });
        }
        self.ctx.store_region(sp.store_idx, Region(dims), buffer);
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<Flow, String> {
        match s {
            Stmt::Decl { ty, name, init } => {
                let val = match init {
                    Some(e) => {
                        let v = self.eval(e)?;
                        canonical(*ty, v.as_f64()?)
                    }
                    None => canonical(*ty, 0.0),
                };
                self.scopes
                    .last_mut()
                    .expect("at least one scope")
                    .insert(name.clone(), Slot { ty: Some(*ty), val });
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                let mut flow = Flow::Normal;
                for s in stmts {
                    flow = self.stmt(s)?;
                    if !matches!(flow, Flow::Normal) {
                        break;
                    }
                }
                self.scopes.pop();
                Ok(flow)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond)?.truthy()? {
                    self.stmt(then_branch)
                } else if let Some(e) = else_branch {
                    self.stmt(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.truthy()? {
                    match self.stmt(body)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let result = (|| {
                    if let Some(i) = init {
                        self.stmt(i)?;
                    }
                    loop {
                        if let Some(c) = cond {
                            if !self.eval(c)?.truthy()? {
                                break;
                            }
                        }
                        match self.stmt(body)? {
                            Flow::Break => break,
                            Flow::Return => return Ok(Flow::Return),
                            Flow::Normal | Flow::Continue => {}
                        }
                        if let Some(st) = step {
                            self.eval(st)?;
                        }
                    }
                    Ok(Flow::Normal)
                })();
                self.scopes.pop();
                result
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Return => Ok(Flow::Return),
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<RtVal, String> {
        match e {
            Expr::Int(v) => Ok(RtVal::Int(*v)),
            Expr::Float(v) => Ok(RtVal::Float(*v)),
            Expr::Str(s) => Ok(RtVal::Str(s.clone())),
            Expr::Var(name) => self
                .lookup(name)
                .map(|s| s.val.clone())
                .ok_or_else(|| format!("unknown variable '{name}'")),
            Expr::Assign { target, op, value } => {
                let rhs = self.eval(value)?;
                let new = match op {
                    AssignOp::Set => rhs,
                    _ => {
                        let cur = self
                            .lookup(target)
                            .ok_or_else(|| format!("unknown variable '{target}'"))?
                            .val
                            .clone();
                        let bop = match op {
                            AssignOp::Add => BinOp::Add,
                            AssignOp::Sub => BinOp::Sub,
                            AssignOp::Mul => BinOp::Mul,
                            AssignOp::Div => BinOp::Div,
                            AssignOp::Set => unreachable!(),
                        };
                        numeric_bin(bop, &cur, &rhs)?
                    }
                };
                self.assign(target, new)
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    let v = self.eval(expr)?;
                    Ok(match v {
                        RtVal::Int(i) => RtVal::Int(-i),
                        RtVal::Float(f) => RtVal::Float(-f),
                        other => return Err(format!("cannot negate {}", other.type_name())),
                    })
                }
                UnaryOp::Not => {
                    let v = self.eval(expr)?.truthy()?;
                    Ok(RtVal::Int(if v { 0 } else { 1 }))
                }
                UnaryOp::PreInc | UnaryOp::PreDec => {
                    let name = match expr.as_ref() {
                        Expr::Var(n) => n.clone(),
                        _ => return Err("++/-- needs a variable".into()),
                    };
                    let cur = self
                        .lookup(&name)
                        .ok_or_else(|| format!("unknown variable '{name}'"))?
                        .val
                        .as_f64()?;
                    let delta = if *op == UnaryOp::PreInc { 1.0 } else { -1.0 };
                    self.assign(&name, RtVal::Float(cur + delta))
                }
            },
            Expr::PostIncDec { target, inc } => {
                let cur = self
                    .lookup(target)
                    .ok_or_else(|| format!("unknown variable '{target}'"))?
                    .val
                    .clone();
                let delta = if *inc { 1.0 } else { -1.0 };
                self.assign(target, RtVal::Float(cur.as_f64()? + delta))?;
                Ok(cur)
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    let l = self.eval(lhs)?.truthy()?;
                    if !l {
                        return Ok(RtVal::Int(0));
                    }
                    Ok(RtVal::Int(if self.eval(rhs)?.truthy()? { 1 } else { 0 }))
                }
                BinOp::Or => {
                    let l = self.eval(lhs)?.truthy()?;
                    if l {
                        return Ok(RtVal::Int(1));
                    }
                    Ok(RtVal::Int(if self.eval(rhs)?.truthy()? { 1 } else { 0 }))
                }
                _ => {
                    let l = self.eval(lhs)?;
                    let r = self.eval(rhs)?;
                    numeric_bin(*op, &l, &r)
                }
            },
            Expr::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                if self.eval(cond)?.truthy()? {
                    self.eval(then_val)
                } else {
                    self.eval(else_val)
                }
            }
            Expr::Call { name, args } => self.call(name, args),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<RtVal, String> {
        match name {
            // put(arr, value, idx...)
            "put" => {
                let arr_name = arg_var(args, 0, "put")?;
                let value = self.eval(&args[1])?.as_f64()?;
                let mut idx = Vec::with_capacity(args.len() - 2);
                for a in &args[2..] {
                    idx.push(self.eval(a)?.as_i64()? as usize);
                }
                let slot = self
                    .lookup_mut(&arr_name)
                    .ok_or_else(|| format!("unknown array '{arr_name}'"))?;
                let RtVal::Array(arr) = &mut slot.val else {
                    return Err(format!("'{arr_name}' is not an array"));
                };
                if idx.len() != arr.extents.len() {
                    return Err(format!(
                        "put: array '{arr_name}' has {} dims, {} indices given",
                        arr.extents.len(),
                        idx.len()
                    ));
                }
                // Implicit growth for 1-D arrays (mirrors the paper's
                // implicitly-resized local fields).
                if arr.extents.len() == 1 && idx[0] >= arr.extents[0] {
                    arr.extents[0] = idx[0] + 1;
                    arr.data.resize(idx[0] + 1, 0.0);
                }
                let lin = arr
                    .linearize(&idx)
                    .ok_or_else(|| format!("put: index {idx:?} out of bounds"))?;
                arr.data[lin] = value;
                Ok(RtVal::Int(0))
            }
            "get" => {
                let arr_name = arg_var(args, 0, "get")?;
                let mut idx = Vec::with_capacity(args.len() - 1);
                for a in &args[1..] {
                    idx.push(self.eval(a)?.as_i64()? as usize);
                }
                let slot = self
                    .lookup(&arr_name)
                    .ok_or_else(|| format!("unknown array '{arr_name}'"))?;
                let RtVal::Array(arr) = &slot.val else {
                    return Err(format!("'{arr_name}' is not an array"));
                };
                let lin = arr.linearize(&idx).ok_or_else(|| {
                    format!("get: index {idx:?} out of bounds of {:?}", arr.extents)
                })?;
                let v = arr.data[lin];
                Ok(if arr.ty.is_float() {
                    RtVal::Float(v)
                } else {
                    RtVal::Int(v as i64)
                })
            }
            "extent" => {
                let arr_name = arg_var(args, 0, "extent")?;
                let d = self.eval(&args[1])?.as_i64()? as usize;
                let slot = self
                    .lookup(&arr_name)
                    .ok_or_else(|| format!("unknown array '{arr_name}'"))?;
                let RtVal::Array(arr) = &slot.val else {
                    return Err(format!("'{arr_name}' is not an array"));
                };
                arr.extents
                    .get(d)
                    .map(|&e| RtVal::Int(e as i64))
                    .ok_or_else(|| format!("extent: dim {d} out of range"))
            }
            "len" => {
                let arr_name = arg_var(args, 0, "len")?;
                let slot = self
                    .lookup(&arr_name)
                    .ok_or_else(|| format!("unknown array '{arr_name}'"))?;
                let RtVal::Array(arr) = &slot.val else {
                    return Err(format!("'{arr_name}' is not an array"));
                };
                Ok(RtVal::Int(arr.data.len() as i64))
            }
            "resize" => {
                let arr_name = arg_var(args, 0, "resize")?;
                let mut dims = Vec::with_capacity(args.len() - 1);
                for a in &args[1..] {
                    dims.push(self.eval(a)?.as_i64()? as usize);
                }
                let slot = self
                    .lookup_mut(&arr_name)
                    .ok_or_else(|| format!("unknown array '{arr_name}'"))?;
                let RtVal::Array(arr) = &mut slot.val else {
                    return Err(format!("'{arr_name}' is not an array"));
                };
                arr.extents = dims;
                let total: usize = arr.extents.iter().product();
                arr.data = vec![0.0; total];
                Ok(RtVal::Int(0))
            }
            "print" | "println" => {
                let mut parts = Vec::with_capacity(args.len());
                for a in args {
                    parts.push(self.eval(a)?.display());
                }
                let mut text = parts.join(" ");
                if name == "println" {
                    text.push('\n');
                } else if !text.is_empty() {
                    text.push(' ');
                }
                self.sink.write(&text);
                Ok(RtVal::Int(0))
            }
            "timer_reset" => {
                let t = self.eval(&args[0])?;
                let RtVal::Str(tname) = t else {
                    return Err("timer_reset expects a timer name string".into());
                };
                self.ctx.reset_timer(&tname);
                Ok(RtVal::Int(0))
            }
            "timer_expired" => {
                let t = self.eval(&args[0])?;
                let RtVal::Str(tname) = t else {
                    return Err("timer_expired expects a timer name string".into());
                };
                let ms = self.eval(&args[1])?.as_i64()?;
                let expired = self
                    .ctx
                    .deadline_expired(&tname, std::time::Duration::from_millis(ms.max(0) as u64));
                Ok(RtVal::Int(if expired { 1 } else { 0 }))
            }
            "random" => {
                // xorshift64*, canonical deterministic PRNG.
                self.rng ^= self.rng >> 12;
                self.rng ^= self.rng << 25;
                self.rng ^= self.rng >> 27;
                let x = self.rng.wrapping_mul(0x2545F4914F6CDD1D);
                Ok(RtVal::Float((x >> 11) as f64 / (1u64 << 53) as f64))
            }
            "sqrt" | "abs" | "floor" | "ceil" | "exp" | "log" => {
                let v = self.eval(&args[0])?.as_f64()?;
                let r = match name {
                    "sqrt" => v.sqrt(),
                    "abs" => v.abs(),
                    "floor" => v.floor(),
                    "ceil" => v.ceil(),
                    "exp" => v.exp(),
                    "log" => v.ln(),
                    _ => unreachable!(),
                };
                Ok(RtVal::Float(r))
            }
            "pow" | "min" | "max" => {
                let a = self.eval(&args[0])?;
                let b = self.eval(&args[1])?;
                let (af, bf) = (a.as_f64()?, b.as_f64()?);
                let ints = matches!((&a, &b), (RtVal::Int(_), RtVal::Int(_)));
                let r = match name {
                    "pow" => af.powf(bf),
                    "min" => af.min(bf),
                    "max" => af.max(bf),
                    _ => unreachable!(),
                };
                Ok(if ints && name != "pow" {
                    RtVal::Int(r as i64)
                } else {
                    RtVal::Float(r)
                })
            }
            other => Err(format!(
                "unknown function '{other}' in kernel '{}'",
                self.kernel
            )),
        }
    }
}

fn arg_var(args: &[Expr], i: usize, fun: &str) -> Result<String, String> {
    match args.get(i) {
        Some(Expr::Var(n)) => Ok(n.clone()),
        _ => Err(format!("{fun}: argument {i} must be an array variable")),
    }
}

fn numeric_bin(op: BinOp, l: &RtVal, r: &RtVal) -> Result<RtVal, String> {
    let both_int = matches!((l, r), (RtVal::Int(_), RtVal::Int(_)));
    if both_int {
        let (a, b) = (l.as_i64()?, r.as_i64()?);
        Ok(match op {
            BinOp::Add => RtVal::Int(a.wrapping_add(b)),
            BinOp::Sub => RtVal::Int(a.wrapping_sub(b)),
            BinOp::Mul => RtVal::Int(a.wrapping_mul(b)),
            BinOp::Div => {
                if b == 0 {
                    return Err("integer division by zero".into());
                }
                RtVal::Int(a.wrapping_div(b))
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err("integer remainder by zero".into());
                }
                RtVal::Int(a.wrapping_rem(b))
            }
            BinOp::Eq => RtVal::Int((a == b) as i64),
            BinOp::Ne => RtVal::Int((a != b) as i64),
            BinOp::Lt => RtVal::Int((a < b) as i64),
            BinOp::Gt => RtVal::Int((a > b) as i64),
            BinOp::Le => RtVal::Int((a <= b) as i64),
            BinOp::Ge => RtVal::Int((a >= b) as i64),
            BinOp::And | BinOp::Or => unreachable!("short-circuit handled above"),
        })
    } else {
        let (a, b) = (l.as_f64()?, r.as_f64()?);
        Ok(match op {
            BinOp::Add => RtVal::Float(a + b),
            BinOp::Sub => RtVal::Float(a - b),
            BinOp::Mul => RtVal::Float(a * b),
            BinOp::Div => RtVal::Float(a / b),
            BinOp::Rem => RtVal::Float(a % b),
            BinOp::Eq => RtVal::Int((a == b) as i64),
            BinOp::Ne => RtVal::Int((a != b) as i64),
            BinOp::Lt => RtVal::Int((a < b) as i64),
            BinOp::Gt => RtVal::Int((a > b) as i64),
            BinOp::Le => RtVal::Int((a <= b) as i64),
            BinOp::Ge => RtVal::Int((a >= b) as i64),
            BinOp::And | BinOp::Or => unreachable!("short-circuit handled above"),
        })
    }
}

//! The kernel-language compiler driver: source text → runnable
//! [`p2g_runtime::Program`].
//!
//! The paper's compiler emitted C++ and drove the native toolchain; this
//! driver instead wraps each kernel's execution plan in a Rust closure that
//! invokes the native-block interpreter. Either way the output is the same
//! shape: a validated [`p2g_graph::ProgramSpec`] plus one executable body
//! per kernel definition.

use std::sync::Arc;

use parking_lot::Mutex;

use p2g_field::ScalarType;
use p2g_graph::ProgramSpec;
use p2g_runtime::Program;

use crate::error::LangError;
use crate::interp::run_kernel;
use crate::parser::parse;
use crate::sema::analyze;

/// Captures `print`/`println` output from interpreted kernels (the paper's
/// `cout <<`). Shared between all kernel instances; kernels that print are
/// automatically marked ordered so the capture is deterministic.
#[derive(Debug, Default, Clone)]
pub struct PrintSink {
    buf: Arc<Mutex<String>>,
}

impl PrintSink {
    /// Empty sink.
    pub fn new() -> PrintSink {
        PrintSink::default()
    }

    /// Append text (called by the interpreter).
    pub fn write(&self, text: &str) {
        self.buf.lock().push_str(text);
    }

    /// Snapshot the captured output.
    pub fn contents(&self) -> String {
        self.buf.lock().clone()
    }

    /// Take the captured output, clearing the sink.
    pub fn take(&self) -> String {
        std::mem::take(&mut self.buf.lock())
    }
}

/// A compiled kernel-language program.
pub struct CompiledProgram {
    /// The runnable program (hand to [`p2g_runtime::ExecutionNode`]).
    pub program: Program,
    /// Captured `print` output.
    pub print: PrintSink,
    /// The derived program spec (also available via `program.spec()`).
    pub spec: ProgramSpec,
}

/// Compile kernel-language source to a runnable program.
pub fn compile_source(src: &str) -> Result<CompiledProgram, LangError> {
    let unit = parse(src)?;
    let analyzed = analyze(&unit)?;
    let spec = analyzed.spec.clone();

    let mut program = Program::new(analyzed.spec).map_err(|e| LangError::sema(e.to_string()))?;
    let field_types: Arc<Vec<ScalarType>> = Arc::new(spec.fields.iter().map(|f| f.ty).collect());
    let print = PrintSink::new();

    for timer in &analyzed.timers {
        program.timers().declare(timer);
    }

    for plan in analyzed.plans {
        let plan = Arc::new(plan);
        let kid = spec
            .kernel_by_name(&plan.name)
            .expect("plan names match spec");
        if plan.prints {
            // Deterministic output order regardless of worker count.
            let name = plan.name.clone();
            program.set_ordered(&name);
        }
        let stores = Arc::new(spec.kernel(kid).stores.clone());
        let ftypes = field_types.clone();
        let sink = print.clone();
        let p = plan.clone();
        program.body_id(kid, move |ctx| run_kernel(&p, &stores, &ftypes, ctx, &sink));
    }

    Ok(CompiledProgram {
        program,
        print,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2g_field::{Age, Region};
    use p2g_runtime::{NodeBuilder, RunLimits};

    const MUL_SUM: &str = r#"
int32[] m_data age;
int32[] p_data age;

init:
  local int32[] values;
  %{
    int i = 0;
    for (; i < 5; ++i) put(values, i + 10, i);
  %}
  store m_data(0) = values;

mul2:
  age a; index x;
  local int32 value;
  fetch value = m_data(a)[x];
  %{ value *= 2; %}
  store p_data(a)[x] = value;

plus5:
  age a; index x;
  local int32 value;
  fetch value = p_data(a)[x];
  %{ value += 5; %}
  store m_data(a+1)[x] = value;

print:
  age a;
  local int32[] m;
  local int32[] p;
  fetch m = m_data(a);
  fetch p = p_data(a);
  %{
    for (int i = 0; i < extent(m, 0); ++i) print(get(m, i));
    println();
    for (int i = 0; i < extent(p, 0); ++i) print(get(p, i));
    println();
  %}
"#;

    #[test]
    fn figure5_program_runs_and_matches_paper_output() {
        let compiled = compile_source(MUL_SUM).unwrap();
        let node = NodeBuilder::new(compiled.program).workers(4);
        let (report, fields) = node
            .launch(RunLimits::ages(2))
            .and_then(|n| n.collect())
            .unwrap();
        assert_eq!(
            report.termination,
            p2g_runtime::instrument::Termination::Quiescent
        );

        // Field contents per the paper's Section V narrative.
        let m0 = fields.fetch("m_data", Age(0), &Region::all(1)).unwrap();
        assert_eq!(m0.as_i32().unwrap(), &[10, 11, 12, 13, 14]);
        let p0 = fields.fetch("p_data", Age(0), &Region::all(1)).unwrap();
        assert_eq!(p0.as_i32().unwrap(), &[20, 22, 24, 26, 28]);
        let m1 = fields.fetch("m_data", Age(1), &Region::all(1)).unwrap();
        assert_eq!(m1.as_i32().unwrap(), &[25, 27, 29, 31, 33]);
        let p1 = fields.fetch("p_data", Age(1), &Region::all(1)).unwrap();
        assert_eq!(p1.as_i32().unwrap(), &[50, 54, 58, 62, 66]);

        // The print kernel captured both ages, in age order.
        let out = compiled.print.contents();
        let expected = "10 11 12 13 14 \n20 22 24 26 28 \n25 27 29 31 33 \n50 54 58 62 66 \n";
        assert_eq!(out, expected);
    }

    #[test]
    fn print_output_deterministic_across_workers() {
        let reference = {
            let c = compile_source(MUL_SUM).unwrap();
            NodeBuilder::new(c.program)
                .workers(1)
                .launch(RunLimits::ages(3))
                .and_then(|n| n.wait())
                .unwrap();
            c.print.take()
        };
        for workers in [2, 4] {
            let c = compile_source(MUL_SUM).unwrap();
            NodeBuilder::new(c.program)
                .workers(workers)
                .launch(RunLimits::ages(3))
                .and_then(|n| n.wait())
                .unwrap();
            assert_eq!(c.print.take(), reference, "workers={workers}");
        }
    }

    #[test]
    fn timers_declared_from_source() {
        let src = "timer t1;\nint32[] f age;\ninit:\n local int32[] v;\n %{ put(v, 1, 0); %}\n store f(0) = v;";
        let compiled = compile_source(src).unwrap();
        assert_eq!(compiled.program.timers().names(), vec!["t1".to_string()]);
    }

    #[test]
    fn interp_error_surfaces_as_kernel_failure() {
        let src = r#"
int32[] f age;
init:
  local int32[] v;
  %{ int x = 1 / 0; put(v, x, 0); %}
  store f(0) = v;
"#;
        let compiled = compile_source(src).unwrap();
        let err = NodeBuilder::new(compiled.program)
            .workers(1)
            .launch(RunLimits::ages(1))
            .and_then(|n| n.wait())
            .unwrap_err();
        assert!(err.to_string().contains("division by zero"), "{err}");
    }

    #[test]
    fn dynamic_store_index_routes_data() {
        // A kernel that writes each element to a computed position
        // (reverses the field) — exercises data-dependent store targets.
        let src = r#"
int32[] src age;
int32[] dst age;
init:
  local int32[] v;
  %{ for (int i = 0; i < 4; ++i) put(v, i, i); %}
  store src(0) = v;
reverse:
  age a; index x;
  local int32 value;
  local int32 target;
  fetch value = src(a)[x];
  %{ target = 3 - x; %}
  store dst(a)[target] = value;
"#;
        let compiled = compile_source(src).unwrap();
        let node = NodeBuilder::new(compiled.program).workers(2);
        let (_, fields) = node
            .launch(RunLimits::ages(1))
            .and_then(|n| n.collect())
            .unwrap();
        let dst = fields.fetch("dst", Age(0), &Region::all(1)).unwrap();
        assert_eq!(dst.as_i32().unwrap(), &[3, 2, 1, 0]);
    }

    #[test]
    fn random_is_deterministic() {
        let src = r#"
float64[] vals age;
init:
  local float64[] v;
  %{ for (int i = 0; i < 8; ++i) put(v, random(), i); %}
  store vals(0) = v;
"#;
        let run = || {
            let compiled = compile_source(src).unwrap();
            let node = NodeBuilder::new(compiled.program).workers(2);
            let (_, fields) = node
                .launch(RunLimits::ages(1))
                .and_then(|n| n.collect())
                .unwrap();
            fields
                .fetch("vals", Age(0), &Region::all(1))
                .unwrap()
                .as_f64()
                .unwrap()
                .to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // And the values look random-ish (not all equal).
        assert!(a.windows(2).any(|w| w[0] != w[1]));
        assert!(a.iter().all(|&v| (0.0..1.0).contains(&v)));
    }
}

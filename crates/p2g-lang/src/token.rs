//! Token definitions for the kernel language.

use crate::error::Pos;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),

    // Keywords.
    KwAge,
    KwIndex,
    KwLocal,
    KwFetch,
    KwStore,
    KwTimer,
    KwFor,
    KwWhile,
    KwIf,
    KwElse,
    KwBreak,
    KwContinue,
    KwReturn,
    /// A scalar type keyword (`int32`, `float64`, `int`, `float`, ...).
    Type(p2g_field::ScalarType),

    // Punctuation.
    Colon,
    Semi,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    /// `%{` — start of a native code block.
    BlockOpen,
    /// `%}` — end of a native code block.
    BlockClose,
    Star, // `*` (also the wildcard subscript)
    Slash,
    Percent,
    Plus,
    Minus,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    PlusPlus,
    MinusMinus,
    Question,
    Eof,
}

impl Tok {
    /// Human-readable token name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier '{s}'"),
            Tok::Int(v) => format!("integer {v}"),
            Tok::Float(v) => format!("float {v}"),
            Tok::Str(s) => format!("string \"{s}\""),
            Tok::Type(t) => format!("type {t}"),
            Tok::Eof => "end of input".into(),
            other => format!("{other:?}"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: Pos,
}

/// Map an identifier to a keyword token, if it is one.
pub fn keyword(s: &str) -> Option<Tok> {
    use p2g_field::ScalarType as S;
    Some(match s {
        "age" => Tok::KwAge,
        "index" => Tok::KwIndex,
        "local" => Tok::KwLocal,
        "fetch" => Tok::KwFetch,
        "store" => Tok::KwStore,
        "timer" => Tok::KwTimer,
        "for" => Tok::KwFor,
        "while" => Tok::KwWhile,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "break" => Tok::KwBreak,
        "continue" => Tok::KwContinue,
        "return" => Tok::KwReturn,
        "uint8" => Tok::Type(S::U8),
        "int16" => Tok::Type(S::I16),
        "int32" | "int" => Tok::Type(S::I32),
        "int64" | "long" => Tok::Type(S::I64),
        "float32" | "float" => Tok::Type(S::F32),
        "float64" | "double" => Tok::Type(S::F64),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(keyword("fetch"), Some(Tok::KwFetch));
        assert_eq!(keyword("int"), Some(Tok::Type(p2g_field::ScalarType::I32)));
        assert_eq!(
            keyword("double"),
            Some(Tok::Type(p2g_field::ScalarType::F64))
        );
        assert_eq!(keyword("banana"), None);
    }

    #[test]
    fn describe_is_informative() {
        assert!(Tok::Ident("x".into()).describe().contains('x'));
        assert!(Tok::KwFor.describe().contains("KwFor"));
    }
}

//! The kernel-language lexer.
//!
//! One token stream covers both the declarative layer (field/kernel
//! definitions) and the C-like native blocks; `%{` / `%}` are ordinary
//! tokens, so the parser decides which grammar applies. `//` line comments
//! and `/* */` block comments are skipped.

use crate::error::{LangError, Pos};
use crate::token::{keyword, Spanned, Tok};

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

/// Tokenize `src` into a vector ending with [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia()?;
        let pos = lx.pos();
        if lx.at_end() {
            out.push(Spanned { tok: Tok::Eof, pos });
            return Ok(out);
        }
        let tok = lx.next_token()?;
        out.push(Spanned { tok, pos });
    }
}

impl Lexer<'_> {
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn at_end(&self) -> bool {
        self.i >= self.src.len()
    }

    fn peek(&self) -> u8 {
        if self.at_end() {
            0
        } else {
            self.src[self.i]
        }
    }

    fn peek2(&self) -> u8 {
        if self.i + 1 >= self.src.len() {
            0
        } else {
            self.src[self.i + 1]
        }
    }

    fn bump(&mut self) -> u8 {
        let c = self.src[self.i];
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            if self.at_end() {
                return Ok(());
            }
            let c = self.peek();
            if c.is_ascii_whitespace() {
                self.bump();
            } else if c == b'/' && self.peek2() == b'/' {
                while !self.at_end() && self.peek() != b'\n' {
                    self.bump();
                }
            } else if c == b'/' && self.peek2() == b'*' {
                let start = self.pos();
                self.bump();
                self.bump();
                loop {
                    if self.at_end() {
                        return Err(LangError::lex(start, "unterminated block comment"));
                    }
                    if self.peek() == b'*' && self.peek2() == b'/' {
                        self.bump();
                        self.bump();
                        break;
                    }
                    self.bump();
                }
            } else {
                return Ok(());
            }
        }
    }

    fn next_token(&mut self) -> Result<Tok, LangError> {
        let pos = self.pos();
        let c = self.peek();

        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.i;
            while !self.at_end() && (self.peek().is_ascii_alphanumeric() || self.peek() == b'_') {
                self.bump();
            }
            let s = std::str::from_utf8(&self.src[start..self.i]).expect("ascii ident");
            return Ok(keyword(s).unwrap_or_else(|| Tok::Ident(s.to_string())));
        }

        if c.is_ascii_digit() {
            return self.number(pos);
        }

        if c == b'"' {
            self.bump();
            let mut s = String::new();
            loop {
                if self.at_end() {
                    return Err(LangError::lex(pos, "unterminated string literal"));
                }
                let c = self.bump();
                match c {
                    b'"' => return Ok(Tok::Str(s)),
                    b'\\' => {
                        let e = self.bump();
                        s.push(match e {
                            b'n' => '\n',
                            b't' => '\t',
                            b'\\' => '\\',
                            b'"' => '"',
                            other => {
                                return Err(LangError::lex(
                                    pos,
                                    format!("unknown escape '\\{}'", other as char),
                                ))
                            }
                        });
                    }
                    other => s.push(other as char),
                }
            }
        }

        self.bump();
        let two = |lx: &mut Lexer, next: u8, a: Tok, b: Tok| {
            if lx.peek() == next {
                lx.bump();
                a
            } else {
                b
            }
        };
        Ok(match c {
            b':' => Tok::Colon,
            b';' => Tok::Semi,
            b',' => Tok::Comma,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'?' => Tok::Question,
            b'%' => match self.peek() {
                b'{' => {
                    self.bump();
                    Tok::BlockOpen
                }
                b'}' => {
                    self.bump();
                    Tok::BlockClose
                }
                _ => Tok::Percent,
            },
            b'*' => two(self, b'=', Tok::StarAssign, Tok::Star),
            b'/' => two(self, b'=', Tok::SlashAssign, Tok::Slash),
            b'+' => match self.peek() {
                b'+' => {
                    self.bump();
                    Tok::PlusPlus
                }
                b'=' => {
                    self.bump();
                    Tok::PlusAssign
                }
                _ => Tok::Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.bump();
                    Tok::MinusMinus
                }
                b'=' => {
                    self.bump();
                    Tok::MinusAssign
                }
                _ => Tok::Minus,
            },
            b'=' => two(self, b'=', Tok::Eq, Tok::Assign),
            b'!' => two(self, b'=', Tok::Ne, Tok::Not),
            b'<' => two(self, b'=', Tok::Le, Tok::Lt),
            b'>' => two(self, b'=', Tok::Ge, Tok::Gt),
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    Tok::AndAnd
                } else {
                    return Err(LangError::lex(pos, "expected '&&'"));
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    Tok::OrOr
                } else {
                    return Err(LangError::lex(pos, "expected '||'"));
                }
            }
            other => {
                return Err(LangError::lex(
                    pos,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        })
    }

    fn number(&mut self, pos: Pos) -> Result<Tok, LangError> {
        let start = self.i;
        while !self.at_end() && self.peek().is_ascii_digit() {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.bump();
            while !self.at_end() && self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if matches!(self.peek(), b'e' | b'E') {
            is_float = true;
            self.bump();
            if matches!(self.peek(), b'+' | b'-') {
                self.bump();
            }
            while !self.at_end() && self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let s = std::str::from_utf8(&self.src[start..self.i]).expect("ascii number");
        if is_float {
            s.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| LangError::lex(pos, format!("bad float literal: {e}")))
        } else {
            s.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| LangError::lex(pos, format!("bad integer literal: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_field_decl() {
        assert_eq!(
            toks("int32[] m_data age;"),
            vec![
                Tok::Type(p2g_field::ScalarType::I32),
                Tok::LBracket,
                Tok::RBracket,
                Tok::Ident("m_data".into()),
                Tok::KwAge,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_native_block_markers() {
        assert_eq!(
            toks("%{ x += 1; %}"),
            vec![
                Tok::BlockOpen,
                Tok::Ident("x".into()),
                Tok::PlusAssign,
                Tok::Int(1),
                Tok::Semi,
                Tok::BlockClose,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn percent_alone_is_modulo() {
        assert_eq!(
            toks("a % b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Percent,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(
            toks("42 3.25 1e3"),
            vec![Tok::Int(42), Tok::Float(3.25), Tok::Float(1000.0), Tok::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // comment\n /* multi\nline */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("== != <= >= && || ++ -- ?"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::PlusPlus,
                Tok::MinusMinus,
                Tok::Question,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            toks(r#""hi\n" "t1""#),
            vec![Tok::Str("hi\n".into()), Tok::Str("t1".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!(spanned[0].pos.line, 1);
        assert_eq!(spanned[1].pos.line, 2);
        assert_eq!(spanned[1].pos.col, 3);
    }

    #[test]
    fn errors_on_bad_char() {
        assert!(lex("a $ b").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}

//! `p2gc` — the P2G compiler driver.
//!
//! The paper's compiler "works also as a compiler driver ... and produces
//! complete binaries for programs that run directly on the target system".
//! This driver compiles a kernel-language source file and executes it on an
//! execution node, printing the program's `print` output and the
//! per-kernel instrumentation table.
//!
//! Usage:
//!   p2gc run <file.p2g> [--ages N] [--workers W] [--shards S] [--gc-window W] [--trace-out PATH]
//!   p2gc serve <file.p2g> [--sessions N] [--frames F] [--workers W] [--shards S] [--gc-window W]
//!   p2gc check <file.p2g>
//!   p2gc graph <file.p2g>        # dump Figures 2/3 style dot graphs
//!
//! `serve` runs the program as N concurrent tenants of one shared
//! session-runtime worker pool (the resident multi-session configuration),
//! each bounded to F frames (ages).
//!
//! `--trace-out` enables structured run tracing and writes the merged
//! trace after the run: Chrome trace-viewer JSON (`chrome://tracing`,
//! Perfetto) when the path ends in `.json`, JSONL (one event object per
//! line) otherwise.

use std::process::ExitCode;
use std::time::Duration;

use p2g_graph::{FinalGraph, IntermediateGraph};
use p2g_lang::compile_source;
use p2g_runtime::{FaultPolicy, NodeBuilder, RunLimits, SessionRuntime};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  p2gc run <file.p2g> [--ages N] [--workers W] [--shards S] [--gc-window W]\n                      [--deadline-ms D] [--retries R] [--kernel-deadline-ms D]\n                      [--trace-out PATH]\n  p2gc serve <file.p2g> [--sessions N] [--frames F] [--workers W] [--shards S]\n                        [--gc-window W]\n  p2gc check <file.p2g>\n  p2gc graph <file.p2g>\n\nparallel dependency analysis:\n  --shards S              analyzer shards (default 1, the sequential\n                          analyzer); sharded runs also enable the\n                          worker-side inline dispatch fast path\n\nmulti-tenant serving (p2gc serve):\n  --sessions N            concurrent tenant copies of the program (default 2)\n  --frames F              frames (ages) per tenant (default 4)\n  --workers W             shared worker-pool threads\n\nfault isolation (applies to every kernel, degrade instead of abort):\n  --retries R             retry failed kernel instances up to R times\n  --kernel-deadline-ms D  flag instances overrunning D ms for cancellation\n\ntracing:\n  --trace-out PATH        record a structured run trace; write Chrome\n                          trace-viewer JSON if PATH ends in .json, else JSONL"
    );
    ExitCode::from(2)
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };

    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("p2gc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut compiled = match compile_source(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("p2gc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "check" => {
            println!(
                "{path}: ok ({} fields, {} kernels)",
                compiled.spec.fields.len(),
                compiled.spec.kernels.len()
            );
            ExitCode::SUCCESS
        }
        "graph" => {
            let ig = IntermediateGraph::from_spec(&compiled.spec);
            println!("// intermediate implicit static dependency graph (Figure 2)");
            print!("{}", ig.to_dot(&compiled.spec));
            let fg = FinalGraph::from_spec(&compiled.spec);
            println!("// final implicit static dependency graph (Figure 3)");
            print!("{}", fg.to_dot(&compiled.spec));
            ExitCode::SUCCESS
        }
        "run" => {
            let ages: u64 = flag(&args, "--ages").unwrap_or(4);
            let workers: usize = flag(&args, "--workers")
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |n| n.get()));
            let shards: usize = flag(&args, "--shards").unwrap_or(1);
            let mut limits = RunLimits::ages(ages).with_shards(shards);
            if let Some(w) = flag::<u64>(&args, "--gc-window") {
                limits = limits.with_gc_window(w);
            }
            if let Some(ms) = flag::<u64>(&args, "--deadline-ms") {
                limits = limits.with_deadline(Duration::from_millis(ms));
            }
            // Fault isolation: with either flag set, kernel failures are
            // retried and then degrade (poison dependents) instead of
            // aborting the whole run.
            let trace_out = flag::<String>(&args, "--trace-out");
            if trace_out.is_some() {
                limits = limits.with_trace();
            }
            let retries = flag::<u32>(&args, "--retries");
            let kernel_deadline = flag::<u64>(&args, "--kernel-deadline-ms");
            if retries.is_some() || kernel_deadline.is_some() {
                let mut policy = FaultPolicy::retries(retries.unwrap_or(0)).poison();
                if let Some(ms) = kernel_deadline {
                    policy = policy.with_deadline(Duration::from_millis(ms));
                }
                compiled.program.set_fault_policy_all(policy);
            }

            let node = NodeBuilder::new(compiled.program).workers(workers);
            match node.launch(limits).and_then(|n| n.wait()) {
                Ok(report) => {
                    print!("{}", compiled.print.take());
                    eprintln!(
                        "--- {path}: {:?} ({:?}) ---",
                        report.termination, report.wall_time
                    );
                    eprint!("{}", report.instruments.render_table());
                    if shards > 1 {
                        eprintln!(
                            "analyzer shards: {} ({} events, {} inline dispatches)",
                            shards,
                            report.instruments.shard_events().iter().sum::<u64>(),
                            report.instruments.inline_dispatches()
                        );
                    }
                    if let Some(out) = trace_out {
                        let trace = report.trace.as_ref().expect("tracing was enabled");
                        let body = if out.ends_with(".json") {
                            trace.to_chrome_json()
                        } else {
                            trace.to_jsonl()
                        };
                        if let Err(e) = std::fs::write(&out, body) {
                            eprintln!("p2gc: cannot write trace to {out}: {e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("trace: {} events -> {out}", trace.len());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("p2gc: runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "serve" => {
            let sessions: usize = flag(&args, "--sessions").unwrap_or(2);
            let frames: u64 = flag(&args, "--frames").unwrap_or(4);
            let workers: usize = flag(&args, "--workers")
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |n| n.get()));
            let shards: usize = flag(&args, "--shards").unwrap_or(1);
            let mut limits = RunLimits::ages(frames).with_shards(shards);
            if let Some(w) = flag::<u64>(&args, "--gc-window") {
                limits = limits.with_gc_window(w);
            }

            // One shared pool; each tenant is a pool-attached node running
            // its own copy of the compiled program (kernel bodies cannot
            // be cloned, so each session recompiles the source).
            let runtime = SessionRuntime::new(workers);
            let mut tenants = Vec::new();
            for s in 0..sessions.max(1) {
                let tenant = match compile_source(&source) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("p2gc: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match runtime.launch_batch(tenant.program, limits.clone()) {
                    Ok(node) => tenants.push((s, node, tenant.print)),
                    Err(e) => {
                        eprintln!("p2gc: session {s}: launch failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let start = std::time::Instant::now();
            let mut failed = false;
            for (s, node, print) in tenants {
                match node.wait() {
                    Ok(report) => {
                        print!("{}", print.take());
                        let instances: u64 = report
                            .instruments
                            .all()
                            .iter()
                            .map(|(_, s)| s.instances)
                            .sum();
                        eprintln!(
                            "--- session {s}: {:?}, {instances} instances, {:?} ---",
                            report.termination, report.wall_time
                        );
                    }
                    Err(e) => {
                        eprintln!("p2gc: session {s}: runtime error: {e}");
                        failed = true;
                    }
                }
            }
            runtime.shutdown();
            eprintln!(
                "--- {path}: {sessions} sessions x {frames} frames on {workers} shared workers \
                 in {:?} ---",
                start.elapsed()
            );
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

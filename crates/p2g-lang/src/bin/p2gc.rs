//! `p2gc` — the P2G compiler driver.
//!
//! The paper's compiler "works also as a compiler driver ... and produces
//! complete binaries for programs that run directly on the target system".
//! This driver compiles a kernel-language source file and executes it on an
//! execution node, printing the program's `print` output and the
//! per-kernel instrumentation table.
//!
//! Usage:
//!   p2gc run <file.p2g> [--ages N] [--workers W] [--shards S] [--gc-window W] [--trace-out PATH]
//!   p2gc serve <file.p2g> [--sessions N] [--frames F] [--workers W] [--shards S] [--gc-window W]
//!   p2gc check <file.p2g>
//!   p2gc graph <file.p2g>        # dump Figures 2/3 style dot graphs
//!
//! `serve` runs the program as N concurrent tenants of one shared
//! session-runtime worker pool (the resident multi-session configuration),
//! each bounded to F frames (ages).
//!
//! `--trace-out` enables structured run tracing and writes the merged
//! trace after the run: Chrome trace-viewer JSON (`chrome://tracing`,
//! Perfetto) when the path ends in `.json`, JSONL (one event object per
//! line) otherwise.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use p2g_dist::{
    run_master, run_node, run_serve_node, MasterConfig, NodeConfig, RetryConfig, ServeClient,
    ServeConfig,
};
use p2g_graph::{FinalGraph, IntermediateGraph, NodeId};
use p2g_lang::compile_source;
use p2g_mjpeg::{mjpeg_registry, pack_i420, FrameSource, SyntheticVideo};
use p2g_runtime::{FaultPolicy, NodeBuilder, Qos, RunLimits, SessionRuntime};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  p2gc run <file.p2g> [--ages N] [--workers W] [--shards S] [--gc-window W]\n                      [--deadline-ms D] [--retries R] [--kernel-deadline-ms D]\n                      [--trace-out PATH] [--batch] [--adaptive]\n  p2gc serve <file.p2g> [--sessions N] [--frames F] [--workers W] [--shards S]\n                        [--gc-window W] [--batch] [--adaptive]\n  p2gc check <file.p2g>\n  p2gc graph <file.p2g>\n  p2gc cluster master <file.p2g> --nodes N [--port P] [--ages A]\n                      [--failure-timeout-ms D] [--deadline-ms D]\n                      [--net-retries R] [--net-backoff-us B]\n  p2gc cluster node <file.p2g> --node-id I --master HOST:PORT [--workers W]\n                      [--ages A] [--deadline-ms D]\n                      [--net-retries R] [--net-backoff-us B]\n  p2gc serve-node [--port P] [--workers W] [--stats-interval-ms D]\n                  [--orphan-timeout-ms D] [--deadline-ms D]\n                  [--net-retries R] [--net-backoff-us B]\n  p2gc submit --server HOST:PORT [--client-id I] [--width W] [--height H]\n              [--frames N] [--quality Q] [--seed S] [--cadence-ms C]\n              [--priority P] [--weight W] [--window N] [--out PATH]\n              [--shutdown-server]\n\nmulti-process cluster (p2gc cluster):\n  master listens on loopback, plans the dependency graph across the\n  joined nodes, supervises heartbeats, replans and replays around node\n  deaths, and prints a chunking-invariant results digest; each node\n  process runs its assigned kernels and forwards stores over TCP\n  --net-retries R         send attempts before a peer is declared dead\n  --net-backoff-us B      initial reconnect/retry backoff (doubles, jittered)\n\nremote session serving (p2gc serve-node / p2gc submit):\n  serve-node hosts a resident session runtime behind TCP, offering the\n  built-in \"mjpeg\" pipeline; submit streams synthetic i420 frames into\n  it as one remote session and receives the encoded MJPEG stream back\n  --cadence-ms C          delay between frame submits (live-source pacing)\n  --priority P            QoS class: 0 realtime, 1 normal, 2 bulk\n  --weight W              fair-share weight within the class\n  --out PATH              write the received MJPEG stream to PATH\n  --shutdown-server       send the admin shutdown after closing\n\nparallel dependency analysis:\n  --shards S              analyzer shards (default 1, the sequential\n                          analyzer); sharded runs also enable the\n                          worker-side inline dispatch fast path\n\nbatched execution and granularity adaptation:\n  --batch                 execute multi-instance dispatch units as one\n                          batched work unit (merged fetches and stores)\n  --adaptive              adapt kernel chunk sizes online from live\n                          dispatch-overhead and latency measurements\n\nmulti-tenant serving (p2gc serve):\n  --sessions N            concurrent tenant copies of the program (default 2)\n  --frames F              frames (ages) per tenant (default 4)\n  --workers W             shared worker-pool threads\n\nfault isolation (applies to every kernel, degrade instead of abort):\n  --retries R             retry failed kernel instances up to R times\n  --kernel-deadline-ms D  flag instances overrunning D ms for cancellation\n\ntracing:\n  --trace-out PATH        record a structured run trace; write Chrome\n                          trace-viewer JSON if PATH ends in .json, else JSONL"
    );
    ExitCode::from(2)
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parse the shared `--net-retries` / `--net-backoff-us` transport flags.
fn net_retry_flags(args: &[String]) -> RetryConfig {
    let mut retry = RetryConfig::default();
    if let Some(r) = flag::<u32>(args, "--net-retries") {
        retry.attempts = r.max(1);
    }
    if let Some(us) = flag::<u64>(args, "--net-backoff-us") {
        let base = Duration::from_micros(us.max(1));
        retry = retry.with_backoff(base, base.saturating_mul(64));
    }
    retry
}

/// Apply the shared `--batch` / `--adaptive` execution flags to run limits.
fn exec_flags(args: &[String], mut limits: RunLimits) -> RunLimits {
    if has_flag(args, "--batch") {
        limits = limits.with_batch_exec();
    }
    if has_flag(args, "--adaptive") {
        limits = limits.with_adaptive(p2g_runtime::AdaptiveGranularity::default());
    }
    limits
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    // The serving commands take no source file.
    match cmd.as_str() {
        "serve-node" => return cmd_serve_node(&args),
        "submit" => return cmd_submit(&args),
        _ => {}
    }
    // `cluster` takes a role before the source path.
    let path_idx = if cmd == "cluster" { 2 } else { 1 };
    let Some(path) = args.get(path_idx) else {
        return usage();
    };

    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("p2gc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut compiled = match compile_source(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("p2gc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "check" => {
            println!(
                "{path}: ok ({} fields, {} kernels)",
                compiled.spec.fields.len(),
                compiled.spec.kernels.len()
            );
            ExitCode::SUCCESS
        }
        "graph" => {
            let ig = IntermediateGraph::from_spec(&compiled.spec);
            println!("// intermediate implicit static dependency graph (Figure 2)");
            print!("{}", ig.to_dot(&compiled.spec));
            let fg = FinalGraph::from_spec(&compiled.spec);
            println!("// final implicit static dependency graph (Figure 3)");
            print!("{}", fg.to_dot(&compiled.spec));
            ExitCode::SUCCESS
        }
        "run" => {
            let ages: u64 = flag(&args, "--ages").unwrap_or(4);
            let workers: usize = flag(&args, "--workers")
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |n| n.get()));
            let shards: usize = flag(&args, "--shards").unwrap_or(1);
            let mut limits = exec_flags(&args, RunLimits::ages(ages).with_shards(shards));
            if let Some(w) = flag::<u64>(&args, "--gc-window") {
                limits = limits.with_gc_window(w);
            }
            if let Some(ms) = flag::<u64>(&args, "--deadline-ms") {
                limits = limits.with_deadline(Duration::from_millis(ms));
            }
            // Fault isolation: with either flag set, kernel failures are
            // retried and then degrade (poison dependents) instead of
            // aborting the whole run.
            let trace_out = flag::<String>(&args, "--trace-out");
            if trace_out.is_some() {
                limits = limits.with_trace();
            }
            let retries = flag::<u32>(&args, "--retries");
            let kernel_deadline = flag::<u64>(&args, "--kernel-deadline-ms");
            if retries.is_some() || kernel_deadline.is_some() {
                let mut policy = FaultPolicy::retries(retries.unwrap_or(0)).poison();
                if let Some(ms) = kernel_deadline {
                    policy = policy.with_deadline(Duration::from_millis(ms));
                }
                compiled.program.set_fault_policy_all(policy);
            }

            let node = NodeBuilder::new(compiled.program).workers(workers);
            match node.launch(limits).and_then(|n| n.wait()) {
                Ok(report) => {
                    print!("{}", compiled.print.take());
                    eprintln!(
                        "--- {path}: {:?} ({:?}) ---",
                        report.termination, report.wall_time
                    );
                    eprint!("{}", report.instruments.render_table());
                    if shards > 1 {
                        eprintln!(
                            "analyzer shards: {} ({} events, {} inline dispatches)",
                            shards,
                            report.instruments.shard_events().iter().sum::<u64>(),
                            report.instruments.inline_dispatches()
                        );
                    }
                    if let Some(out) = trace_out {
                        let trace = report.trace.as_ref().expect("tracing was enabled");
                        let body = if out.ends_with(".json") {
                            trace.to_chrome_json()
                        } else {
                            trace.to_jsonl()
                        };
                        if let Err(e) = std::fs::write(&out, body) {
                            eprintln!("p2gc: cannot write trace to {out}: {e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("trace: {} events -> {out}", trace.len());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("p2gc: runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "cluster" => {
            let ages: u64 = flag(&args, "--ages").unwrap_or(4);
            let retry = net_retry_flags(&args);
            match args.get(1).map(String::as_str) {
                Some("master") => {
                    let Some(nodes) = flag::<usize>(&args, "--nodes") else {
                        eprintln!("p2gc: cluster master requires --nodes N");
                        return ExitCode::from(2);
                    };
                    let mut cfg = MasterConfig::nodes(nodes);
                    cfg.retry = retry;
                    if let Some(p) = flag::<u16>(&args, "--port") {
                        cfg.port = p;
                    }
                    if let Some(ms) = flag::<u64>(&args, "--failure-timeout-ms") {
                        cfg.failure_timeout = Duration::from_millis(ms);
                    }
                    if let Some(ms) = flag::<u64>(&args, "--deadline-ms") {
                        cfg.deadline = Duration::from_millis(ms);
                    }
                    match run_master(&compiled.spec, &cfg) {
                        Ok(out) => {
                            println!(
                                "digest {:08x} entries {} epoch {} failed {}",
                                out.digest,
                                out.entries,
                                out.epoch,
                                out.failed_nodes.len()
                            );
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("p2gc: cluster master: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                Some("node") => {
                    let Some(id) = flag::<u32>(&args, "--node-id") else {
                        eprintln!("p2gc: cluster node requires --node-id I");
                        return ExitCode::from(2);
                    };
                    let Some(master) = flag::<SocketAddr>(&args, "--master") else {
                        eprintln!("p2gc: cluster node requires --master HOST:PORT");
                        return ExitCode::from(2);
                    };
                    let mut cfg = NodeConfig::new(NodeId(id), master);
                    cfg.retry = retry;
                    if let Some(w) = flag::<usize>(&args, "--workers") {
                        cfg.workers = w.max(1);
                    }
                    if let Some(ms) = flag::<u64>(&args, "--deadline-ms") {
                        cfg.deadline = Duration::from_millis(ms);
                    }
                    match run_node(compiled.program, RunLimits::ages(ages), &cfg) {
                        Ok(()) => ExitCode::SUCCESS,
                        Err(e) => {
                            eprintln!("p2gc: cluster node: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                _ => usage(),
            }
        }
        "serve" => {
            let sessions: usize = flag(&args, "--sessions").unwrap_or(2);
            let frames: u64 = flag(&args, "--frames").unwrap_or(4);
            let workers: usize = flag(&args, "--workers")
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |n| n.get()));
            let shards: usize = flag(&args, "--shards").unwrap_or(1);
            let mut limits = exec_flags(&args, RunLimits::ages(frames).with_shards(shards));
            if let Some(w) = flag::<u64>(&args, "--gc-window") {
                limits = limits.with_gc_window(w);
            }

            // One shared pool; each tenant is a pool-attached node running
            // its own copy of the compiled program (kernel bodies cannot
            // be cloned, so each session recompiles the source).
            let runtime = SessionRuntime::new(workers);
            let mut tenants = Vec::new();
            for s in 0..sessions.max(1) {
                let tenant = match compile_source(&source) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("p2gc: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match runtime.launch_batch(tenant.program, limits.clone()) {
                    Ok(node) => tenants.push((s, node, tenant.print)),
                    Err(e) => {
                        eprintln!("p2gc: session {s}: launch failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let start = std::time::Instant::now();
            let mut failed = false;
            for (s, node, print) in tenants {
                match node.wait() {
                    Ok(report) => {
                        print!("{}", print.take());
                        let instances: u64 = report
                            .instruments
                            .all()
                            .iter()
                            .map(|(_, s)| s.instances)
                            .sum();
                        eprintln!(
                            "--- session {s}: {:?}, {instances} instances, {:?} ---",
                            report.termination, report.wall_time
                        );
                    }
                    Err(e) => {
                        eprintln!("p2gc: session {s}: runtime error: {e}");
                        failed = true;
                    }
                }
            }
            runtime.shutdown();
            eprintln!(
                "--- {path}: {sessions} sessions x {frames} frames on {workers} shared workers \
                 in {:?} ---",
                start.elapsed()
            );
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

/// `p2gc serve-node`: host the built-in pipeline registry behind TCP
/// until an admin shutdown ([`p2g_dist::NetMsg::Finish`]) or the deadline.
fn cmd_serve_node(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig {
        retry: net_retry_flags(args),
        ..ServeConfig::default()
    };
    if let Some(p) = flag::<u16>(args, "--port") {
        cfg.port = p;
    }
    if let Some(w) = flag::<usize>(args, "--workers") {
        cfg.workers = w.max(1);
    }
    if let Some(ms) = flag::<u64>(args, "--stats-interval-ms") {
        cfg.stats_interval = Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = flag::<u64>(args, "--orphan-timeout-ms") {
        cfg.orphan_timeout = Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = flag::<u64>(args, "--deadline-ms") {
        cfg.deadline = Duration::from_millis(ms);
    }
    match run_serve_node(mjpeg_registry(), &cfg) {
        Ok(out) => {
            println!(
                "serve-node: {} sessions, {} rejected, {} frames ({} dropped), {} orphans",
                out.sessions_opened,
                out.sessions_rejected,
                out.frames_completed,
                out.frames_dropped,
                out.orphans_collected
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("p2gc: serve-node: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `p2gc submit`: stream synthetic i420 frames into a serve node as one
/// remote MJPEG session and collect the encoded stream back.
fn cmd_submit(args: &[String]) -> ExitCode {
    let Some(server) = flag::<SocketAddr>(args, "--server") else {
        eprintln!("p2gc: submit requires --server HOST:PORT");
        return ExitCode::from(2);
    };
    let id: u32 = flag(args, "--client-id").unwrap_or(1);
    let width: usize = flag(args, "--width").unwrap_or(64);
    let height: usize = flag(args, "--height").unwrap_or(64);
    let frames: u64 = flag(args, "--frames").unwrap_or(8);
    let quality: i64 = flag(args, "--quality").unwrap_or(75);
    let seed: u64 = flag(args, "--seed").unwrap_or(7);
    let cadence = Duration::from_millis(flag::<u64>(args, "--cadence-ms").unwrap_or(0));
    let qos = Qos {
        class: flag::<u8>(args, "--priority").unwrap_or(1),
        weight: flag::<u32>(args, "--weight").unwrap_or(1).max(1),
    };
    let window: i64 = flag(args, "--window").unwrap_or(8);
    let out_path = flag::<String>(args, "--out");

    let client = match ServeClient::connect(NodeId(id), server, net_retry_flags(args)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("p2gc: submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    let session = match client.open(
        "mjpeg",
        &[
            ("width", width as i64),
            ("height", height as i64),
            ("quality", quality),
            ("window", window),
        ],
        qos,
        Duration::from_secs(10),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("p2gc: submit: {e}");
            client.close();
            return ExitCode::FAILURE;
        }
    };

    let video = SyntheticVideo::new(width, height, frames, seed);
    let mut stream = Vec::new();
    let (mut received, mut dropped) = (0u64, 0u64);
    fn take(
        out: p2g_dist::RemoteOutput,
        stream: &mut Vec<u8>,
        received: &mut u64,
        dropped: &mut u64,
    ) {
        *received += 1;
        match out.payload {
            Some(bytes) => stream.extend_from_slice(&bytes),
            None => *dropped += 1,
        }
    }
    for n in 0..frames {
        let Some(frame) = video.frame(n) else { break };
        if let Err(e) = session.submit(pack_i420(&frame), Duration::from_secs(30)) {
            eprintln!("p2gc: submit: frame {n}: {e}");
            client.close();
            return ExitCode::FAILURE;
        }
        eprintln!("p2gc-submit: frame {n} submitted");
        // Opportunistic drain keeps outputs flowing during the stream.
        while let Ok(Some(out)) = session.recv(Duration::ZERO) {
            take(out, &mut stream, &mut received, &mut dropped);
        }
        if !cadence.is_zero() {
            std::thread::sleep(cadence);
        }
    }
    session.close();
    while received < frames {
        match session.recv(Duration::from_secs(30)) {
            Ok(Some(out)) => take(out, &mut stream, &mut received, &mut dropped),
            Ok(None) => {
                eprintln!("p2gc: submit: timed out after {received}/{frames} outputs");
                client.close();
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("p2gc: submit: {e}");
                client.close();
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(stats) = session.stats() {
        eprintln!(
            "p2gc-submit: server stats: {} completed, {} dropped, fps_milli {}, p95 {}us",
            stats.completed, stats.dropped, stats.fps_milli, stats.p95_latency_us
        );
    }
    if has_flag(args, "--shutdown-server") {
        client.shutdown_server();
    }
    client.close();
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &stream) {
            eprintln!("p2gc: submit: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    // FNV-1a digest so tests can compare streams without shipping bytes.
    let digest = stream
        .iter()
        .fold(0xcbf29ce484222325u64, |h, &b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
    println!(
        "submit: {received} frames ({dropped} dropped), {} bytes, digest {digest:016x}",
        stream.len()
    );
    ExitCode::SUCCESS
}

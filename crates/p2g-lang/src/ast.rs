//! Abstract syntax of the kernel language.

use p2g_field::ScalarType;

/// A whole source file.
#[derive(Debug, Clone, Default)]
pub struct SourceUnit {
    pub fields: Vec<FieldDecl>,
    pub timers: Vec<String>,
    pub kernels: Vec<KernelDef>,
}

/// `int32[] m_data age;` or `uint8[1584][64] y_input age;`
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    pub name: String,
    pub ty: ScalarType,
    /// One entry per dimension; `Some(n)` when an extent was given.
    pub dims: Vec<Option<usize>>,
    /// Whether the field ages (all P2G fields may age; the marker is kept
    /// for fidelity with the paper's syntax).
    pub aged: bool,
}

/// A kernel definition: `name:` followed by declarations and statements.
#[derive(Debug, Clone)]
pub struct KernelDef {
    pub name: String,
    /// `age a;` — name of the age variable, if declared.
    pub age_var: Option<String>,
    /// `index x;` — index variable names, in declaration order.
    pub index_vars: Vec<String>,
    /// `local int32 value;` / `local int32[] values;`
    pub locals: Vec<LocalDecl>,
    /// The kernel body in statement order (fetches, native blocks,
    /// stores interleaved as written).
    pub body: Vec<KernelStmt>,
}

/// `local int32[] values;`
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDecl {
    pub name: String,
    pub ty: ScalarType,
    /// Array dimensionality (0 = scalar).
    pub dims: usize,
}

/// One statement in a kernel definition.
#[derive(Debug, Clone)]
pub enum KernelStmt {
    /// `fetch value = m_data(a)[x];`
    Fetch {
        target: String,
        field: String,
        age: AgeRef,
        subscripts: Vec<Subscript>,
    },
    /// `store m_data(a+1)[x] = value;`
    Store {
        field: String,
        age: AgeRef,
        subscripts: Vec<Subscript>,
        value: String,
    },
    /// `%{ ... %}`
    Native(Vec<Stmt>),
}

/// The age argument of a fetch/store: a constant or `agevar + delta`.
#[derive(Debug, Clone, PartialEq)]
pub enum AgeRef {
    Const(u64),
    Rel { var: String, delta: i64 },
}

/// One subscript of a field reference.
#[derive(Debug, Clone)]
pub enum Subscript {
    /// `[*]` — the whole dimension.
    All,
    /// `[expr]` — a single index. When the expression is exactly an index
    /// variable the compiler emits the static `Var` pattern; otherwise the
    /// index is evaluated at run time (data-dependent store target).
    Expr(Expr),
}

/// Statements of the native-block mini language.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `int i = 0;`
    Decl {
        ty: ScalarType,
        name: String,
        init: Option<Expr>,
    },
    Expr(Expr),
    Block(Vec<Stmt>),
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    Break,
    Continue,
    Return,
}

/// Expressions of the native-block mini language.
#[derive(Debug, Clone)]
pub enum Expr {
    Int(i64),
    Float(f64),
    Str(String),
    Var(String),
    /// `target = value`, `target += value`, ...
    Assign {
        target: String,
        op: AssignOp,
        value: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    /// `x++` / `x--` (yields the pre-increment value, like C).
    PostIncDec {
        target: String,
        inc: bool,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Ternary {
        cond: Box<Expr>,
        then_val: Box<Expr>,
        else_val: Box<Expr>,
    },
    /// Builtin or user call: `put(values, v, i)`, `sqrt(x)`...
    Call {
        name: String,
        args: Vec<Expr>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    Set,
    Add,
    Sub,
    Mul,
    Div,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
    PreInc,
    PreDec,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

//! Semantic analysis: bind names, derive the [`ProgramSpec`] (the
//! declarative half the schedulers consume) and build per-kernel execution
//! plans for the interpreter.

use std::collections::HashMap;

use p2g_field::{Extents, FieldDef, ScalarType};
use p2g_graph::spec::{
    AgeExpr, FetchDecl, IndexSel, IndexVar, KernelId, KernelSpec, ProgramSpec, StoreDecl,
};

use crate::ast::{AgeRef, Expr, KernelDef, KernelStmt, LocalDecl, SourceUnit, Stmt, Subscript};
use crate::error::LangError;

/// A store step in a kernel's execution plan.
#[derive(Debug, Clone)]
pub struct StorePlan {
    /// Index into the kernel's `stores` declarations.
    pub store_idx: usize,
    /// The local variable whose value is stored.
    pub value_var: String,
    /// Per dimension: `Some(expr)` when the subscript must be evaluated at
    /// run time (data-dependent target); `None` when the declaration's
    /// static pattern applies.
    pub dyn_subs: Vec<Option<Expr>>,
}

/// One step of a kernel body, executed in source order after all fetches
/// are bound.
#[derive(Debug, Clone)]
pub enum BodyStep {
    Native(Vec<Stmt>),
    Store(StorePlan),
}

/// Everything the interpreter needs to run one kernel definition.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    pub name: String,
    /// Age variable name, if declared.
    pub age_var: Option<String>,
    /// Index variable names in declaration order.
    pub index_vars: Vec<String>,
    pub locals: Vec<LocalDecl>,
    /// Fetch target variable names, in fetch-declaration order.
    pub fetch_targets: Vec<String>,
    pub steps: Vec<BodyStep>,
    /// True when a native block calls `print`/`println` — the compiler
    /// marks such kernels ordered so output is deterministic.
    pub prints: bool,
}

/// Result of semantic analysis.
#[derive(Debug)]
pub struct Analyzed {
    pub spec: ProgramSpec,
    pub plans: Vec<KernelPlan>,
    pub timers: Vec<String>,
}

/// Analyze a parsed source unit.
pub fn analyze(unit: &SourceUnit) -> Result<Analyzed, LangError> {
    let mut spec = ProgramSpec::new();
    let mut field_ids = HashMap::new();

    for f in &unit.fields {
        if field_ids.contains_key(&f.name) {
            return Err(LangError::sema(format!("duplicate field '{}'", f.name)));
        }
        let def = if f.dims.iter().all(|d| d.is_some()) {
            FieldDef::with_extents(
                &f.name,
                f.ty,
                Extents::new(f.dims.iter().map(|d| d.unwrap()).collect::<Vec<_>>()),
            )
        } else {
            FieldDef::new(&f.name, f.ty, f.dims.len())
        };
        let id = spec.add_field(def);
        field_ids.insert(f.name.clone(), id);
    }

    let mut plans = Vec::new();
    for k in &unit.kernels {
        let (kspec, plan) = analyze_kernel(k, &spec, &field_ids)?;
        spec.add_kernel(kspec);
        plans.push(plan);
    }

    spec.validate()
        .map_err(|e| LangError::sema(e.to_string()))?;
    Ok(Analyzed {
        spec,
        plans,
        timers: unit.timers.clone(),
    })
}

fn analyze_kernel(
    k: &KernelDef,
    spec: &ProgramSpec,
    field_ids: &HashMap<String, p2g_field::FieldId>,
) -> Result<(KernelSpec, KernelPlan), LangError> {
    let index_of: HashMap<&str, u8> = k
        .index_vars
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u8))
        .collect();
    if index_of.len() != k.index_vars.len() {
        return Err(LangError::sema(format!(
            "kernel '{}': duplicate index variable",
            k.name
        )));
    }
    let local_names: HashMap<&str, &LocalDecl> =
        k.locals.iter().map(|l| (l.name.as_str(), l)).collect();

    let resolve_age = |age: &AgeRef| -> Result<AgeExpr, LangError> {
        match age {
            AgeRef::Const(c) => Ok(AgeExpr::Const(*c)),
            AgeRef::Rel { var, delta } => {
                if k.age_var.as_deref() != Some(var.as_str()) {
                    return Err(LangError::sema(format!(
                        "kernel '{}': age expression uses undeclared variable '{var}'",
                        k.name
                    )));
                }
                Ok(AgeExpr::Rel(*delta))
            }
        }
    };

    let mut fetches = Vec::new();
    let mut stores = Vec::new();
    let mut fetch_targets = Vec::new();
    let mut steps = Vec::new();
    let mut prints = false;

    for stmt in &k.body {
        match stmt {
            KernelStmt::Fetch {
                target,
                field,
                age,
                subscripts,
            } => {
                let fid = *field_ids.get(field).ok_or_else(|| {
                    LangError::sema(format!("kernel '{}': unknown field '{field}'", k.name))
                })?;
                let ndim = spec.field(fid).ndim;
                let dims = resolve_subscripts(
                    &k.name, subscripts, ndim, &index_of, /* allow_dynamic */ false,
                )?
                .into_iter()
                .map(|(sel, _)| sel)
                .collect();
                if !local_names.contains_key(target.as_str()) {
                    return Err(LangError::sema(format!(
                        "kernel '{}': fetch target '{target}' is not a declared local",
                        k.name
                    )));
                }
                fetches.push(FetchDecl {
                    field: fid,
                    age: resolve_age(age)?,
                    dims,
                });
                fetch_targets.push(target.clone());
            }
            KernelStmt::Store {
                field,
                age,
                subscripts,
                value,
            } => {
                let fid = *field_ids.get(field).ok_or_else(|| {
                    LangError::sema(format!("kernel '{}': unknown field '{field}'", k.name))
                })?;
                let ndim = spec.field(fid).ndim;
                let resolved = resolve_subscripts(&k.name, subscripts, ndim, &index_of, true)?;
                if !local_names.contains_key(value.as_str()) {
                    return Err(LangError::sema(format!(
                        "kernel '{}': store value '{value}' is not a declared local",
                        k.name
                    )));
                }
                let store_idx = stores.len();
                let dyn_subs = resolved.iter().map(|(_, d)| d.clone()).collect();
                stores.push(StoreDecl {
                    field: fid,
                    age: resolve_age(age)?,
                    dims: resolved.into_iter().map(|(sel, _)| sel).collect(),
                });
                steps.push(BodyStep::Store(StorePlan {
                    store_idx,
                    value_var: value.clone(),
                    dyn_subs,
                }));
            }
            KernelStmt::Native(stmts) => {
                if natives_print(stmts) {
                    prints = true;
                }
                steps.push(BodyStep::Native(stmts.clone()));
            }
        }
    }

    let kspec = KernelSpec {
        id: KernelId(0), // reassigned by add_kernel
        name: k.name.clone(),
        index_vars: k.index_vars.len() as u8,
        has_age_var: k.age_var.is_some(),
        fetches,
        stores,
    };
    let plan = KernelPlan {
        name: k.name.clone(),
        age_var: k.age_var.clone(),
        index_vars: k.index_vars.clone(),
        locals: k.locals.clone(),
        fetch_targets,
        steps,
        prints,
    };
    Ok((kspec, plan))
}

/// Resolve field-reference subscripts to static selectors, with optional
/// dynamic (runtime-evaluated) expressions for stores. Missing trailing
/// subscripts select the whole dimension.
#[allow(clippy::type_complexity)]
fn resolve_subscripts(
    kernel: &str,
    subs: &[Subscript],
    ndim: usize,
    index_of: &HashMap<&str, u8>,
    allow_dynamic: bool,
) -> Result<Vec<(IndexSel, Option<Expr>)>, LangError> {
    if subs.len() > ndim {
        return Err(LangError::sema(format!(
            "kernel '{kernel}': {} subscripts on a {ndim}-dimensional field",
            subs.len()
        )));
    }
    let mut out = Vec::with_capacity(ndim);
    for sub in subs {
        out.push(match sub {
            Subscript::All => (IndexSel::All, None),
            Subscript::Expr(Expr::Int(v)) if *v >= 0 => (IndexSel::Const(*v as usize), None),
            Subscript::Expr(Expr::Var(name)) if index_of.contains_key(name.as_str()) => {
                (IndexSel::Var(IndexVar(index_of[name.as_str()])), None)
            }
            Subscript::Expr(e) => {
                if !allow_dynamic {
                    return Err(LangError::sema(format!(
                        "kernel '{kernel}': fetch subscripts must be index variables, \
                         constants or '*' (dynamic indices are only allowed in stores)"
                    )));
                }
                // Statically the scheduler sees the whole dimension; the
                // actual index is evaluated when the instance runs.
                (IndexSel::All, Some(e.clone()))
            }
        });
    }
    while out.len() < ndim {
        out.push((IndexSel::All, None));
    }
    Ok(out)
}

fn natives_print(stmts: &[Stmt]) -> bool {
    fn expr_prints(e: &Expr) -> bool {
        match e {
            Expr::Call { name, args } => {
                name == "print" || name == "println" || args.iter().any(expr_prints)
            }
            Expr::Assign { value, .. } => expr_prints(value),
            Expr::Unary { expr, .. } => expr_prints(expr),
            Expr::Binary { lhs, rhs, .. } => expr_prints(lhs) || expr_prints(rhs),
            Expr::Ternary {
                cond,
                then_val,
                else_val,
            } => expr_prints(cond) || expr_prints(then_val) || expr_prints(else_val),
            _ => false,
        }
    }
    stmts.iter().any(|s| match s {
        Stmt::Decl { init: Some(e), .. } | Stmt::Expr(e) => expr_prints(e),
        Stmt::Decl { init: None, .. } | Stmt::Break | Stmt::Continue | Stmt::Return => false,
        Stmt::Block(b) => natives_print(b),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_prints(cond)
                || natives_print(std::slice::from_ref(then_branch))
                || else_branch
                    .as_deref()
                    .is_some_and(|e| natives_print(std::slice::from_ref(e)))
        }
        Stmt::While { cond, body } => {
            expr_prints(cond) || natives_print(std::slice::from_ref(body))
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            init.as_deref()
                .is_some_and(|s| natives_print(std::slice::from_ref(s)))
                || cond.as_ref().is_some_and(expr_prints)
                || step.as_ref().is_some_and(expr_prints)
                || natives_print(std::slice::from_ref(body))
        }
    })
}

/// The scalar type a fetch target should be bound as, given the local decl.
pub fn local_type(locals: &[LocalDecl], name: &str) -> Option<(ScalarType, usize)> {
    locals
        .iter()
        .find(|l| l.name == name)
        .map(|l| (l.ty, l.dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Result<Analyzed, LangError> {
        analyze(&parse(src).unwrap())
    }

    #[test]
    fn figure5_analyzes_to_expected_spec() {
        let src = r#"
int32[] m_data age;
int32[] p_data age;
init:
  local int32[] values;
  %{ int i = 0; for (; i < 5; ++i) put(values, i + 10, i); %}
  store m_data(0) = values;
mul2:
  age a; index x;
  local int32 value;
  fetch value = m_data(a)[x];
  %{ value *= 2; %}
  store p_data(a)[x] = value;
plus5:
  age a; index x;
  local int32 value;
  fetch value = p_data(a)[x];
  %{ value += 5; %}
  store m_data(a+1)[x] = value;
"#;
        let a = analyze_src(src).unwrap();
        assert_eq!(a.spec.kernels.len(), 3);
        let mul2 = &a.spec.kernels[1];
        assert!(mul2.has_age_var);
        assert_eq!(mul2.index_vars, 1);
        assert_eq!(mul2.fetches[0].age, AgeExpr::Rel(0));
        assert_eq!(mul2.fetches[0].dims, vec![IndexSel::Var(IndexVar(0))]);
        let plus5 = &a.spec.kernels[2];
        assert_eq!(plus5.stores[0].age, AgeExpr::Rel(1));
    }

    #[test]
    fn dynamic_store_subscript_allowed() {
        let src = r#"
float64[][] points age;
int32[] assignment age;
assign:
  age a; index x;
  local float64[] p;
  local int32 best;
  fetch p = points(a)[x][*];
  %{ best = 0; %}
  store assignment(a)[best] = best;
"#;
        let a = analyze_src(src).unwrap();
        let assign = &a.spec.kernels[0];
        // Dynamic index appears as All in the static spec.
        assert_eq!(assign.stores[0].dims, vec![IndexSel::All]);
        match &a.plans[0].steps[1] {
            BodyStep::Store(sp) => {
                assert!(sp.dyn_subs[0].is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dynamic_fetch_subscript_rejected() {
        let src = r#"
int32[] f age;
k:
  age a;
  local int32 v;
  local int32 i;
  fetch v = f(a)[i + 1];
"#;
        let err = analyze_src(src).unwrap_err();
        assert!(err.to_string().contains("fetch subscripts"), "{err}");
    }

    #[test]
    fn unknown_field_rejected() {
        let err = analyze_src("k:\n local int32 v;\n fetch v = nope(0);").unwrap_err();
        assert!(err.to_string().contains("unknown field"), "{err}");
    }

    #[test]
    fn undeclared_age_var_rejected() {
        let src = "int32[] f age;\nk:\n local int32 v;\n fetch v = f(b)[0];";
        let err = analyze_src(src).unwrap_err();
        assert!(err.to_string().contains("undeclared variable"), "{err}");
    }

    #[test]
    fn undeclared_fetch_target_rejected() {
        let src = "int32[] f age;\nk:\n age a;\n fetch v = f(a);";
        let err = analyze_src(src).unwrap_err();
        assert!(err.to_string().contains("not a declared local"), "{err}");
    }

    #[test]
    fn print_detection_marks_plan() {
        let src = r#"
int32[] f age;
init:
  local int32[] v;
  %{ put(v, 1, 0); %}
  store f(0) = v;
show:
  age a;
  local int32[] m;
  fetch m = f(a);
  %{ println(get(m, 0)); %}
"#;
        let a = analyze_src(src).unwrap();
        assert!(!a.plans[0].prints);
        assert!(a.plans[1].prints);
    }

    #[test]
    fn missing_trailing_subscripts_become_all() {
        let src = r#"
uint8[][] frame age;
k:
  age a; index x;
  local uint8[] row;
  fetch row = frame(a)[x];
"#;
        let a = analyze_src(src).unwrap();
        assert_eq!(
            a.spec.kernels[0].fetches[0].dims,
            vec![IndexSel::Var(IndexVar(0)), IndexSel::All]
        );
    }

    #[test]
    fn non_aging_cycle_caught_via_spec_validation() {
        let src = r#"
int32[] f1 age;
int32[] f2 age;
a:
  age t;
  local int32[] v;
  fetch v = f1(t);
  store f2(t) = v;
b:
  age t;
  local int32[] v;
  fetch v = f2(t);
  store f1(t) = v;
"#;
        let err = analyze_src(src).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }
}

//! Kernel-language errors with source positions.

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing, parsing, semantic analysis or interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// Lexical error (bad character, unterminated block...).
    Lex { pos: Pos, message: String },
    /// Syntax error.
    Parse { pos: Pos, message: String },
    /// Semantic error (unknown field, type mismatch, unbound variable...).
    Sema { message: String },
    /// Runtime error inside an interpreted native block.
    Interp { kernel: String, message: String },
}

impl LangError {
    pub(crate) fn lex(pos: Pos, message: impl Into<String>) -> LangError {
        LangError::Lex {
            pos,
            message: message.into(),
        }
    }

    pub(crate) fn parse(pos: Pos, message: impl Into<String>) -> LangError {
        LangError::Parse {
            pos,
            message: message.into(),
        }
    }

    pub(crate) fn sema(message: impl Into<String>) -> LangError {
        LangError::Sema {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            LangError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            LangError::Sema { message } => write!(f, "semantic error: {message}"),
            LangError::Interp { kernel, message } => {
                write!(f, "runtime error in kernel '{kernel}': {message}")
            }
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display() {
        let p = Pos { line: 3, col: 14 };
        assert_eq!(p.to_string(), "3:14");
    }
}

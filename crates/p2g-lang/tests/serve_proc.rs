//! Remote session serving, end to end across real OS processes: a
//! `p2gc serve-node` hosting the `"mjpeg"` pipeline over TCP, `p2gc
//! submit` clients streaming synthetic i420 frames into it, and a raw
//! wire client abusing the protocol.
//!
//! The correctness bar is bit-exactness: the MJPEG stream a remote
//! client receives must equal `encode_standalone` over the same
//! synthetic source, for one tenant and for several concurrent tenants.
//! The robustness bar is that a `kill -9`'d client leaves no session
//! behind and a malformed request of any kind draws a `SessionRejected`,
//! never a server crash.

#![cfg(unix)]

use std::fs::File;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use p2g_dist::{NetMsg, RetryConfig, TcpNet, Transport, MASTER_NODE};
use p2g_graph::NodeId;
use p2g_mjpeg::{encode_standalone, SyntheticVideo};

const P2GC: &str = env!("CARGO_BIN_EXE_p2gc");

/// Hard cap on any single wait; generous next to the in-run deadlines so
/// a wedged server fails the test instead of hanging CI.
const HARD_TIMEOUT: Duration = Duration::from_secs(60);

static UNIQ: AtomicU64 = AtomicU64::new(0);

/// A spawned p2gc process with captured stdout/stderr, killed on drop so
/// a failing assertion can't leak orphan processes.
struct Proc {
    child: Child,
    out: PathBuf,
    err: PathBuf,
}

impl Proc {
    fn spawn(tag: &str, args: &[&str]) -> Proc {
        let dir = std::env::temp_dir();
        let uniq = format!(
            "p2g-serve-{}-{}-{}",
            std::process::id(),
            tag,
            UNIQ.fetch_add(1, Ordering::Relaxed)
        );
        let out = dir.join(format!("{uniq}.out"));
        let err = dir.join(format!("{uniq}.err"));
        let child = Command::new(P2GC)
            .args(args)
            .stdout(File::create(&out).expect("create stdout file"))
            .stderr(File::create(&err).expect("create stderr file"))
            .spawn()
            .expect("spawn p2gc");
        Proc { child, out, err }
    }

    fn stdout(&self) -> String {
        std::fs::read_to_string(&self.out).unwrap_or_default()
    }

    fn stderr(&self) -> String {
        std::fs::read_to_string(&self.err).unwrap_or_default()
    }

    /// Poll stderr until `needle` shows up; panic on the hard timeout.
    fn wait_for_stderr(&self, needle: &str) -> String {
        let start = Instant::now();
        loop {
            let text = self.stderr();
            if text.contains(needle) {
                return text;
            }
            assert!(
                start.elapsed() < HARD_TIMEOUT,
                "timed out waiting for {needle:?}; stderr so far:\n{text}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Poll until exit; panic (and kill) on the hard timeout.
    fn wait_exit(&mut self) -> std::process::ExitStatus {
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(
                start.elapsed() < HARD_TIMEOUT,
                "process did not exit within {HARD_TIMEOUT:?}; stderr:\n{}",
                self.stderr()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// SIGKILL — no cleanup, no flush, the real crash case.
    fn kill_dash_nine(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.out);
        let _ = std::fs::remove_file(&self.err);
    }
}

fn spawn_serve_node(tag: &str, extra: &[&str]) -> (Proc, u16) {
    let mut args = vec![
        "serve-node",
        "--port",
        "0",
        "--workers",
        "2",
        "--deadline-ms",
        "55000",
    ];
    args.extend_from_slice(extra);
    let node = Proc::spawn(tag, &args);
    let text = node.wait_for_stderr("p2g-serve: listening on port ");
    let after = text
        .split("p2g-serve: listening on port ")
        .nth(1)
        .expect("port line");
    let port = after
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("parse serve port");
    (node, port)
}

/// A temp path for a client's `--out` stream, removed on drop.
struct OutFile(PathBuf);

impl OutFile {
    fn new(tag: &str) -> OutFile {
        OutFile(std::env::temp_dir().join(format!(
            "p2g-serve-{}-{}-{}.mjpeg",
            std::process::id(),
            tag,
            UNIQ.fetch_add(1, Ordering::Relaxed)
        )))
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }

    fn bytes(&self) -> Vec<u8> {
        std::fs::read(&self.0).expect("read client output file")
    }
}

impl Drop for OutFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

struct SubmitSpec<'a> {
    tag: &'a str,
    client_id: u32,
    frames: u64,
    seed: u64,
    out: &'a OutFile,
    extra: &'a [&'a str],
}

fn spawn_submit(port: u16, spec: &SubmitSpec) -> Proc {
    let server = format!("127.0.0.1:{port}");
    let client_id = spec.client_id.to_string();
    let frames = spec.frames.to_string();
    let seed = spec.seed.to_string();
    let mut args = vec![
        "submit",
        "--server",
        &server,
        "--client-id",
        &client_id,
        "--frames",
        &frames,
        "--seed",
        &seed,
        "--out",
        spec.out.path(),
    ];
    args.extend_from_slice(spec.extra);
    Proc::spawn(spec.tag, &args)
}

/// What `encode_standalone` produces for the same synthetic source the
/// `p2gc submit` client streams (64×64, quality 75, naive DCT).
fn oracle(frames: u64, seed: u64) -> Vec<u8> {
    encode_standalone(&SyntheticVideo::new(64, 64, frames, seed), 75, frames, false)
}

/// One remote MJPEG session over real sockets and processes produces the
/// byte-identical stream of the standalone encoder.
#[test]
fn remote_session_is_bit_identical_to_standalone() {
    let (mut node, port) = spawn_serve_node("solo", &[]);
    let out = OutFile::new("solo");
    let mut client = spawn_submit(
        port,
        &SubmitSpec {
            tag: "solo-c",
            client_id: 1,
            frames: 6,
            seed: 11,
            out: &out,
            extra: &["--shutdown-server"],
        },
    );
    assert!(
        client.wait_exit().success(),
        "client failed:\n{}",
        client.stderr()
    );
    assert!(node.wait_exit().success(), "server failed:\n{}", node.stderr());
    assert_eq!(
        out.bytes(),
        oracle(6, 11),
        "remote stream must be bit-identical to encode_standalone"
    );
    let summary = node.stdout();
    assert!(
        summary.contains("serve-node: 1 sessions, 0 rejected, 6 frames (0 dropped), 0 orphans"),
        "unexpected serve outcome: {summary:?}"
    );
}

/// Four concurrent remote tenants (distinct processes, seeds and QoS
/// settings) each get their own bit-exact stream back — sessions on the
/// shared pool do not bleed into each other.
#[test]
fn four_concurrent_remote_sessions_are_each_bit_exact() {
    let (mut node, port) = spawn_serve_node("quad", &[]);
    let seeds = [21u64, 22, 23, 24];
    let frames = 5u64;
    let outs: Vec<OutFile> = (0..4).map(|i| OutFile::new(&format!("quad{i}"))).collect();
    let qos: [&[&str]; 4] = [
        &["--priority", "0"],
        &["--priority", "1", "--weight", "3"],
        &["--priority", "1"],
        &["--priority", "2"],
    ];
    let mut clients: Vec<Proc> = (0..4)
        .map(|i| {
            spawn_submit(
                port,
                &SubmitSpec {
                    tag: &format!("quad-c{i}"),
                    client_id: i as u32 + 1,
                    frames,
                    seed: seeds[i],
                    out: &outs[i],
                    extra: qos[i],
                },
            )
        })
        .collect();
    for (i, c) in clients.iter_mut().enumerate() {
        assert!(
            c.wait_exit().success(),
            "client {i} failed:\n{}",
            c.stderr()
        );
    }
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(
            out.bytes(),
            oracle(frames, seeds[i]),
            "tenant {i} stream must match its standalone oracle"
        );
    }
    // A final tiny session brings the server down cleanly.
    let last = OutFile::new("quad-last");
    let mut closer = spawn_submit(
        port,
        &SubmitSpec {
            tag: "quad-close",
            client_id: 9,
            frames: 1,
            seed: 1,
            out: &last,
            extra: &["--shutdown-server"],
        },
    );
    assert!(closer.wait_exit().success(), "closer failed:\n{}", closer.stderr());
    assert!(node.wait_exit().success(), "server failed:\n{}", node.stderr());
    assert!(
        node.stdout()
            .contains("serve-node: 5 sessions, 0 rejected, 21 frames (0 dropped), 0 orphans"),
        "unexpected serve outcome: {:?}",
        node.stdout()
    );
}

/// `kill -9` a client mid-stream: the node must notice the dead tenant,
/// collect its session (freeing the slab instead of leaking resident
/// ages), and keep serving new sessions.
#[test]
fn killed_client_session_is_collected_and_serving_continues() {
    let (mut node, port) = spawn_serve_node(
        "chaos",
        &[
            "--stats-interval-ms",
            "50",
            "--orphan-timeout-ms",
            "400",
            "--net-retries",
            "3",
            "--net-backoff-us",
            "1000",
        ],
    );
    let victim_out = OutFile::new("chaos-victim");
    let mut victim = spawn_submit(
        port,
        &SubmitSpec {
            tag: "chaos-victim",
            client_id: 1,
            frames: 200,
            seed: 5,
            out: &victim_out,
            extra: &["--cadence-ms", "150"],
        },
    );
    // Kill once frames are demonstrably in the pipeline.
    victim.wait_for_stderr("p2gc-submit: frame 3 submitted");
    victim.kill_dash_nine();
    node.wait_for_stderr("p2g-serve: collected session 1/1");

    // The node keeps serving: a fresh tenant still gets a bit-exact run.
    let out = OutFile::new("chaos-after");
    let mut after = spawn_submit(
        port,
        &SubmitSpec {
            tag: "chaos-after",
            client_id: 2,
            frames: 4,
            seed: 31,
            out: &out,
            extra: &["--shutdown-server"],
        },
    );
    assert!(after.wait_exit().success(), "post-kill client failed:\n{}", after.stderr());
    assert_eq!(out.bytes(), oracle(4, 31));
    assert!(node.wait_exit().success(), "server failed:\n{}", node.stderr());
    let summary = node.stdout();
    assert!(
        summary.contains("2 sessions") && summary.contains("1 orphans"),
        "the orphaned session must be accounted: {summary:?}"
    );
}

/// A raw wire client for protocol-abuse tests: speaks `NetMsg` directly
/// so it can send what `ServeClient` never would.
struct RawClient {
    net: std::sync::Arc<TcpNet>,
    me: NodeId,
    retry: RetryConfig,
}

impl RawClient {
    fn connect(port: u16) -> RawClient {
        let me = NodeId(9);
        let retry = RetryConfig::default();
        let net = TcpNet::bind(me, retry, 0).expect("bind raw client");
        net.set_peer(MASTER_NODE, SocketAddr::from(([127, 0, 0, 1], port)));
        assert!(
            net.send_with_retry(
                me,
                MASTER_NODE,
                NetMsg::Hello {
                    node: me,
                    workers: 0,
                    port: net.port(),
                },
                &retry,
            ),
            "raw client cannot reach the serve node"
        );
        RawClient { net, me, retry }
    }

    fn send(&self, msg: NetMsg) {
        assert!(
            self.net.send_with_retry(self.me, MASTER_NODE, msg, &self.retry),
            "send to serve node failed"
        );
    }

    fn open(&self, session: u64, params: &[(&str, i64)], priority: u8) {
        self.send(NetMsg::OpenSession {
            session,
            pipeline: "mjpeg".to_string(),
            params: params.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            priority,
            weight: 1,
        });
    }

    /// Block until the server acknowledges `session`.
    fn expect_opened(&self, session: u64) {
        let deadline = Instant::now() + HARD_TIMEOUT;
        loop {
            assert!(Instant::now() < deadline, "no SessionOpened for {session}");
            match self.net.recv_timeout(self.me, Duration::from_millis(50)) {
                Some((_, NetMsg::SessionOpened { session: s, .. })) if s == session => return,
                Some((_, NetMsg::SessionRejected { session: s, reason })) if s == session => {
                    panic!("session {session} unexpectedly rejected: {reason}")
                }
                _ => {}
            }
        }
    }

    /// Block until the server rejects `session` with a reason containing
    /// `needle`.
    fn expect_rejected(&self, session: u64, needle: &str) {
        let deadline = Instant::now() + HARD_TIMEOUT;
        loop {
            assert!(
                Instant::now() < deadline,
                "no SessionRejected({needle:?}) for {session}"
            );
            match self.net.recv_timeout(self.me, Duration::from_millis(50)) {
                Some((_, NetMsg::SessionRejected { session: s, reason })) if s == session => {
                    assert!(
                        reason.contains(needle),
                        "session {session} rejected for the wrong reason: \
                         {reason:?} (want {needle:?})"
                    );
                    return;
                }
                _ => {}
            }
        }
    }
}

/// Every malformed or malicious request draws a structured
/// `SessionRejected` and the server keeps running — no panic on any
/// remote-influenceable path.
#[test]
fn malformed_requests_are_rejected_never_crash_the_node() {
    let (mut node, port) = spawn_serve_node("abuse", &[]);
    let raw = RawClient::connect(port);
    // 256×256 frames: big enough that the encode pipeline is still busy
    // when the next abuse message lands (makes the credit-overflow case
    // deterministic).
    let dims: &[(&str, i64)] = &[("width", 256), ("height", 256), ("window", 1)];
    let i420 = vec![128u8; 256 * 256 * 3 / 2];

    // Unknown pipeline name.
    raw.send(NetMsg::OpenSession {
        session: 1,
        pipeline: "nope".to_string(),
        params: vec![],
        priority: 1,
        weight: 1,
    });
    raw.expect_rejected(1, "unknown pipeline");

    // Priority outside the defined QoS classes.
    raw.open(2, &[], 9);
    raw.expect_rejected(2, "bad priority class");

    // Pipeline-parameter validation: width not a multiple of 16.
    raw.open(3, &[("width", 13)], 1);
    raw.expect_rejected(3, "multiple of 16");

    // Pipeline-parameter validation: quality out of range.
    raw.open(4, &[("quality", 500)], 1);
    raw.expect_rejected(4, "quality must be");

    // Submit into a session that was never opened.
    raw.send(NetMsg::SubmitFrame {
        session: 999,
        age: 0,
        payload: i420.clone(),
    });
    raw.expect_rejected(999, "unknown session");

    // Credit overflow: window 1 grants exactly age 0; age 1 back-to-back
    // must bounce.
    raw.open(50, dims, 1);
    raw.expect_opened(50);
    raw.send(NetMsg::SubmitFrame {
        session: 50,
        age: 0,
        payload: i420.clone(),
    });
    raw.send(NetMsg::SubmitFrame {
        session: 50,
        age: 1,
        payload: i420.clone(),
    });
    raw.expect_rejected(50, "credit overflow");

    // Malformed payload: not an i420 frame of the session's dimensions.
    raw.open(60, dims, 1);
    raw.expect_opened(60);
    raw.send(NetMsg::SubmitFrame {
        session: 60,
        age: 0,
        payload: vec![1, 2, 3],
    });
    raw.expect_rejected(60, "bad frame payload");

    // Age gap: client-assigned ages must be dense from 0.
    raw.open(70, dims, 1);
    raw.expect_opened(70);
    raw.send(NetMsg::SubmitFrame {
        session: 70,
        age: 5,
        payload: i420.clone(),
    });
    raw.expect_rejected(70, "age gap");

    // The server survived all of it and shuts down cleanly on request.
    raw.send(NetMsg::Finish);
    assert!(
        node.wait_exit().success(),
        "server must exit cleanly after protocol abuse:\n{}",
        node.stderr()
    );
    raw.net.shutdown();
    let summary = node.stdout();
    assert!(
        summary.contains("8 rejected"),
        "every abuse case must be counted as a reject: {summary:?}"
    );
}

//! Multi-process cluster integration: real `p2gc cluster` master and node
//! OS processes over localhost TCP, including a `kill -9` chaos run.
//!
//! The exactly-once assertion is digest equality: the master prints a
//! CRC32 over the sorted, deduplicated wire encoding of every written
//! (field, age, region, buffer) entry, so any lost, duplicated, or
//! corrupted result — across any node count or recovery history — changes
//! the digest.

#![cfg(unix)]

use std::fs::File;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const P2GC: &str = env!("CARGO_BIN_EXE_p2gc");
const PROGRAM: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs/mul_sum.p2g");

/// Hard cap on any single wait; generous next to the in-run deadlines so
/// a wedged cluster fails the test instead of hanging CI.
const HARD_TIMEOUT: Duration = Duration::from_secs(60);

static UNIQ: AtomicU64 = AtomicU64::new(0);

/// A spawned p2gc process with captured stdout/stderr, killed on drop so
/// a failing assertion can't leak orphan processes.
struct Proc {
    child: Child,
    out: PathBuf,
    err: PathBuf,
}

impl Proc {
    fn spawn(tag: &str, args: &[&str]) -> Proc {
        let dir = std::env::temp_dir();
        let uniq = format!(
            "p2g-cluster-{}-{}-{}",
            std::process::id(),
            tag,
            UNIQ.fetch_add(1, Ordering::Relaxed)
        );
        let out = dir.join(format!("{uniq}.out"));
        let err = dir.join(format!("{uniq}.err"));
        let child = Command::new(P2GC)
            .args(args)
            .stdout(File::create(&out).expect("create stdout file"))
            .stderr(File::create(&err).expect("create stderr file"))
            .spawn()
            .expect("spawn p2gc");
        Proc { child, out, err }
    }

    fn stdout(&self) -> String {
        std::fs::read_to_string(&self.out).unwrap_or_default()
    }

    fn stderr(&self) -> String {
        std::fs::read_to_string(&self.err).unwrap_or_default()
    }

    /// Poll stderr until `needle` shows up; panic on the hard timeout.
    fn wait_for_stderr(&self, needle: &str) -> String {
        let start = Instant::now();
        loop {
            let text = self.stderr();
            if text.contains(needle) {
                return text;
            }
            assert!(
                start.elapsed() < HARD_TIMEOUT,
                "timed out waiting for {needle:?}; stderr so far:\n{text}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Poll until exit; panic (and kill) on the hard timeout.
    fn wait_exit(&mut self) -> std::process::ExitStatus {
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(
                start.elapsed() < HARD_TIMEOUT,
                "process did not exit within {HARD_TIMEOUT:?}; stderr:\n{}",
                self.stderr()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// SIGKILL — no cleanup, no flush, the real crash case.
    fn kill_dash_nine(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.out);
        let _ = std::fs::remove_file(&self.err);
    }
}

/// The master announces its (possibly ephemeral) port on stderr.
fn master_port(master: &Proc) -> u16 {
    let text = master.wait_for_stderr("listening on 127.0.0.1:");
    let after = text.split("listening on 127.0.0.1:").nth(1).expect("port line");
    after
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("parse master port")
}

/// The master prints `digest XXXXXXXX entries N epoch E failed F`.
fn parse_master_line(master: &Proc) -> (String, u64, u64, u64) {
    let out = master.stdout();
    let fields: Vec<&str> = out.split_whitespace().collect();
    assert!(
        fields.len() >= 8 && fields[0] == "digest",
        "unexpected master output: {out:?}"
    );
    (
        fields[1].to_string(),
        fields[3].parse().expect("entries"),
        fields[5].parse().expect("epoch"),
        fields[7].parse().expect("failed"),
    )
}

fn spawn_master(tag: &str, nodes: usize) -> Proc {
    Proc::spawn(
        tag,
        &[
            "cluster",
            "master",
            PROGRAM,
            "--nodes",
            &nodes.to_string(),
            "--port",
            "0",
            "--ages",
            "3",
            "--failure-timeout-ms",
            "400",
            "--deadline-ms",
            "30000",
        ],
    )
}

fn spawn_node(tag: &str, id: u32, port: u16) -> Proc {
    Proc::spawn(
        tag,
        &[
            "cluster",
            "node",
            PROGRAM,
            "--node-id",
            &id.to_string(),
            "--master",
            &format!("127.0.0.1:{port}"),
            "--workers",
            "2",
            "--ages",
            "3",
            "--deadline-ms",
            "30000",
        ],
    )
}

/// Run a healthy N-node cluster to completion and return
/// (digest, entries, epoch, failed).
fn run_cluster(tag: &str, nodes: usize) -> (String, u64, u64, u64) {
    let mut master = spawn_master(tag, nodes);
    let port = master_port(&master);
    let mut procs: Vec<Proc> = (0..nodes as u32)
        .map(|id| spawn_node(&format!("{tag}-n{id}"), id, port))
        .collect();
    let status = master.wait_exit();
    assert!(status.success(), "master failed:\n{}", master.stderr());
    for p in &mut procs {
        assert!(p.wait_exit().success(), "node failed:\n{}", p.stderr());
    }
    parse_master_line(&master)
}

/// Chunking-agnostic exactly-once across processes: 1-node and 2-node
/// clusters over real sockets produce bit-identical result digests.
#[test]
fn process_cluster_digest_is_node_count_invariant() {
    let (d1, e1, ep1, f1) = run_cluster("solo", 1);
    assert_eq!(f1, 0, "healthy run must not report failures");
    assert_eq!(ep1, 1, "healthy run stays on epoch 1");
    let (d2, e2, ep2, f2) = run_cluster("pair", 2);
    assert_eq!(f2, 0);
    assert_eq!(ep2, 1);
    assert_eq!(e1, e2, "entry counts must match across node counts");
    assert_eq!(d1, d2, "digests must be bit-identical across node counts");
}

/// The chaos run: `kill -9` a node process mid-run. The master must
/// detect the death (status staleness), replan onto the survivor, replay,
/// and finish with the exact digest of an undisturbed run — the
/// process-level demonstration of replan + replay + write-once dedup
/// yielding exactly-once results.
#[test]
fn kill_dash_nine_mid_run_recovers_to_identical_digest() {
    let (want_digest, want_entries, _, _) = run_cluster("ref", 2);

    let mut master = spawn_master("chaos", 2);
    let port = master_port(&master);
    let mut node0 = spawn_node("chaos-n0", 0, port);
    let mut node1 = spawn_node("chaos-n1", 1, port);

    // Kill as soon as the victim is executing its assignment: stores are
    // in flight exactly then, so recovery replays real data.
    node1.wait_for_stderr("assigned epoch 1");
    node1.kill_dash_nine();

    let status = master.wait_exit();
    assert!(
        status.success(),
        "master must survive a node kill:\n{}",
        master.stderr()
    );
    assert!(node0.wait_exit().success(), "survivor failed:\n{}", node0.stderr());

    let (digest, entries, epoch, failed) = parse_master_line(&master);
    assert_eq!(failed, 1, "exactly one node death must be recorded");
    assert!(epoch >= 2, "death must have forced a replan epoch");
    assert!(
        master.stderr().contains("replanning over 1 survivors"),
        "master must log the recovery:\n{}",
        master.stderr()
    );
    assert_eq!(entries, want_entries);
    assert_eq!(
        digest, want_digest,
        "post-recovery results must be bit-identical to the undisturbed run"
    );
}

//! Feature-level tests of the kernel language: deadline-driven alternate
//! code paths, control flow, scoping, numeric semantics and diagnostics.

use p2g_field::{Age, Region};
use p2g_lang::compile_source;
use p2g_runtime::{NodeBuilder, RunLimits};

fn run(src: &str, ages: u64, workers: usize) -> (p2g_runtime::node::FieldStore, String) {
    let compiled = compile_source(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
    let node = NodeBuilder::new(compiled.program).workers(workers);
    let (_, fields) = node
        .launch(RunLimits::ages(ages))
        .and_then(|n| n.collect())
        .unwrap();
    (fields, compiled.print.take())
}

const DEADLINE_SRC: &str = r#"
timer t1;
int32[] frames age;
int32[] encoded age;
int32[] skipped age;

capture:
  age a;
  local int32 v;
  %{
    timer_reset("t1");
    v = a * 100;
  %}
  store frames(a)[0] = v;

encode:
  age a;
  local int32 v;
  local int32 mark;
  fetch v = frames(a)[0];
  %{
    // Odd ages simulate a load spike that blows the 5 ms budget.
    if (a % 2 == 1) {
      int spin = 0;
      while (timer_expired("t1", 5) == 0) { spin = spin + 1; }
    }
  %}
  %{
    if (timer_expired("t1", 5)) {
      mark = 0 - a;
    } else {
      v = v + 1;
    }
  %}
  store encoded(a)[0] = v;
  store skipped(a)[0] = mark;
"#;

/// The paper's deadline construct: poll a timer, take the alternate path
/// (store to a different field) on expiry.
#[test]
fn deadline_alternate_code_path() {
    // Both stores are declared; the body performs both here (the alternate
    // path writes the skip marker, the primary path increments) — verify
    // that values reflect which branch ran.
    let (fields, _) = run(DEADLINE_SRC, 4, 2);
    for a in 0..4u64 {
        let enc = fields
            .fetch_element("encoded", Age(a), &[0])
            .unwrap()
            .as_i64();
        let skip = fields
            .fetch_element("skipped", Age(a), &[0])
            .unwrap()
            .as_i64();
        if a % 2 == 1 {
            // Deadline missed: encoded unchanged, marker set.
            assert_eq!(enc, a as i64 * 100, "age {a}");
            assert_eq!(skip, -(a as i64), "age {a}");
        } else {
            assert_eq!(enc, a as i64 * 100 + 1, "age {a}");
            assert_eq!(skip, 0, "age {a}");
        }
    }
}

/// The same deadline construct under heavy worker parallelism. Concurrent
/// `encode` instances of different ages race on the shared timer table, but
/// write-once fields keep the alternate-path stores consistent: each element
/// holds exactly one coherent branch outcome, stable across re-fetches.
#[test]
fn deadline_alternate_code_path_many_workers() {
    const AGES: u64 = 8;
    let (fields, _) = run(DEADLINE_SRC, AGES, 8);
    for a in 0..AGES {
        let enc = fields
            .fetch_element("encoded", Age(a), &[0])
            .unwrap()
            .as_i64();
        let skip = fields
            .fetch_element("skipped", Age(a), &[0])
            .unwrap()
            .as_i64();
        // Coherence: exactly one of the two branch outcomes, never a mix
        // of a primary encode with an alternate skip marker (or vice
        // versa) — the branch runs once and both its stores land.
        let primary = enc == a as i64 * 100 + 1 && skip == 0;
        let alternate = enc == a as i64 * 100 && skip == -(a as i64);
        assert!(
            primary != alternate,
            "age {a}: incoherent branch outcome (encoded={enc}, skipped={skip})"
        );
        // Odd ages spin until the timer is guaranteed expired: always the
        // alternate path, no matter how the workers interleave. (Even ages
        // may take either branch — a later capture can reset the shared
        // timer under their feet — which is exactly the race this test
        // puts on the write-once store path.)
        if a % 2 == 1 {
            assert!(
                alternate,
                "age {a}: spin loop must force the alternate path"
            );
        }
        // Write-once: a second fetch observes the identical value.
        assert_eq!(
            fields
                .fetch_element("encoded", Age(a), &[0])
                .unwrap()
                .as_i64(),
            enc
        );
        assert_eq!(
            fields
                .fetch_element("skipped", Age(a), &[0])
                .unwrap()
                .as_i64(),
            skip
        );
    }
}

#[test]
fn lexical_scoping_shadows() {
    let src = r#"
int32[] out age;
k:
  local int32 r;
  %{
    int x = 1;
    {
      int x = 10;
      x = x + 5; // inner x = 15
      r = r + x;
    }
    r = r + x; // outer x still 1
  %}
  store out(0)[0] = r;
"#;
    let (fields, _) = run(src, 1, 1);
    assert_eq!(
        fields.fetch_element("out", Age(0), &[0]).unwrap().as_i64(),
        16
    );
}

#[test]
fn while_break_continue() {
    let src = r#"
int32[] out age;
k:
  local int32 r;
  %{
    int i = 0;
    while (1) {
      i = i + 1;
      if (i > 10) break;
      if (i % 2 == 0) continue;
      r = r + i; // 1+3+5+7+9 = 25
    }
  %}
  store out(0)[0] = r;
"#;
    let (fields, _) = run(src, 1, 1);
    assert_eq!(
        fields.fetch_element("out", Age(0), &[0]).unwrap().as_i64(),
        25
    );
}

#[test]
fn integer_vs_float_division() {
    let src = r#"
int32[] iout age;
float64[] fout age;
k:
  local int32 i;
  local float64 f;
  %{
    i = 7 / 2;        // integer division
    f = 7.0 / 2;      // float division
  %}
  store iout(0)[0] = i;
  store fout(0)[0] = f;
"#;
    let (fields, _) = run(src, 1, 1);
    assert_eq!(
        fields.fetch_element("iout", Age(0), &[0]).unwrap().as_i64(),
        3
    );
    assert_eq!(
        fields.fetch_element("fout", Age(0), &[0]).unwrap().as_f64(),
        3.5
    );
}

#[test]
fn declared_type_truncates_on_assignment() {
    let src = r#"
int32[] out age;
k:
  local int32 r;
  %{
    r = 3.9; // int32 slot truncates like C
  %}
  store out(0)[0] = r;
"#;
    let (fields, _) = run(src, 1, 1);
    assert_eq!(
        fields.fetch_element("out", Age(0), &[0]).unwrap().as_i64(),
        3
    );
}

#[test]
fn uint8_field_wraps_like_c() {
    let src = r#"
uint8[] out age;
k:
  local int32 v;
  %{ v = 300; %}
  store out(0)[0] = v;
"#;
    let (fields, _) = run(src, 1, 1);
    assert_eq!(
        fields.fetch_element("out", Age(0), &[0]).unwrap().as_i64(),
        300 % 256
    );
}

#[test]
fn string_output_and_mixed_print() {
    let src = r#"
int32[] out age;
k:
  local int32 v;
  %{
    v = 42;
    print("value:");
    println(v);
  %}
  store out(0)[0] = v;
"#;
    let (_, output) = run(src, 1, 1);
    assert_eq!(output, "value: 42\n");
}

#[test]
fn compile_errors_carry_position_or_kernel() {
    // Lexical.
    let e = compile_source("int32[] f age;\nk:\n %{ let $x = 1; %}")
        .err()
        .unwrap();
    assert!(e.to_string().contains("lex error"), "{e}");
    // Syntactic.
    let e = compile_source("int32[] f age\nk:").err().unwrap();
    assert!(e.to_string().contains("parse error"), "{e}");
    // Semantic.
    let e = compile_source("k:\n local int32 v;\n fetch v = ghost(0);")
        .err()
        .unwrap();
    assert!(e.to_string().contains("unknown field"), "{e}");
}

#[test]
fn whole_2d_field_store_and_slice_fetch() {
    let src = r#"
int32[][] grid age;
int32[] out age;
init:
  local int32[][] g;
  %{
    resize(g, 3, 4);
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 4; ++c)
        put(g, r * 10 + c, r, c);
  %}
  store grid(0) = g;
rowsum:
  age a; index r;
  local int32[] row;
  local int32 s;
  fetch row = grid(a)[r][*];
  %{
    for (int c = 0; c < extent(row, 0); ++c) s += get(row, c);
  %}
  store out(a)[r] = s;
"#;
    let (fields, _) = run(src, 1, 3);
    let sums = fields.fetch("out", Age(0), &Region::all(1)).unwrap();
    // Row r: sum of r*10+c for c in 0..4 = 40r + 6.
    assert_eq!(sums.as_i32().unwrap(), &[6, 46, 86]);
}

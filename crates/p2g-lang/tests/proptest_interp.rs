//! Property tests for the native-block interpreter: randomly generated
//! arithmetic programs must compute the same values as a Rust reference
//! evaluation.

use proptest::prelude::*;

use p2g_field::{Age, Region};
use p2g_runtime::{NodeBuilder, RunLimits};

/// A tiny random expression language over two variables that maps
/// directly to both Rust semantics and kernel-language source.
#[derive(Debug, Clone)]
enum E {
    ConstI(i32),
    VarX,
    VarY,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    Abs(Box<E>),
}

impl E {
    fn to_source(&self) -> String {
        match self {
            E::ConstI(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            E::VarX => "x".into(),
            E::VarY => "y".into(),
            E::Add(a, b) => format!("({} + {})", a.to_source(), b.to_source()),
            E::Sub(a, b) => format!("({} - {})", a.to_source(), b.to_source()),
            E::Mul(a, b) => format!("({} * {})", a.to_source(), b.to_source()),
            E::Ternary(c, t, e) => format!(
                "({} > 0 ? {} : {})",
                c.to_source(),
                t.to_source(),
                e.to_source()
            ),
            E::Min(a, b) => format!("min({}, {})", a.to_source(), b.to_source()),
            E::Abs(a) => format!("abs({})", a.to_source()),
        }
    }

    fn eval(&self, x: i64, y: i64) -> i64 {
        match self {
            E::ConstI(v) => *v as i64,
            E::VarX => x,
            E::VarY => y,
            E::Add(a, b) => a.eval(x, y).wrapping_add(b.eval(x, y)),
            E::Sub(a, b) => a.eval(x, y).wrapping_sub(b.eval(x, y)),
            E::Mul(a, b) => a.eval(x, y).wrapping_mul(b.eval(x, y)),
            E::Ternary(c, t, e) => {
                if c.eval(x, y) > 0 {
                    t.eval(x, y)
                } else {
                    e.eval(x, y)
                }
            }
            E::Min(a, b) => a.eval(x, y).min(b.eval(x, y)),
            E::Abs(a) => a.eval(x, y).abs(),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-20i32..20).prop_map(E::ConstI),
        Just(E::VarX),
        Just(E::VarY),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| E::Ternary(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(Box::new(a), Box::new(b))),
            inner.prop_map(|a| E::Abs(Box::new(a))),
        ]
    })
}

/// Compile a program that evaluates `expr` over (x, y) pairs from the
/// input field and run it, returning the results.
fn run_expr(expr: &E, inputs: &[(i32, i32)]) -> Vec<i64> {
    let mut src = String::from(
        "int64[][] in age;\nint64[] out age;\ninit:\n  local int64[][] v;\n  %{\n    resize(v, ",
    );
    src.push_str(&inputs.len().to_string());
    src.push_str(", 2);\n");
    for (i, (x, y)) in inputs.iter().enumerate() {
        src.push_str(&format!(
            "    put(v, {}, {i}, 0);\n",
            E::ConstI(*x).to_source()
        ));
        src.push_str(&format!(
            "    put(v, {}, {i}, 1);\n",
            E::ConstI(*y).to_source()
        ));
    }
    src.push_str("  %}\n  store in(0) = v;\n");
    src.push_str("compute:\n  age a; index i;\n  local int64[] pair;\n  local int64 r;\n");
    src.push_str("  fetch pair = in(a)[i][*];\n");
    src.push_str("  %{\n    int64 x = get(pair, 0);\n    int64 y = get(pair, 1);\n");
    src.push_str(&format!("    r = {};\n  %}}\n", expr.to_source()));
    src.push_str("  store out(a)[i] = r;\n");

    let compiled = p2g_lang::compile_source(&src)
        .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
    let node = NodeBuilder::new(compiled.program).workers(2);
    let (_, fields) = node
        .launch(RunLimits::ages(1))
        .and_then(|n| n.collect())
        .unwrap();
    fields
        .fetch("out", Age(0), &Region::all(1))
        .expect("out field complete")
        .as_i64()
        .unwrap()
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interpreted arithmetic matches the Rust reference for random
    /// expressions over random inputs, executed as parallel kernel
    /// instances.
    #[test]
    fn interpreter_matches_reference(
        expr in expr_strategy(),
        inputs in prop::collection::vec((-100i32..100, -100i32..100), 1..6),
    ) {
        let got = run_expr(&expr, &inputs);
        let want: Vec<i64> = inputs
            .iter()
            .map(|&(x, y)| expr.eval(x as i64, y as i64))
            .collect();
        prop_assert_eq!(got, want, "expr: {}", expr.to_source());
    }
}

//! The dynamically created directed acyclic dependency graph (DC-DAG,
//! paper Figure 4).
//!
//! Write-once semantics turn the cyclic kernel graph into an acyclic graph
//! over (kernel, age) pairs: each trip around a cycle advances the age, so
//! unrolling by age removes the cycles without inserting barriers between
//! iterations. The low-level scheduler reasons on this DAG when it combines
//! task and data granularity.

use crate::spec::{AgeExpr, KernelId, ProgramSpec};
use p2g_field::Age;

/// A vertex of the DC-DAG: one kernel definition at one age.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DcDagNode {
    pub kernel: KernelId,
    pub age: Age,
}

/// The DC-DAG unrolled to a bounded number of ages.
#[derive(Debug, Clone)]
pub struct DcDag {
    pub nodes: Vec<DcDagNode>,
    /// Dependency edges producer→consumer (data flows along the edge).
    pub edges: Vec<(DcDagNode, DcDagNode)>,
}

impl DcDag {
    /// Unroll `spec` for ages `0..max_ages`. Kernels without an age
    /// variable appear only at age 0 (they run once).
    pub fn unroll(spec: &ProgramSpec, max_ages: u64) -> DcDag {
        let mut nodes = Vec::new();
        for k in &spec.kernels {
            let ages = if k.has_age_var { max_ages } else { 1 };
            for a in 0..ages {
                nodes.push(DcDagNode {
                    kernel: k.id,
                    age: Age(a),
                });
            }
        }

        let mut edges = Vec::new();
        for prod in &spec.kernels {
            let prod_ages = if prod.has_age_var { max_ages } else { 1 };
            for st in &prod.stores {
                for cons in &spec.kernels {
                    let cons_ages = if cons.has_age_var { max_ages } else { 1 };
                    for fe in &cons.fetches {
                        if fe.field != st.field {
                            continue;
                        }
                        // Instance (prod, ap) stores at resolve(st.age, ap);
                        // instance (cons, ac) fetches at resolve(fe.age, ac).
                        // Edge when those field ages coincide.
                        for ap in 0..prod_ages {
                            let stored_at = st.age.resolve(Age(ap));
                            let ac = match fe.age {
                                AgeExpr::Rel(t) => {
                                    let target = stored_at.0 as i64 - t;
                                    if target < 0 || target as u64 >= cons_ages {
                                        continue;
                                    }
                                    target as u64
                                }
                                AgeExpr::Const(c) => {
                                    if c != stored_at.0 {
                                        continue;
                                    }
                                    0 // const-age fetches live at any age; attribute to 0
                                }
                            };
                            edges.push((
                                DcDagNode {
                                    kernel: prod.id,
                                    age: Age(ap),
                                },
                                DcDagNode {
                                    kernel: cons.id,
                                    age: Age(ac),
                                },
                            ));
                        }
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        DcDag { nodes, edges }
    }

    /// Kahn topological sort; `None` if a cycle exists (which would violate
    /// the age-monotonicity invariant checked at spec validation).
    pub fn topo_order(&self) -> Option<Vec<DcDagNode>> {
        use std::collections::HashMap;
        let mut indeg: HashMap<DcDagNode, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        let mut adj: HashMap<DcDagNode, Vec<DcDagNode>> = HashMap::new();
        for &(u, v) in &self.edges {
            *indeg.entry(v).or_insert(0) += 1;
            adj.entry(u).or_default().push(v);
        }
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<DcDagNode>> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&n, _)| std::cmp::Reverse(n))
            .collect();
        let mut order = Vec::with_capacity(indeg.len());
        while let Some(std::cmp::Reverse(u)) = ready.pop() {
            order.push(u);
            if let Some(vs) = adj.get(&u) {
                for &v in vs {
                    let d = indeg.get_mut(&v).expect("edge endpoints are nodes");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(std::cmp::Reverse(v));
                    }
                }
            }
        }
        (order.len() == indeg.len()).then_some(order)
    }

    /// True when the unrolled graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Direct dependencies of a node.
    pub fn deps_of(&self, n: DcDagNode) -> impl Iterator<Item = DcDagNode> + '_ {
        self.edges
            .iter()
            .filter(move |&&(_, v)| v == n)
            .map(|&(u, _)| u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::mul_sum_example;

    #[test]
    fn unroll_counts_nodes() {
        let spec = mul_sum_example();
        let dag = DcDag::unroll(&spec, 3);
        // init appears once; mul2/plus5/print appear 3 times each.
        assert_eq!(dag.nodes.len(), 1 + 3 * 3);
    }

    #[test]
    fn unrolled_cycle_is_acyclic() {
        let spec = mul_sum_example();
        let dag = DcDag::unroll(&spec, 4);
        assert!(dag.is_acyclic());
    }

    #[test]
    fn dependencies_cross_ages() {
        let spec = mul_sum_example();
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        let plus5 = spec.kernel_by_name("plus5").unwrap();
        let dag = DcDag::unroll(&spec, 3);
        // plus5 at age a stores m_data(a+1) which mul2 at age a+1 fetches.
        let mul2_age1 = DcDagNode {
            kernel: mul2,
            age: Age(1),
        };
        let deps: Vec<_> = dag.deps_of(mul2_age1).collect();
        assert!(deps.contains(&DcDagNode {
            kernel: plus5,
            age: Age(0)
        }));
        // ...and not on plus5 at its own age.
        assert!(!deps.contains(&DcDagNode {
            kernel: plus5,
            age: Age(1)
        }));
    }

    #[test]
    fn topo_order_respects_edges() {
        let spec = mul_sum_example();
        let dag = DcDag::unroll(&spec, 3);
        let order = dag.topo_order().unwrap();
        let pos: std::collections::HashMap<DcDagNode, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &(u, v) in &dag.edges {
            assert!(pos[&u] < pos[&v], "{u:?} must precede {v:?}");
        }
    }

    #[test]
    fn init_feeds_only_age_zero() {
        let spec = mul_sum_example();
        let init = spec.kernel_by_name("init").unwrap();
        let dag = DcDag::unroll(&spec, 3);
        let init_edges: Vec<_> = dag
            .edges
            .iter()
            .filter(|&&(u, _)| u.kernel == init)
            .collect();
        assert!(!init_edges.is_empty());
        assert!(init_edges.iter().all(|&&(_, v)| v.age == Age(0)));
    }
}

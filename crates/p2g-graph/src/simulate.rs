//! Static offline what-if analysis for the high-level scheduler.
//!
//! The paper (Section V-A): the weighted final graph "could be used as
//! input to a simulator to best determine how to initially configure a
//! workload, given various global topology configurations". This module is
//! that simulator: given a weighted kernel graph, a candidate partitioning
//! and a topology, it estimates per-node compute time, inter-node
//! communication time and the resulting makespan — letting the master
//! compare deployment configurations before distributing anything.

use crate::partition::Partitioning;
use crate::static_graph::FinalGraph;
use crate::topology::{NodeId, Topology};

/// Cost estimate for one candidate deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Per-node compute time: assigned kernel weight divided by cores.
    pub compute: Vec<(NodeId, f64)>,
    /// Total communication time across cut edges.
    pub comm: f64,
    /// The bottleneck estimate: slowest node's compute plus the
    /// communication it is involved in.
    pub makespan: f64,
}

/// Default link parameters assumed when the topology declares no link
/// between two nodes (loopback-class connectivity).
const DEFAULT_BANDWIDTH_MBPS: f64 = 1000.0;
const DEFAULT_LATENCY_US: f64 = 50.0;

/// Estimate the cost of running `g` under `part`, mapping part `i` to
/// `nodes[i]`. Kernel weights are interpreted as µs of compute per
/// activation; edge weights as KB transferred per activation.
pub fn estimate(
    g: &FinalGraph,
    part: &Partitioning,
    topo: &Topology,
    nodes: &[NodeId],
) -> CostEstimate {
    assert!(
        nodes.len() >= part.parts,
        "need a target node per partition part"
    );

    // Compute: part load / node parallelism.
    let loads = part.loads(g);
    let mut compute = Vec::with_capacity(part.parts);
    for (p, &load) in loads.iter().enumerate() {
        let node = nodes[p];
        let cores = topo.node(node).map_or(1, |n| n.cores.max(1)) as f64;
        compute.push((node, load / cores));
    }

    // Communication: cut edges cross node links.
    let mut comm_total = 0.0;
    let mut comm_per_node = vec![0.0f64; part.parts];
    for e in &g.edges {
        let (pa, pb) = (part.part_of(e.from), part.part_of(e.to));
        if pa == pb {
            continue;
        }
        let (na, nb) = (nodes[pa], nodes[pb]);
        let (bw, lat) = topo
            .link(na, nb)
            .map(|l| (l.bandwidth_mbps as f64, l.latency_us as f64))
            .unwrap_or((DEFAULT_BANDWIDTH_MBPS, DEFAULT_LATENCY_US));
        // KB over Mbps → µs: kb * 8 / mbps * 1000.
        let cost = lat + e.weight * 8.0 / bw * 1000.0;
        comm_total += cost;
        comm_per_node[pa] += cost;
        comm_per_node[pb] += cost;
    }

    let makespan = compute
        .iter()
        .zip(&comm_per_node)
        .map(|(&(_, c), &m)| c + m)
        .fold(0.0f64, f64::max);

    CostEstimate {
        compute,
        comm: comm_total,
        makespan,
    }
}

/// Compare candidate part counts for a workload on a topology, returning
/// `(parts, makespan)` sorted by estimated makespan — "how to initially
/// configure a workload given various global topology configurations".
pub fn sweep_part_counts(
    g: &FinalGraph,
    topo: &Topology,
    candidates: impl IntoIterator<Item = usize>,
) -> Vec<(usize, f64)> {
    let nodes: Vec<NodeId> = topo.nodes().map(|n| n.id).collect();
    let mut out = Vec::new();
    for parts in candidates {
        if parts == 0 || parts > nodes.len() || parts > g.len().max(1) {
            continue;
        }
        let p = crate::partition::partition_greedy(g, parts);
        let p = crate::partition::kernighan_lin_refine(g, p);
        let est = estimate(g, &p, topo, &nodes[..parts]);
        out.push((parts, est.makespan));
    }
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_greedy;
    use crate::spec::mul_sum_example;
    use crate::topology::{LinkSpec, NodeSpec};

    fn topo2(cores_a: usize, cores_b: usize, bw: u64) -> Topology {
        let mut t = Topology::new();
        t.add_node(NodeSpec::multicore(NodeId(0), "a", cores_a));
        t.add_node(NodeSpec::multicore(NodeId(1), "b", cores_b));
        t.add_link(LinkSpec {
            a: NodeId(0),
            b: NodeId(1),
            latency_us: 100,
            bandwidth_mbps: bw,
        });
        t
    }

    #[test]
    fn single_part_has_no_comm() {
        let g = FinalGraph::from_spec(&mul_sum_example());
        let t = topo2(4, 4, 1000);
        let p = partition_greedy(&g, 1);
        let est = estimate(&g, &p, &t, &[NodeId(0)]);
        assert_eq!(est.comm, 0.0);
        assert!(est.makespan > 0.0);
    }

    #[test]
    fn split_parts_pay_communication() {
        let g = FinalGraph::from_spec(&mul_sum_example());
        let t = topo2(4, 4, 1000);
        let p = partition_greedy(&g, 2);
        let est = estimate(&g, &p, &t, &[NodeId(0), NodeId(1)]);
        assert!(est.comm > 0.0, "cut edges must cost communication");
        assert_eq!(est.compute.len(), 2);
    }

    #[test]
    fn slower_link_raises_makespan() {
        let g = FinalGraph::from_spec(&mul_sum_example());
        let p = partition_greedy(&g, 2);
        let fast = estimate(&g, &p, &topo2(4, 4, 10_000), &[NodeId(0), NodeId(1)]);
        let slow = estimate(&g, &p, &topo2(4, 4, 10), &[NodeId(0), NodeId(1)]);
        assert!(slow.makespan > fast.makespan);
    }

    #[test]
    fn more_cores_lower_compute() {
        let g = FinalGraph::from_spec(&mul_sum_example());
        let p = partition_greedy(&g, 1);
        let small = estimate(&g, &p, &topo2(1, 1, 1000), &[NodeId(0)]);
        let big = estimate(&g, &p, &topo2(8, 1, 1000), &[NodeId(0)]);
        assert!(big.compute[0].1 < small.compute[0].1);
    }

    #[test]
    fn sweep_prefers_single_node_for_chatty_graphs() {
        // mul/sum is all communication and almost no compute: splitting
        // it across a slow link must lose to keeping it on one node.
        let mut g = FinalGraph::from_spec(&mul_sum_example());
        for e in &mut g.edges {
            e.weight = 100.0; // heavy traffic per edge
        }
        let t = topo2(4, 4, 10); // slow link
        let ranked = sweep_part_counts(&g, &t, [1, 2]);
        assert_eq!(ranked[0].0, 1, "single node should win: {ranked:?}");
    }

    #[test]
    fn sweep_prefers_split_for_compute_heavy_graphs() {
        let mut g = FinalGraph::from_spec(&mul_sum_example());
        for w in &mut g.kernel_weights {
            *w = 100_000.0; // compute-dominant
        }
        for e in &mut g.edges {
            e.weight = 0.001;
        }
        let t = topo2(4, 4, 10_000); // fast link
        let ranked = sweep_part_counts(&g, &t, [1, 2]);
        assert_eq!(ranked[0].0, 2, "splitting should win: {ranked:?}");
    }

    #[test]
    fn sweep_skips_invalid_candidates() {
        let g = FinalGraph::from_spec(&mul_sum_example());
        let t = topo2(2, 2, 100);
        let ranked = sweep_part_counts(&g, &t, [0, 1, 2, 9]);
        let counts: Vec<usize> = ranked.iter().map(|&(p, _)| p).collect();
        assert!(!counts.contains(&0));
        assert!(!counts.contains(&9));
    }
}

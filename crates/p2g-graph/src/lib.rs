//! Dependency model of P2G: program specifications (kernels, fetch/store
//! statements), the implicit static dependency graphs of Figures 2–3, the
//! dynamically created DAG (DC-DAG, Figure 4), workload partitioning for the
//! high-level scheduler, and the resource topology model.
//!
//! This crate is purely declarative — kernel *bodies* live in the runtime
//! crate. Keeping the graph model separate lets the master node analyze and
//! partition workloads without ever loading executable code, exactly as the
//! paper's high-level scheduler operates on fetch/store statements alone.

pub mod dcdag;
pub mod partition;
pub mod simulate;
pub mod spec;
pub mod static_graph;
pub mod topology;

pub use dcdag::{DcDag, DcDagNode};
pub use partition::{kernighan_lin_refine, partition_greedy, tabu_refine, Partitioning};
pub use simulate::{estimate, sweep_part_counts, CostEstimate};
pub use spec::{
    AgeExpr, FetchDecl, IndexSel, IndexVar, KernelId, KernelSpec, ProgramSpec, SpecError, StoreDecl,
};
pub use static_graph::{FinalGraph, IntermediateGraph, IntermediateNode};
pub use topology::{LinkSpec, NodeId, NodeSpec, Topology};

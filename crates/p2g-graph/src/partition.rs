//! Workload partitioning for the high-level scheduler.
//!
//! The paper's HLS splits the final implicit static dependency graph into
//! components mapped onto execution nodes, using graph partitioning
//! (Hendrickson & Kolda [17]) or search-based algorithms (tabu search,
//! Glover [14]). We implement a greedy seeded growth for the initial
//! assignment plus two refiners: Kernighan–Lin style pairwise swaps and a
//! tabu search over single-vertex moves.

use crate::spec::KernelId;
use crate::static_graph::FinalGraph;

/// A k-way assignment of kernels to parts (execution nodes).
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    /// part index per kernel, indexed by `KernelId::idx`.
    pub assignment: Vec<usize>,
    /// Number of parts.
    pub parts: usize,
}

impl Partitioning {
    /// The part a kernel is assigned to.
    pub fn part_of(&self, k: KernelId) -> usize {
        self.assignment[k.idx()]
    }

    /// Kernels assigned to one part.
    pub fn kernels_in(&self, part: usize) -> Vec<KernelId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == part)
            .map(|(i, _)| KernelId(i as u32))
            .collect()
    }

    /// Total vertex weight per part.
    pub fn loads(&self, g: &FinalGraph) -> Vec<f64> {
        let mut loads = vec![0.0; self.parts];
        for (i, &p) in self.assignment.iter().enumerate() {
            loads[p] += g.kernel_weights[i];
        }
        loads
    }

    /// Imbalance: max part load / mean part load. 1.0 is perfect.
    pub fn imbalance(&self, g: &FinalGraph) -> f64 {
        let loads = self.loads(g);
        let total: f64 = loads.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        let mean = total / self.parts as f64;
        loads.iter().cloned().fold(0.0f64, f64::max) / mean
    }

    /// The partitioning objective used by the refiners: edge cut plus a
    /// quadratic imbalance penalty.
    pub fn cost(&self, g: &FinalGraph) -> f64 {
        let imb = self.imbalance(g);
        g.cut_weight(&self.assignment) + (imb - 1.0) * (imb - 1.0) * total_weight(g)
    }
}

fn total_weight(g: &FinalGraph) -> f64 {
    g.kernel_weights.iter().sum::<f64>() + g.edges.iter().map(|e| e.weight).sum::<f64>()
}

/// Greedy seeded growth: repeatedly grow the lightest part by pulling in
/// the unassigned kernel most strongly connected to it (or the heaviest
/// remaining kernel when none is connected).
pub fn partition_greedy(g: &FinalGraph, parts: usize) -> Partitioning {
    assert!(parts >= 1, "need at least one part");
    let n = g.len();
    let mut assignment = vec![usize::MAX; n];
    if n == 0 {
        return Partitioning { assignment, parts };
    }

    // Seed each part with the heaviest unassigned kernels.
    let mut by_weight: Vec<usize> = (0..n).collect();
    by_weight.sort_by(|&a, &b| {
        g.kernel_weights[b]
            .partial_cmp(&g.kernel_weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut loads = vec![0.0; parts];
    for (p, &k) in by_weight.iter().take(parts).enumerate() {
        assignment[k] = p;
        loads[p] += g.kernel_weights[k];
    }

    let mut remaining = n.saturating_sub(parts);
    while remaining > 0 {
        // Lightest part picks next.
        let p = (0..parts)
            .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).unwrap())
            .expect("parts >= 1");
        // Strongest-connected unassigned kernel to part p.
        let mut best: Option<(usize, f64)> = None;
        for e in &g.edges {
            let (u, v) = (e.from.idx(), e.to.idx());
            for (a, b) in [(u, v), (v, u)] {
                if assignment[a] == p && assignment[b] == usize::MAX {
                    let score = e.weight;
                    if best.is_none_or(|(_, s)| score > s) {
                        best = Some((b, score));
                    }
                }
            }
        }
        let pick = best.map(|(k, _)| k).unwrap_or_else(|| {
            by_weight
                .iter()
                .copied()
                .find(|&k| assignment[k] == usize::MAX)
                .expect("remaining > 0")
        });
        assignment[pick] = p;
        loads[p] += g.kernel_weights[pick];
        remaining -= 1;
    }

    Partitioning { assignment, parts }
}

/// Kernighan–Lin style refinement: greedily apply the single best vertex
/// move or pair swap while it strictly improves the cost. Terminates at a
/// local optimum.
pub fn kernighan_lin_refine(g: &FinalGraph, mut part: Partitioning) -> Partitioning {
    let n = g.len();
    loop {
        let base = part.cost(g);
        let mut best: Option<(Partitioning, f64)> = None;
        // Single-vertex moves.
        for v in 0..n {
            let from = part.assignment[v];
            for to in 0..part.parts {
                if to == from {
                    continue;
                }
                let mut cand = part.clone();
                cand.assignment[v] = to;
                let c = cand.cost(g);
                if c < base && best.as_ref().is_none_or(|&(_, bc)| c < bc) {
                    best = Some((cand, c));
                }
            }
        }
        // Pairwise swaps (KL's signature move — keeps balance intact).
        for a in 0..n {
            for b in a + 1..n {
                if part.assignment[a] == part.assignment[b] {
                    continue;
                }
                let mut cand = part.clone();
                cand.assignment.swap(a, b);
                let c = cand.cost(g);
                if c < base && best.as_ref().is_none_or(|&(_, bc)| c < bc) {
                    best = Some((cand, c));
                }
            }
        }
        match best {
            Some((cand, _)) => part = cand,
            None => return part,
        }
    }
}

/// Tabu search refinement (Glover): explores single-vertex moves, allowing
/// non-improving steps, with a recency-based tabu list to escape local
/// optima. Returns the best assignment seen.
pub fn tabu_refine(
    g: &FinalGraph,
    mut part: Partitioning,
    iterations: usize,
    tenure: usize,
    seed: u64,
) -> Partitioning {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = g.len();
    if n == 0 || part.parts < 2 {
        return part;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = part.clone();
    let mut best_cost = best.cost(g);
    // tabu[v] = iteration until which moving v is forbidden.
    let mut tabu = vec![0usize; n];

    for it in 1..=iterations {
        let mut chosen: Option<(usize, usize, f64)> = None;
        for v in 0..n {
            let from = part.assignment[v];
            for to in 0..part.parts {
                if to == from {
                    continue;
                }
                let mut cand_assign = part.assignment.clone();
                cand_assign[v] = to;
                let cand = Partitioning {
                    assignment: cand_assign,
                    parts: part.parts,
                };
                let c = cand.cost(g);
                let is_tabu = tabu[v] > it;
                // Aspiration: a tabu move is allowed when it beats the
                // global best.
                if is_tabu && c >= best_cost {
                    continue;
                }
                if chosen.is_none_or(|(_, _, cc)| c < cc) {
                    chosen = Some((v, to, c));
                }
            }
        }
        let Some((v, to, c)) = chosen else { break };
        part.assignment[v] = to;
        tabu[v] = it + tenure + rng.random_range(0..=tenure.max(1));
        if c < best_cost {
            best_cost = c;
            best = part.clone();
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::mul_sum_example;
    use crate::static_graph::FinalGraph;

    fn example_graph() -> FinalGraph {
        FinalGraph::from_spec(&mul_sum_example())
    }

    #[test]
    fn greedy_assigns_every_kernel() {
        let g = example_graph();
        for parts in 1..=4 {
            let p = partition_greedy(&g, parts);
            assert_eq!(p.assignment.len(), g.len());
            assert!(p.assignment.iter().all(|&a| a < parts));
        }
    }

    #[test]
    fn single_part_has_zero_cut() {
        let g = example_graph();
        let p = partition_greedy(&g, 1);
        assert_eq!(g.cut_weight(&p.assignment), 0.0);
        assert_eq!(p.imbalance(&g), 1.0);
    }

    #[test]
    fn kl_never_worsens() {
        let g = example_graph();
        for parts in 2..=3 {
            let p0 = partition_greedy(&g, parts);
            let c0 = p0.cost(&g);
            let p1 = kernighan_lin_refine(&g, p0);
            assert!(p1.cost(&g) <= c0);
        }
    }

    #[test]
    fn tabu_never_worse_than_start() {
        let g = example_graph();
        let p0 = partition_greedy(&g, 2);
        let c0 = p0.cost(&g);
        let p1 = tabu_refine(&g, p0, 50, 3, 42);
        assert!(p1.cost(&g) <= c0);
    }

    #[test]
    fn pipeline_graph_partitions_at_weak_edge() {
        // Chain a-b-c-d with a weak edge in the middle: 2-way partition
        // should cut the weak edge.
        let g = FinalGraph {
            kernel_weights: vec![1.0; 4],
            edges: vec![
                crate::static_graph::FinalEdge {
                    from: KernelId(0),
                    to: KernelId(1),
                    via: p2g_field::FieldId(0),
                    weight: 10.0,
                },
                crate::static_graph::FinalEdge {
                    from: KernelId(1),
                    to: KernelId(2),
                    via: p2g_field::FieldId(1),
                    weight: 0.1,
                },
                crate::static_graph::FinalEdge {
                    from: KernelId(2),
                    to: KernelId(3),
                    via: p2g_field::FieldId(2),
                    weight: 10.0,
                },
            ],
        };
        let p = kernighan_lin_refine(&g, partition_greedy(&g, 2));
        assert_eq!(p.assignment[0], p.assignment[1]);
        assert_eq!(p.assignment[2], p.assignment[3]);
        assert_ne!(p.assignment[0], p.assignment[2]);
        assert!((g.cut_weight(&p.assignment) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn loads_and_kernels_in() {
        let g = example_graph();
        let p = partition_greedy(&g, 2);
        let loads = p.loads(&g);
        assert_eq!(loads.len(), 2);
        assert!((loads.iter().sum::<f64>() - 4.0).abs() < 1e-9);
        let all: usize = (0..2).map(|q| p.kernels_in(q).len()).sum();
        assert_eq!(all, 4);
    }

    #[test]
    fn empty_graph() {
        let g = FinalGraph {
            kernel_weights: vec![],
            edges: vec![],
        };
        let p = partition_greedy(&g, 2);
        assert!(p.assignment.is_empty());
        let p = tabu_refine(&g, p, 10, 2, 0);
        assert!(p.assignment.is_empty());
    }
}

//! Program specifications: the declarative half of a P2G program.
//!
//! A [`ProgramSpec`] is what the kernel-language compiler emits and what both
//! schedulers consume: field definitions plus, per kernel, the `fetch` and
//! `store` statements with their age expressions and index patterns. From
//! these the runtime derives instance spaces and dependencies — the paper's
//! "implicit" dependency graph.

use p2g_field::{FieldDef, FieldId};

/// Identifies a kernel definition within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub u32);

impl KernelId {
    /// The id as a usize, for indexing per-kernel tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// An index variable declared in a kernel (`index x;`). Each combination of
/// index-variable values yields one kernel instance per age.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexVar(pub u8);

/// An age expression in a fetch/store statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgeExpr {
    /// `a + delta` where `a` is the kernel's age variable. `mul2`'s
    /// `fetch m_data(a)` is `Rel(0)`; `plus5`'s `store m_data(a+1)` is
    /// `Rel(1)`.
    Rel(i64),
    /// A constant age, e.g. `init`'s `store m_data(0)`.
    Const(u64),
}

impl AgeExpr {
    /// Resolve against a concrete instance age.
    #[inline]
    pub fn resolve(self, age: p2g_field::Age) -> p2g_field::Age {
        match self {
            AgeExpr::Rel(d) => age.offset(d),
            AgeExpr::Const(c) => p2g_field::Age(c),
        }
    }

    /// The relative delta, if this is a relative expression.
    pub fn delta(self) -> Option<i64> {
        match self {
            AgeExpr::Rel(d) => Some(d),
            AgeExpr::Const(_) => None,
        }
    }
}

/// Index selection along one field dimension in a fetch/store statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexSel {
    /// An index variable: finest granularity, one instance per value.
    Var(IndexVar),
    /// The whole dimension (`m_data(a)` with no index — fetch everything).
    All,
    /// A fixed index.
    Const(usize),
}

/// A `fetch` statement: which slice of which field, at which age, a kernel
/// instance consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchDecl {
    pub field: FieldId,
    pub age: AgeExpr,
    /// One selector per field dimension.
    pub dims: Vec<IndexSel>,
}

/// A `store` statement: which slice of which field, at which age, a kernel
/// instance may produce.
///
/// Stores are *potential*: a kernel body can skip its stores (end-of-stream
/// in the MJPEG reader, deadline-driven alternate paths), and downstream
/// dependency analysis is driven by actual store events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreDecl {
    pub field: FieldId,
    pub age: AgeExpr,
    pub dims: Vec<IndexSel>,
}

/// The declarative description of one kernel.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    pub id: KernelId,
    pub name: String,
    /// Number of index variables (`index x; index y;` → 2).
    pub index_vars: u8,
    /// Whether the kernel iterates over ages (`age a;`). Kernels without an
    /// age variable (like `init`) run exactly once.
    pub has_age_var: bool,
    pub fetches: Vec<FetchDecl>,
    pub stores: Vec<StoreDecl>,
}

impl KernelSpec {
    /// True for source kernels: no fetches, so they become runnable
    /// unconditionally (exactly once per age, or once overall without an
    /// age variable).
    pub fn is_source(&self) -> bool {
        self.fetches.is_empty()
    }
}

/// Errors found while validating a program specification.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    UnknownField {
        kernel: String,
        field: FieldId,
    },
    DimMismatch {
        kernel: String,
        field: String,
        expected: usize,
        found: usize,
    },
    UnboundIndexVar {
        kernel: String,
        var: IndexVar,
    },
    IndexVarOutOfRange {
        kernel: String,
        var: IndexVar,
    },
    NegativeAgeDelta {
        kernel: String,
        delta: i64,
    },
    /// A cycle in the kernel graph whose total age increment is zero or
    /// negative: its instances would wait on themselves forever. The
    /// write-once/aging model requires every cycle to advance the age.
    NonAgingCycle {
        kernels: Vec<String>,
    },
    DuplicateKernelName {
        name: String,
    },
    DuplicateFieldName {
        name: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownField { kernel, field } => {
                write!(f, "kernel '{kernel}' references unknown field {field}")
            }
            SpecError::DimMismatch {
                kernel,
                field,
                expected,
                found,
            } => write!(
                f,
                "kernel '{kernel}': field '{field}' has {expected} dims, statement uses {found}"
            ),
            SpecError::UnboundIndexVar { kernel, var } => write!(
                f,
                "kernel '{kernel}': index var #{} not bound by any fetch",
                var.0
            ),
            SpecError::IndexVarOutOfRange { kernel, var } => write!(
                f,
                "kernel '{kernel}': index var #{} exceeds declared index_vars",
                var.0
            ),
            SpecError::NegativeAgeDelta { kernel, delta } => write!(
                f,
                "kernel '{kernel}': fetch/store age delta {delta} is negative"
            ),
            SpecError::NonAgingCycle { kernels } => write!(
                f,
                "cycle without age increment through kernels {kernels:?}: instances would deadlock"
            ),
            SpecError::DuplicateKernelName { name } => {
                write!(f, "duplicate kernel name '{name}'")
            }
            SpecError::DuplicateFieldName { name } => {
                write!(f, "duplicate field name '{name}'")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete program specification: fields + kernels.
#[derive(Debug, Clone, Default)]
pub struct ProgramSpec {
    pub fields: Vec<FieldDef>,
    pub kernels: Vec<KernelSpec>,
}

impl ProgramSpec {
    /// Empty program.
    pub fn new() -> ProgramSpec {
        ProgramSpec::default()
    }

    /// Add a field, returning its id.
    pub fn add_field(&mut self, def: FieldDef) -> FieldId {
        let id = FieldId(self.fields.len() as u32);
        self.fields.push(def);
        id
    }

    /// Add a kernel, returning its id. The spec's `id` field is overwritten
    /// with the assigned id.
    pub fn add_kernel(&mut self, mut spec: KernelSpec) -> KernelId {
        let id = KernelId(self.kernels.len() as u32);
        spec.id = id;
        self.kernels.push(spec);
        id
    }

    /// Look up a field id by name.
    pub fn field_by_name(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| FieldId(i as u32))
    }

    /// Look up a kernel id by name.
    pub fn kernel_by_name(&self, name: &str) -> Option<KernelId> {
        self.kernels
            .iter()
            .position(|k| k.name == name)
            .map(|i| KernelId(i as u32))
    }

    /// Field definition for an id.
    pub fn field(&self, id: FieldId) -> &FieldDef {
        &self.fields[id.idx()]
    }

    /// Kernel spec for an id.
    pub fn kernel(&self, id: KernelId) -> &KernelSpec {
        &self.kernels[id.idx()]
    }

    /// Validate the whole program: reference integrity, dimensionality,
    /// index-variable binding, and the age-monotone cycle condition that
    /// guarantees deadlock freedom under write-once semantics.
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut field_names = std::collections::HashSet::new();
        for f in &self.fields {
            if !field_names.insert(f.name.as_str()) {
                return Err(SpecError::DuplicateFieldName {
                    name: f.name.clone(),
                });
            }
        }
        let mut kernel_names = std::collections::HashSet::new();
        for k in &self.kernels {
            if !kernel_names.insert(k.name.as_str()) {
                return Err(SpecError::DuplicateKernelName {
                    name: k.name.clone(),
                });
            }
        }

        for k in &self.kernels {
            let mut bound = vec![false; k.index_vars as usize];
            for (is_fetch, field, age, dims) in k
                .fetches
                .iter()
                .map(|f| (true, f.field, f.age, &f.dims))
                .chain(k.stores.iter().map(|s| (false, s.field, s.age, &s.dims)))
            {
                let fd = self
                    .fields
                    .get(field.idx())
                    .ok_or(SpecError::UnknownField {
                        kernel: k.name.clone(),
                        field,
                    })?;
                if dims.len() != fd.ndim {
                    return Err(SpecError::DimMismatch {
                        kernel: k.name.clone(),
                        field: fd.name.clone(),
                        expected: fd.ndim,
                        found: dims.len(),
                    });
                }
                if let AgeExpr::Rel(d) = age {
                    if d < 0 {
                        return Err(SpecError::NegativeAgeDelta {
                            kernel: k.name.clone(),
                            delta: d,
                        });
                    }
                }
                for sel in dims {
                    if let IndexSel::Var(v) = sel {
                        if v.0 as usize >= k.index_vars as usize {
                            return Err(SpecError::IndexVarOutOfRange {
                                kernel: k.name.clone(),
                                var: *v,
                            });
                        }
                        if is_fetch {
                            bound[v.0 as usize] = true;
                        }
                    }
                }
            }
            if let Some(unbound) = bound.iter().position(|&b| !b) {
                // Index vars used only in stores have no defined range.
                // (Kernels with zero index vars trivially pass.)
                let used_in_store = k.stores.iter().any(|s| {
                    s.dims
                        .iter()
                        .any(|d| matches!(d, IndexSel::Var(v) if v.0 as usize == unbound))
                });
                if used_in_store || k.index_vars as usize > 0 {
                    return Err(SpecError::UnboundIndexVar {
                        kernel: k.name.clone(),
                        var: IndexVar(unbound as u8),
                    });
                }
            }
            let _ = k;
        }

        self.check_aging_cycles()
    }

    /// Detect cycles with non-positive total age increment.
    ///
    /// For an edge producer→consumer through a field, an instance at age
    /// `a` of the producer storing with delta `s` feeds the consumer
    /// instance at age `a + s - t` (fetch delta `t`). Around a cycle the
    /// deltas must sum to something strictly positive, otherwise the cycle's
    /// instances at some age depend on each other and can never run.
    fn check_aging_cycles(&self) -> Result<(), SpecError> {
        // Edges with weight = s - t between kernels with age vars. Const-age
        // statements don't participate in cycles (they touch one age only).
        let n = self.kernels.len();
        let mut edges: Vec<(usize, usize, i64)> = Vec::new();
        for prod in &self.kernels {
            for st in &prod.stores {
                let Some(s) = st.age.delta() else { continue };
                for cons in &self.kernels {
                    for fe in &cons.fetches {
                        if fe.field != st.field {
                            continue;
                        }
                        let Some(t) = fe.age.delta() else { continue };
                        edges.push((prod.id.idx(), cons.id.idx(), s - t));
                    }
                }
            }
        }

        // A cycle with total weight <= 0 exists iff the graph, with edge
        // weights negated, has a cycle of weight >= 0... simpler: detect via
        // DFS enumeration on the SCCs using Bellman-Ford for longest paths
        // is fragile. With small kernel counts we enumerate simple cycles
        // via DFS (kernel graphs are tiny: the paper's largest has 6).
        let mut adj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n];
        for &(u, v, w) in &edges {
            adj[u].push((v, w));
        }
        let mut stack: Vec<(usize, i64)> = Vec::new();
        let mut on_stack = vec![false; n];

        fn dfs(
            u: usize,
            adj: &[Vec<(usize, i64)>],
            stack: &mut Vec<(usize, i64)>,
            on_stack: &mut [bool],
            kernels: &[KernelSpec],
        ) -> Result<(), SpecError> {
            for &(v, w) in &adj[u] {
                if let Some(pos) = stack.iter().position(|&(k, _)| k == v) {
                    // Found a cycle v..u→v; sum the weights along it plus w.
                    let total: i64 = stack[pos + 1..].iter().map(|&(_, pw)| pw).sum::<i64>() + w;
                    if total <= 0 {
                        return Err(SpecError::NonAgingCycle {
                            kernels: stack[pos..]
                                .iter()
                                .map(|&(k, _)| kernels[k].name.clone())
                                .collect(),
                        });
                    }
                } else if !on_stack[v] {
                    stack.push((v, w));
                    on_stack[v] = true;
                    let r = dfs(v, adj, stack, on_stack, kernels);
                    stack.pop();
                    on_stack[v] = false;
                    r?;
                }
            }
            Ok(())
        }

        for start in 0..n {
            stack.push((start, 0));
            on_stack[start] = true;
            let r = dfs(start, &adj, &mut stack, &mut on_stack, &self.kernels);
            stack.pop();
            on_stack[start] = false;
            r?;
        }
        Ok(())
    }

    /// Producers of each field: (kernel, store index) pairs.
    pub fn producers_of(&self, field: FieldId) -> Vec<(KernelId, usize)> {
        let mut out = Vec::new();
        for k in &self.kernels {
            for (i, s) in k.stores.iter().enumerate() {
                if s.field == field {
                    out.push((k.id, i));
                }
            }
        }
        out
    }

    /// Consumers of each field: (kernel, fetch index) pairs.
    pub fn consumers_of(&self, field: FieldId) -> Vec<(KernelId, usize)> {
        let mut out = Vec::new();
        for k in &self.kernels {
            for (i, f) in k.fetches.iter().enumerate() {
                if f.field == field {
                    out.push((k.id, i));
                }
            }
        }
        out
    }
}

/// Build the paper's Figure-5 example program spec (mul2 / plus5 / print /
/// init over fields `m_data` and `p_data`). Used by tests, docs, examples
/// and benches throughout the workspace.
pub fn mul_sum_example() -> ProgramSpec {
    use p2g_field::ScalarType;

    let mut p = ProgramSpec::new();
    let m_data = p.add_field(FieldDef::new("m_data", ScalarType::I32, 1));
    let p_data = p.add_field(FieldDef::new("p_data", ScalarType::I32, 1));

    // init: store m_data(0) = values;
    p.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "init".into(),
        index_vars: 0,
        has_age_var: false,
        fetches: vec![],
        stores: vec![StoreDecl {
            field: m_data,
            age: AgeExpr::Const(0),
            dims: vec![IndexSel::All],
        }],
    });
    // mul2: fetch value = m_data(a)[x]; store p_data(a)[x] = value*2;
    p.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "mul2".into(),
        index_vars: 1,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: m_data,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
        stores: vec![StoreDecl {
            field: p_data,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
    });
    // plus5: fetch value = p_data(a)[x]; store m_data(a+1)[x] = value+5;
    p.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "plus5".into(),
        index_vars: 1,
        has_age_var: true,
        fetches: vec![FetchDecl {
            field: p_data,
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
        stores: vec![StoreDecl {
            field: m_data,
            age: AgeExpr::Rel(1),
            dims: vec![IndexSel::Var(IndexVar(0))],
        }],
    });
    // print: fetch m = m_data(a); fetch p = p_data(a); (no stores)
    p.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "print".into(),
        index_vars: 0,
        has_age_var: true,
        fetches: vec![
            FetchDecl {
                field: m_data,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            },
            FetchDecl {
                field: p_data,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            },
        ],
        stores: vec![],
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2g_field::ScalarType;

    #[test]
    fn mul_sum_example_validates() {
        let p = mul_sum_example();
        p.validate().unwrap();
        assert_eq!(p.kernels.len(), 4);
        assert_eq!(p.fields.len(), 2);
        assert_eq!(p.kernel_by_name("mul2"), Some(KernelId(1)));
        assert_eq!(p.field_by_name("p_data"), Some(FieldId(1)));
    }

    #[test]
    fn age_expr_resolution() {
        use p2g_field::Age;
        assert_eq!(AgeExpr::Rel(1).resolve(Age(3)), Age(4));
        assert_eq!(AgeExpr::Rel(0).resolve(Age(3)), Age(3));
        assert_eq!(AgeExpr::Const(0).resolve(Age(9)), Age(0));
        assert_eq!(AgeExpr::Rel(2).delta(), Some(2));
        assert_eq!(AgeExpr::Const(1).delta(), None);
    }

    #[test]
    fn producers_and_consumers() {
        let p = mul_sum_example();
        let m = p.field_by_name("m_data").unwrap();
        let prods: Vec<_> = p.producers_of(m).iter().map(|&(k, _)| k).collect();
        assert_eq!(prods, vec![KernelId(0), KernelId(2)]); // init, plus5
        let cons: Vec<_> = p.consumers_of(m).iter().map(|&(k, _)| k).collect();
        assert_eq!(cons, vec![KernelId(1), KernelId(3)]); // mul2, print
    }

    #[test]
    fn unknown_field_rejected() {
        let mut p = ProgramSpec::new();
        p.add_kernel(KernelSpec {
            id: KernelId(0),
            name: "bad".into(),
            index_vars: 0,
            has_age_var: false,
            fetches: vec![],
            stores: vec![StoreDecl {
                field: FieldId(7),
                age: AgeExpr::Const(0),
                dims: vec![IndexSel::All],
            }],
        });
        assert!(matches!(p.validate(), Err(SpecError::UnknownField { .. })));
    }

    #[test]
    fn dim_mismatch_rejected() {
        let mut p = ProgramSpec::new();
        let f = p.add_field(FieldDef::new("v", ScalarType::I32, 2));
        p.add_kernel(KernelSpec {
            id: KernelId(0),
            name: "bad".into(),
            index_vars: 0,
            has_age_var: false,
            fetches: vec![],
            stores: vec![StoreDecl {
                field: f,
                age: AgeExpr::Const(0),
                dims: vec![IndexSel::All], // 1 selector for a 2-D field
            }],
        });
        assert!(matches!(p.validate(), Err(SpecError::DimMismatch { .. })));
    }

    #[test]
    fn store_only_index_var_rejected() {
        let mut p = ProgramSpec::new();
        let f = p.add_field(FieldDef::new("v", ScalarType::I32, 1));
        p.add_kernel(KernelSpec {
            id: KernelId(0),
            name: "bad".into(),
            index_vars: 1,
            has_age_var: true,
            fetches: vec![],
            stores: vec![StoreDecl {
                field: f,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::Var(IndexVar(0))],
            }],
        });
        assert!(matches!(
            p.validate(),
            Err(SpecError::UnboundIndexVar { .. })
        ));
    }

    #[test]
    fn non_aging_cycle_rejected() {
        // a → b → a with zero total age increment: deadlock.
        let mut p = ProgramSpec::new();
        let f1 = p.add_field(FieldDef::new("f1", ScalarType::I32, 1));
        let f2 = p.add_field(FieldDef::new("f2", ScalarType::I32, 1));
        p.add_kernel(KernelSpec {
            id: KernelId(0),
            name: "a".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![FetchDecl {
                field: f1,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
            stores: vec![StoreDecl {
                field: f2,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
        });
        p.add_kernel(KernelSpec {
            id: KernelId(0),
            name: "b".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![FetchDecl {
                field: f2,
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
            stores: vec![StoreDecl {
                field: f1,
                age: AgeExpr::Rel(0), // no increment → deadlock
                dims: vec![IndexSel::All],
            }],
        });
        assert!(matches!(p.validate(), Err(SpecError::NonAgingCycle { .. })));
    }

    #[test]
    fn aging_cycle_accepted() {
        // Same shape as above but b stores f1 at age a+1, like plus5.
        let mut p = ProgramSpec::new();
        let f1 = p.add_field(FieldDef::new("f1", ScalarType::I32, 1));
        let f2 = p.add_field(FieldDef::new("f2", ScalarType::I32, 1));
        for (name, fin, fout, delta) in [("a", f1, f2, 0i64), ("b", f2, f1, 1)] {
            p.add_kernel(KernelSpec {
                id: KernelId(0),
                name: name.into(),
                index_vars: 0,
                has_age_var: true,
                fetches: vec![FetchDecl {
                    field: fin,
                    age: AgeExpr::Rel(0),
                    dims: vec![IndexSel::All],
                }],
                stores: vec![StoreDecl {
                    field: fout,
                    age: AgeExpr::Rel(delta),
                    dims: vec![IndexSel::All],
                }],
            });
        }
        p.validate().unwrap();
    }

    #[test]
    fn negative_age_delta_rejected() {
        let mut p = ProgramSpec::new();
        let f = p.add_field(FieldDef::new("v", ScalarType::I32, 1));
        p.add_kernel(KernelSpec {
            id: KernelId(0),
            name: "bad".into(),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![FetchDecl {
                field: f,
                age: AgeExpr::Rel(-1),
                dims: vec![IndexSel::All],
            }],
            stores: vec![],
        });
        assert!(matches!(
            p.validate(),
            Err(SpecError::NegativeAgeDelta { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut p = ProgramSpec::new();
        p.add_field(FieldDef::new("v", ScalarType::I32, 1));
        p.add_field(FieldDef::new("v", ScalarType::I32, 1));
        assert!(matches!(
            p.validate(),
            Err(SpecError::DuplicateFieldName { .. })
        ));
    }

    #[test]
    fn source_kernel_detection() {
        let p = mul_sum_example();
        assert!(p.kernel(KernelId(0)).is_source()); // init
        assert!(!p.kernel(KernelId(1)).is_source()); // mul2
    }
}

//! The implicit static dependency graphs of the paper's Figures 2 and 3.
//!
//! The *intermediate* graph is bipartite: kernels and fields are vertices,
//! `store` statements are kernel→field edges, `fetch` statements are
//! field→kernel edges. Merging each field vertex into direct kernel→kernel
//! edges yields the *final* graph the high-level scheduler partitions.

use std::collections::BTreeMap;

use p2g_field::FieldId;

use crate::spec::{KernelId, ProgramSpec};

/// A vertex of the intermediate graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IntermediateNode {
    Kernel(KernelId),
    Field(FieldId),
}

/// The intermediate implicit static dependency graph (paper Figure 2).
#[derive(Debug, Clone)]
pub struct IntermediateGraph {
    /// kernel → field edges (store statements), with the store index.
    pub stores: Vec<(KernelId, FieldId)>,
    /// field → kernel edges (fetch statements), with the fetch index.
    pub fetches: Vec<(FieldId, KernelId)>,
}

impl IntermediateGraph {
    /// Derive from a program spec — purely from fetch/store statements, as
    /// the paper's HLS does.
    pub fn from_spec(spec: &ProgramSpec) -> IntermediateGraph {
        let mut stores = Vec::new();
        let mut fetches = Vec::new();
        for k in &spec.kernels {
            for s in &k.stores {
                stores.push((k.id, s.field));
            }
            for f in &k.fetches {
                fetches.push((f.field, k.id));
            }
        }
        stores.sort_unstable();
        stores.dedup();
        fetches.sort_unstable();
        fetches.dedup();
        IntermediateGraph { stores, fetches }
    }

    /// All vertices present in the graph.
    pub fn nodes(&self) -> Vec<IntermediateNode> {
        let mut out: Vec<IntermediateNode> = self
            .stores
            .iter()
            .flat_map(|&(k, f)| [IntermediateNode::Kernel(k), IntermediateNode::Field(f)])
            .chain(
                self.fetches
                    .iter()
                    .flat_map(|&(f, k)| [IntermediateNode::Field(f), IntermediateNode::Kernel(k)]),
            )
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Graphviz dot rendering (kernels as boxes, fields as ellipses); handy
    /// for debugging workloads, mirrors Figure 2.
    pub fn to_dot(&self, spec: &ProgramSpec) -> String {
        let mut s = String::from("digraph intermediate {\n");
        for node in self.nodes() {
            match node {
                IntermediateNode::Kernel(k) => {
                    s += &format!(
                        "  k{} [shape=box,label=\"{}\"];\n",
                        k.0,
                        spec.kernel(k).name
                    );
                }
                IntermediateNode::Field(f) => {
                    s += &format!(
                        "  f{} [shape=ellipse,label=\"{}\"];\n",
                        f.0,
                        spec.field(f).name
                    );
                }
            }
        }
        for &(k, f) in &self.stores {
            s += &format!("  k{} -> f{};\n", k.0, f.0);
        }
        for &(f, k) in &self.fetches {
            s += &format!("  f{} -> k{};\n", f.0, k.0);
        }
        s += "}\n";
        s
    }
}

/// A weighted kernel→kernel edge of the final graph: `via` is the field the
/// data flows through; `weight` estimates communication volume and is
/// updated from instrumentation during repartitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalEdge {
    pub from: KernelId,
    pub to: KernelId,
    pub via: FieldId,
    pub weight: f64,
}

/// The final implicit static dependency graph (paper Figure 3): field
/// vertices merged away, kernels carry computation weights.
#[derive(Debug, Clone)]
pub struct FinalGraph {
    /// One weight per kernel (indexed by `KernelId::idx`); defaults to 1.0,
    /// updated with measured kernel time by the instrumentation feedback
    /// loop.
    pub kernel_weights: Vec<f64>,
    pub edges: Vec<FinalEdge>,
}

impl FinalGraph {
    /// Derive from the intermediate graph by merging field vertices.
    pub fn from_intermediate(spec: &ProgramSpec, ig: &IntermediateGraph) -> FinalGraph {
        let mut edges = Vec::new();
        for &(producer, field) in &ig.stores {
            for &(f2, consumer) in &ig.fetches {
                if f2 == field {
                    edges.push(FinalEdge {
                        from: producer,
                        to: consumer,
                        via: field,
                        weight: 1.0,
                    });
                }
            }
        }
        FinalGraph {
            kernel_weights: vec![1.0; spec.kernels.len()],
            edges,
        }
    }

    /// Derive directly from a spec.
    pub fn from_spec(spec: &ProgramSpec) -> FinalGraph {
        FinalGraph::from_intermediate(spec, &IntermediateGraph::from_spec(spec))
    }

    /// Number of kernels.
    pub fn len(&self) -> usize {
        self.kernel_weights.len()
    }

    /// True when the graph has no kernels.
    pub fn is_empty(&self) -> bool {
        self.kernel_weights.is_empty()
    }

    /// Out-neighbors of a kernel.
    pub fn successors(&self, k: KernelId) -> impl Iterator<Item = KernelId> + '_ {
        self.edges.iter().filter(move |e| e.from == k).map(|e| e.to)
    }

    /// In-neighbors of a kernel.
    pub fn predecessors(&self, k: KernelId) -> impl Iterator<Item = KernelId> + '_ {
        self.edges.iter().filter(move |e| e.to == k).map(|e| e.from)
    }

    /// Apply instrumentation feedback: set kernel weights to measured mean
    /// kernel time and edge weights to measured transfer volume. Missing
    /// entries keep their previous weights.
    pub fn apply_weights(
        &mut self,
        kernel_time: &BTreeMap<KernelId, f64>,
        edge_volume: &BTreeMap<(KernelId, KernelId), f64>,
    ) {
        for (k, w) in kernel_time {
            if k.idx() < self.kernel_weights.len() {
                self.kernel_weights[k.idx()] = *w;
            }
        }
        for e in &mut self.edges {
            if let Some(v) = edge_volume.get(&(e.from, e.to)) {
                e.weight = *v;
            }
        }
    }

    /// Total weight of edges crossing between two kernel sets, used as the
    /// partitioning objective (communication minimization).
    pub fn cut_weight(&self, assignment: &[usize]) -> f64 {
        self.edges
            .iter()
            .filter(|e| assignment[e.from.idx()] != assignment[e.to.idx()])
            .map(|e| e.weight)
            .sum()
    }

    /// Graphviz rendering of the final graph (Figure 3).
    pub fn to_dot(&self, spec: &ProgramSpec) -> String {
        let mut s = String::from("digraph final {\n");
        for k in &spec.kernels {
            s += &format!(
                "  k{} [shape=box,label=\"{} ({:.1})\"];\n",
                k.id.0,
                k.name,
                self.kernel_weights[k.id.idx()]
            );
        }
        for e in &self.edges {
            s += &format!(
                "  k{} -> k{} [label=\"{} ({:.1})\"];\n",
                e.from.0,
                e.to.0,
                spec.field(e.via).name,
                e.weight
            );
        }
        s += "}\n";
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::mul_sum_example;

    #[test]
    fn intermediate_graph_shape() {
        let spec = mul_sum_example();
        let ig = IntermediateGraph::from_spec(&spec);
        // init→m_data, mul2→p_data, plus5→m_data
        assert_eq!(ig.stores.len(), 3);
        // m_data→mul2, m_data→print, p_data→plus5, p_data→print
        assert_eq!(ig.fetches.len(), 4);
        assert_eq!(ig.nodes().len(), 6); // 4 kernels + 2 fields
    }

    #[test]
    fn final_graph_merges_fields() {
        let spec = mul_sum_example();
        let fg = FinalGraph::from_spec(&spec);
        let init = spec.kernel_by_name("init").unwrap();
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        let plus5 = spec.kernel_by_name("plus5").unwrap();
        let print = spec.kernel_by_name("print").unwrap();
        // Figure 3's edges: init→mul2, init→print, mul2→plus5, mul2→print,
        // plus5→mul2, plus5→print.
        let mut pairs: Vec<(KernelId, KernelId)> =
            fg.edges.iter().map(|e| (e.from, e.to)).collect();
        pairs.sort_unstable();
        let mut want = vec![
            (init, mul2),
            (init, print),
            (mul2, plus5),
            (mul2, print),
            (plus5, mul2),
            (plus5, print),
        ];
        want.sort_unstable();
        assert_eq!(pairs, want);
    }

    #[test]
    fn successors_predecessors() {
        let spec = mul_sum_example();
        let fg = FinalGraph::from_spec(&spec);
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        let plus5 = spec.kernel_by_name("plus5").unwrap();
        assert!(fg.successors(mul2).any(|k| k == plus5));
        assert!(fg.predecessors(mul2).any(|k| k == plus5));
    }

    #[test]
    fn cut_weight_counts_crossing_edges() {
        let spec = mul_sum_example();
        let fg = FinalGraph::from_spec(&spec);
        // Everything in one part: zero cut.
        assert_eq!(fg.cut_weight(&[0, 0, 0, 0]), 0.0);
        // All kernels separated: all 6 edges cut (weight 1 each).
        assert_eq!(fg.cut_weight(&[0, 1, 2, 3]), 6.0);
    }

    #[test]
    fn apply_weights_updates() {
        let spec = mul_sum_example();
        let mut fg = FinalGraph::from_spec(&spec);
        let mul2 = spec.kernel_by_name("mul2").unwrap();
        let plus5 = spec.kernel_by_name("plus5").unwrap();
        let mut kt = BTreeMap::new();
        kt.insert(mul2, 42.0);
        let mut ev = BTreeMap::new();
        ev.insert((mul2, plus5), 9.0);
        fg.apply_weights(&kt, &ev);
        assert_eq!(fg.kernel_weights[mul2.idx()], 42.0);
        assert!(fg
            .edges
            .iter()
            .any(|e| e.from == mul2 && e.to == plus5 && e.weight == 9.0));
    }

    #[test]
    fn dot_output_mentions_names() {
        let spec = mul_sum_example();
        let ig = IntermediateGraph::from_spec(&spec);
        let dot = ig.to_dot(&spec);
        assert!(dot.contains("mul2") && dot.contains("m_data"));
        let fg = FinalGraph::from_spec(&spec);
        let dot = fg.to_dot(&spec);
        assert!(dot.contains("plus5") && dot.contains("->"));
    }
}

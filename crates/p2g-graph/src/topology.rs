//! Resource topology: what execution nodes report to the master node.
//!
//! Each execution node reports its local topology (cores, accelerators,
//! memory); the master combines these with interconnect links into a global
//! topology that the HLS consults when sizing partitions (paper Figure 1 and
//! Section IV). Nodes may join and leave at runtime.

use std::collections::BTreeMap;

/// Identifies an execution node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The local topology one execution node reports.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    pub id: NodeId,
    /// Hostname or label, for reports.
    pub name: String,
    /// Worker cores available for kernel execution.
    pub cores: usize,
    /// GPU-like accelerators (modelled but not scheduled onto in this
    /// prototype, matching the paper's x86-only prototype).
    pub gpus: usize,
    /// Memory in megabytes, bounds field residency.
    pub mem_mb: usize,
}

impl NodeSpec {
    /// A plain multi-core node.
    pub fn multicore(id: NodeId, name: impl Into<String>, cores: usize) -> NodeSpec {
        NodeSpec {
            id,
            name: name.into(),
            cores,
            gpus: 0,
            mem_mb: 8192,
        }
    }
}

/// An interconnect between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    pub a: NodeId,
    pub b: NodeId,
    pub latency_us: u64,
    pub bandwidth_mbps: u64,
}

/// The global topology the master node maintains.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: BTreeMap<NodeId, NodeSpec>,
    links: Vec<LinkSpec>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Register (or update) a node — execution nodes report their local
    /// topology on joining.
    pub fn add_node(&mut self, spec: NodeSpec) {
        self.nodes.insert(spec.id, spec);
    }

    /// Remove a node that left the cluster; its links are dropped too.
    pub fn remove_node(&mut self, id: NodeId) -> Option<NodeSpec> {
        self.links.retain(|l| l.a != id && l.b != id);
        self.nodes.remove(&id)
    }

    /// Declare a link between two registered nodes.
    pub fn add_link(&mut self, link: LinkSpec) {
        assert!(
            self.nodes.contains_key(&link.a) && self.nodes.contains_key(&link.b),
            "links must connect registered nodes"
        );
        self.links.push(link);
    }

    /// All registered nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeSpec> {
        self.nodes.values()
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> Option<&NodeSpec> {
        self.nodes.get(&id)
    }

    /// The link between two nodes, if declared (order-insensitive).
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<&LinkSpec> {
        self.links
            .iter()
            .find(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
    }

    /// Total worker cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes.values().map(|n| n.cores).sum()
    }

    /// Per-node compute share (cores / total), the HLS's target load
    /// distribution when sizing partitions.
    pub fn compute_shares(&self) -> Vec<(NodeId, f64)> {
        let total = self.total_cores().max(1) as f64;
        self.nodes
            .values()
            .map(|n| (n.id, n.cores as f64 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_nodes() {
        let mut t = Topology::new();
        t.add_node(NodeSpec::multicore(NodeId(0), "i7", 8));
        t.add_node(NodeSpec::multicore(NodeId(1), "opteron", 8));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_cores(), 16);
        assert_eq!(t.node(NodeId(0)).unwrap().name, "i7");
    }

    #[test]
    fn links_order_insensitive() {
        let mut t = Topology::new();
        t.add_node(NodeSpec::multicore(NodeId(0), "a", 4));
        t.add_node(NodeSpec::multicore(NodeId(1), "b", 4));
        t.add_link(LinkSpec {
            a: NodeId(0),
            b: NodeId(1),
            latency_us: 100,
            bandwidth_mbps: 1000,
        });
        assert!(t.link(NodeId(1), NodeId(0)).is_some());
        assert!(t.link(NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn remove_node_drops_links() {
        let mut t = Topology::new();
        t.add_node(NodeSpec::multicore(NodeId(0), "a", 4));
        t.add_node(NodeSpec::multicore(NodeId(1), "b", 4));
        t.add_link(LinkSpec {
            a: NodeId(0),
            b: NodeId(1),
            latency_us: 1,
            bandwidth_mbps: 1,
        });
        assert!(t.remove_node(NodeId(1)).is_some());
        assert!(t.link(NodeId(0), NodeId(1)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn compute_shares_sum_to_one() {
        let mut t = Topology::new();
        t.add_node(NodeSpec::multicore(NodeId(0), "a", 2));
        t.add_node(NodeSpec::multicore(NodeId(1), "b", 6));
        let shares = t.compute_shares();
        let total: f64 = shares.iter().map(|&(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(shares[1].1, 0.75);
    }

    #[test]
    fn node_update_overwrites() {
        let mut t = Topology::new();
        t.add_node(NodeSpec::multicore(NodeId(0), "a", 2));
        t.add_node(NodeSpec::multicore(NodeId(0), "a", 16));
        assert_eq!(t.total_cores(), 16);
        assert_eq!(t.len(), 1);
    }
}

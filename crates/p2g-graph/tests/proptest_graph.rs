//! Property tests for the graph layer: DC-DAG acyclicity for every valid
//! program, partitioning invariants, and simulator sanity.

use proptest::prelude::*;

use p2g_field::{FieldDef, ScalarType};
use p2g_graph::spec::{AgeExpr, FetchDecl, IndexSel, KernelId, KernelSpec, ProgramSpec, StoreDecl};
use p2g_graph::static_graph::FinalEdge;
use p2g_graph::{kernighan_lin_refine, partition_greedy, tabu_refine, DcDag, FinalGraph};

/// Generate a random chain-with-feedback program: `n` kernels in a
/// pipeline, with optional feedback edges that must carry a positive age
/// delta (valid) or zero (invalid). Returns (spec, valid).
fn random_program(n: usize, feedback: Vec<(usize, usize, i64)>) -> (ProgramSpec, bool) {
    let mut spec = ProgramSpec::new();
    let fields: Vec<_> = (0..=n + feedback.len())
        .map(|i| spec.add_field(FieldDef::new(format!("f{i}"), ScalarType::I32, 1)))
        .collect();

    // source kernel stores f0(a).
    spec.add_kernel(KernelSpec {
        id: KernelId(0),
        name: "src".into(),
        index_vars: 0,
        has_age_var: true,
        fetches: vec![],
        stores: vec![StoreDecl {
            field: fields[0],
            age: AgeExpr::Rel(0),
            dims: vec![IndexSel::All],
        }],
    });
    // chain: k_i fetches f_i, stores f_{i+1}.
    for i in 0..n {
        spec.add_kernel(KernelSpec {
            id: KernelId(0),
            name: format!("k{i}"),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![FetchDecl {
                field: fields[i],
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
            stores: vec![StoreDecl {
                field: fields[i + 1],
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
        });
    }
    // feedback: a kernel fetching f_to's level and storing back to f_from
    // with the given delta. Cycle total = delta, so delta <= 0 is invalid
    // whenever from <= to (a real cycle).
    let mut valid = true;
    for (fi, &(from, to, delta)) in feedback.iter().enumerate() {
        let (from, to) = (from % (n + 1), to % (n + 1));
        if from <= to && delta <= 0 {
            valid = false;
        }
        spec.add_kernel(KernelSpec {
            id: KernelId(0),
            name: format!("fb{fi}"),
            index_vars: 0,
            has_age_var: true,
            fetches: vec![FetchDecl {
                field: fields[to],
                age: AgeExpr::Rel(0),
                dims: vec![IndexSel::All],
            }],
            stores: vec![StoreDecl {
                field: fields[from],
                age: AgeExpr::Rel(delta),
                dims: vec![IndexSel::All],
            }],
        });
    }
    (spec, valid)
}

fn random_graph(n: usize, edges: &[(usize, usize)], weights: &[u8]) -> FinalGraph {
    FinalGraph {
        kernel_weights: (0..n).map(|i| 1.0 + (i % 5) as f64).collect(),
        edges: edges
            .iter()
            .zip(weights.iter().cycle())
            .filter(|&(&(a, b), _)| a % n != b % n)
            .map(|(&(a, b), &w)| FinalEdge {
                from: KernelId((a % n) as u32),
                to: KernelId((b % n) as u32),
                via: p2g_field::FieldId(0),
                weight: 0.5 + w as f64,
            })
            .collect(),
    }
}

proptest! {
    /// Every program that passes validation unrolls to an acyclic DC-DAG —
    /// the core theorem behind write-once + aging.
    #[test]
    fn valid_programs_unroll_acyclically(
        n in 1usize..5,
        feedback in prop::collection::vec((0usize..6, 0usize..6, 0i64..3), 0..3),
    ) {
        let (spec, expect_valid) = random_program(n, feedback);
        match spec.validate() {
            Ok(()) => {
                let dag = DcDag::unroll(&spec, 4);
                prop_assert!(dag.is_acyclic(), "validated program must unroll acyclically");
            }
            Err(e) => {
                // Only the zero-delta-cycle case may fail.
                prop_assert!(!expect_valid, "unexpected rejection: {e}");
            }
        }
    }

    /// Programs we constructed as invalid (zero-increment cycles) are
    /// always rejected.
    #[test]
    fn zero_increment_cycles_rejected(
        n in 1usize..4,
        from in 0usize..4,
        to in 0usize..4,
    ) {
        let from = from % (n + 1);
        let to = to % (n + 1);
        prop_assume!(from <= to); // ensures a genuine cycle
        let (spec, _) = random_program(n, vec![(from, to, 0)]);
        prop_assert!(spec.validate().is_err());
    }

    /// Partitioning invariants: every kernel assigned to a valid part;
    /// refinement never increases cost; single part ⇒ zero cut.
    #[test]
    fn partitioning_invariants(
        n in 2usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 1..30),
        weights in prop::collection::vec(any::<u8>(), 1..30),
        parts in 1usize..5,
    ) {
        let g = random_graph(n, &edges, &weights);
        let p0 = partition_greedy(&g, parts);
        prop_assert_eq!(p0.assignment.len(), n);
        prop_assert!(p0.assignment.iter().all(|&a| a < parts));

        let c0 = p0.cost(&g);
        let p1 = kernighan_lin_refine(&g, p0.clone());
        prop_assert!(p1.cost(&g) <= c0 + 1e-9);
        let p2 = tabu_refine(&g, p0.clone(), 30, 3, 1);
        prop_assert!(p2.cost(&g) <= c0 + 1e-9);

        if parts == 1 {
            prop_assert_eq!(g.cut_weight(&p0.assignment), 0.0);
        }
        // Cut weight is bounded by total edge weight.
        let total: f64 = g.edges.iter().map(|e| e.weight).sum();
        prop_assert!(g.cut_weight(&p1.assignment) <= total + 1e-9);
    }

    /// The deployment simulator is monotone in link speed: a faster link
    /// never yields a worse makespan for the same assignment.
    #[test]
    fn simulator_monotone_in_bandwidth(
        n in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8), 1..16),
        weights in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        use p2g_graph::topology::{LinkSpec, NodeId, NodeSpec, Topology};
        let g = random_graph(n, &edges, &weights);
        let p = partition_greedy(&g, 2);
        let mk_topo = |bw: u64| {
            let mut t = Topology::new();
            t.add_node(NodeSpec::multicore(NodeId(0), "a", 4));
            t.add_node(NodeSpec::multicore(NodeId(1), "b", 4));
            t.add_link(LinkSpec { a: NodeId(0), b: NodeId(1), latency_us: 10, bandwidth_mbps: bw });
            t
        };
        let nodes = [NodeId(0), NodeId(1)];
        let slow = p2g_graph::estimate(&g, &p, &mk_topo(10), &nodes);
        let fast = p2g_graph::estimate(&g, &p, &mk_topo(10_000), &nodes);
        prop_assert!(fast.makespan <= slow.makespan + 1e-9);
        prop_assert!(fast.comm <= slow.comm + 1e-9);
    }
}

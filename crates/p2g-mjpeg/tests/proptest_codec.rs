//! Property tests for the JPEG substrate: entropy coding must be a
//! bijection on quantized blocks, and the DCT/IDCT pair must reconstruct.

use proptest::prelude::*;

use p2g_mjpeg::dct::{
    dct_quantize_aan, dct_quantize_naive, dequantize, idct_naive, scaled_quant_table, QUANT_LUMA,
};
use p2g_mjpeg::huffman::{
    decode_block, encode_block, extend_magnitude, magnitude_bits, BitReader, BitWriter, HuffTable,
    AC_CHROMA, AC_LUMA, DC_CHROMA, DC_LUMA,
};

/// JPEG baseline AC coefficients fit 10 magnitude bits; DC differences 11.
fn coeff() -> impl Strategy<Value = i16> {
    -1023i16..=1023
}

proptest! {
    /// decode ∘ encode = id over random quantized blocks and random block
    /// sequences (DC prediction chains across blocks).
    #[test]
    fn huffman_block_round_trip(
        blocks in prop::collection::vec(
            prop::collection::vec(coeff(), 64),
            1..5
        ),
        chroma in any::<bool>(),
    ) {
        let (dc_spec, ac_spec) = if chroma {
            (&DC_CHROMA, &AC_CHROMA)
        } else {
            (&DC_LUMA, &AC_LUMA)
        };
        let dc = HuffTable::build(dc_spec);
        let ac = HuffTable::build(ac_spec);

        let blocks: Vec<[i16; 64]> = blocks
            .into_iter()
            .map(|v| {
                let mut b = [0i16; 64];
                b.copy_from_slice(&v);
                b
            })
            .collect();

        let mut w = BitWriter::new();
        let mut pred = 0i16;
        for b in &blocks {
            encode_block(&mut w, b, &mut pred, &dc, &ac);
        }
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        let mut dpred = 0i16;
        for (i, b) in blocks.iter().enumerate() {
            let got = decode_block(&mut r, &mut dpred, dc_spec, ac_spec)
                .unwrap_or_else(|| panic!("block {i} failed to decode"));
            prop_assert_eq!(&got[..], &b[..], "block {}", i);
        }
    }

    /// Magnitude coding is a bijection over the full DC-difference range.
    #[test]
    fn magnitude_round_trip(v in -2047i32..=2047) {
        let (size, bits) = magnitude_bits(v);
        prop_assert!(size <= 11);
        prop_assert_eq!(extend_magnitude(bits, size), v);
    }

    /// DCT → quantize → dequantize → IDCT reconstructs within the error
    /// bound implied by the quantization step sizes.
    #[test]
    fn dct_reconstruction_bounded(pixels in prop::collection::vec(any::<u8>(), 64)) {
        let mut block = [0u8; 64];
        block.copy_from_slice(&pixels);
        let table = scaled_quant_table(&QUANT_LUMA, 90);
        let q = dct_quantize_naive(&block, &table);
        let back = idct_naive(&dequantize(&q, &table));
        // Mean absolute error stays small at quality 90 even for noise
        // blocks (each coefficient's rounding error is bounded by half its
        // quantization step).
        let mae: f64 = block
            .iter()
            .zip(&back)
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .sum::<f64>()
            / 64.0;
        prop_assert!(mae < 12.0, "mean absolute error {mae}");
    }

    /// The naive and AAN transforms agree within one quantization step on
    /// every coefficient, for arbitrary content.
    #[test]
    fn naive_vs_aan_within_one_step(pixels in prop::collection::vec(any::<u8>(), 64)) {
        let mut block = [0u8; 64];
        block.copy_from_slice(&pixels);
        let table = scaled_quant_table(&QUANT_LUMA, 75);
        let a = dct_quantize_naive(&block, &table);
        let b = dct_quantize_aan(&block, &table);
        for i in 0..64 {
            prop_assert!((a[i] - b[i]).abs() <= 1, "coeff {}: {} vs {}", i, a[i], b[i]);
        }
    }

    /// Bit writer/reader round-trip over arbitrary bit runs.
    #[test]
    fn bit_io_round_trip(chunks in prop::collection::vec((any::<u16>(), 1u8..=16), 1..50)) {
        let mut w = BitWriter::new();
        let masked: Vec<(u16, u8)> = chunks
            .iter()
            .map(|&(bits, len)| {
                let mask = if len == 16 { u16::MAX } else { (1u16 << len) - 1 };
                (bits & mask, len)
            })
            .collect();
        for &(bits, len) in &masked {
            w.put(bits, len);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(bits, len) in &masked {
            prop_assert_eq!(r.read(len), Some(bits));
        }
    }
}

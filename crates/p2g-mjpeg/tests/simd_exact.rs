//! Property tests pinning the SIMD fast paths to their scalar oracles:
//! every vectorised kernel body (AAN DCT, quantization, RGB↔YUV) must be
//! bit-identical to the scalar implementation on arbitrary inputs, and a
//! full pipeline run with batching + adaptation enabled must produce the
//! exact bytes of the standalone single-threaded encoder.
//!
//! With `--no-default-features` the fast paths compile to the scalar
//! code, so these properties degenerate to `x == x` — they only bite in
//! the default `simd` build, where they cover the intrinsics.

use std::sync::Arc;

use proptest::prelude::*;

use p2g_core::prelude::*;
use p2g_mjpeg::dct::{
    aan_divisors, dct_quantize_aan_div, dct_quantize_aan_scalar, fdct_aan, fdct_aan_scalar,
    quantize_aan, quantize_aan_div, scaled_quant_table, QUANT_CHROMA, QUANT_LUMA,
};
use p2g_mjpeg::yuv::{rgb_to_yuv, rgb_to_yuv_scalar, yuv_to_rgb, yuv_to_rgb_scalar, YuvFrame};
use p2g_mjpeg::{build_mjpeg_program, encode_standalone, MjpegConfig, SyntheticVideo};

fn block() -> impl Strategy<Value = [u8; 64]> {
    prop::collection::vec(any::<u8>(), 64).prop_map(|v| {
        let mut b = [0u8; 64];
        b.copy_from_slice(&v);
        b
    })
}

proptest! {
    /// The SIMD 2D AAN DCT matches the scalar implementation exactly
    /// (same f64 operations, just four butterflies per vector).
    #[test]
    fn simd_fdct_matches_scalar(b in block()) {
        let fast = fdct_aan(&b);
        let slow = fdct_aan_scalar(&b);
        prop_assert_eq!(&fast[..], &slow[..]);
    }

    /// SIMD quantization by precomputed reciprocal-free divisors matches
    /// the scalar divide-and-round on arbitrary coefficients and any
    /// quality's table.
    #[test]
    fn simd_quantize_matches_scalar(b in block(), quality in 1u8..=100, chroma in any::<bool>()) {
        let base = if chroma { QUANT_CHROMA } else { QUANT_LUMA };
        let table = scaled_quant_table(&base, quality);
        let coeffs = fdct_aan_scalar(&b);
        let fast = quantize_aan_div(&coeffs, &aan_divisors(&table));
        let slow = quantize_aan(&coeffs, &table);
        prop_assert_eq!(&fast[..], &slow[..]);
    }

    /// The fused block transform (what the pipeline's fast bodies run)
    /// matches the all-scalar oracle end to end.
    #[test]
    fn simd_block_transform_matches_scalar(b in block(), quality in 1u8..=100) {
        let table = scaled_quant_table(&QUANT_LUMA, quality);
        let fast = dct_quantize_aan_div(&b, &aan_divisors(&table));
        let slow = dct_quantize_aan_scalar(&b, &table);
        prop_assert_eq!(&fast[..], &slow[..]);
    }

    /// SIMD RGB→YUV (4:2:0 subsampling included) is bit-identical to the
    /// scalar conversion on arbitrary MCU-aligned images.
    #[test]
    fn simd_rgb_to_yuv_matches_scalar(
        w in 1usize..=6,
        h in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let (w, h) = (w * 16, h * 16);
        let mut state = seed | 1;
        let rgb: Vec<u8> = (0..w * h * 3)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xff) as u8
            })
            .collect();
        let fast = rgb_to_yuv(&rgb, w, h);
        let slow = rgb_to_yuv_scalar(&rgb, w, h);
        prop_assert_eq!(fast.y, slow.y);
        prop_assert_eq!(fast.u, slow.u);
        prop_assert_eq!(fast.v, slow.v);
    }

    /// SIMD YUV→RGB matches the scalar upsample + convert exactly.
    #[test]
    fn simd_yuv_to_rgb_matches_scalar(
        w in 1usize..=6,
        h in 1usize..=4,
        data in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let (w, h) = (w * 16, h * 16);
        let need = YuvFrame::i420_size(w, h);
        let mut bytes = data;
        bytes.resize(need, 0x80);
        let frame = YuvFrame::from_i420(w, h, &bytes).expect("sized i420 buffer");
        prop_assert_eq!(yuv_to_rgb(&frame), yuv_to_rgb_scalar(&frame));
    }
}

proptest! {
    // Full-runtime cases are expensive; a few random shapes suffice —
    // the per-kernel properties above carry the bit-level load.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The complete pipeline with SIMD bodies, batched execution, and
    /// online granularity adaptation emits byte-identical JPEG streams to
    /// the standalone scalar-order encoder.
    #[test]
    fn batched_pipeline_encodes_bit_identically(
        seed in any::<u64>(),
        quality in prop_oneof![Just(50u8), Just(75u8), Just(90u8)],
        frames in 1u64..=3,
    ) {
        let src = SyntheticVideo::new(32, 32, frames, seed);
        let reference = encode_standalone(&src, quality, frames, true);
        let config = MjpegConfig {
            quality,
            max_frames: frames,
            fast_dct: true,
            dct_chunk: 4,
            ..MjpegConfig::default()
        };
        let (program, sink) = build_mjpeg_program(Arc::new(src), config).expect("program builds");
        NodeBuilder::new(program)
            .workers(2)
            .launch(
                RunLimits::ages(frames + 1)
                    .with_gc_window(4)
                    .with_batch_exec()
                    .with_adaptive(AdaptiveGranularity::default()),
            )
            .and_then(|n| n.wait())
            .expect("run succeeds");
        prop_assert_eq!(sink.take(), reference);
    }
}

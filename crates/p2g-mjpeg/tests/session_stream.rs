//! The MJPEG pipeline as a streaming-session tenant: frames submitted
//! through the session API must encode bit-exactly with the batch
//! pipeline/standalone encoder, stay memory-flat under a GC window, and
//! drop (not stall on) frames that blow their deadline.

use std::sync::Arc;
use std::time::Duration;

use p2g_mjpeg::encoder::count_frames;
use p2g_mjpeg::pipeline::{build_mjpeg_stream_program, stream_frame_parts, MjpegConfig};
use p2g_mjpeg::synthetic::{FrameSource, SyntheticVideo};
use p2g_mjpeg::encode_standalone;
use p2g_runtime::{SessionConfig, SessionRuntime, SessionSink};

#[test]
fn streamed_frames_encode_bit_exactly() {
    const FRAMES: u64 = 6;
    let src = SyntheticVideo::new(32, 32, FRAMES, 11);
    let config = MjpegConfig {
        quality: 75,
        fast_dct: false,
        ..MjpegConfig::default()
    };
    let runtime = SessionRuntime::new(4);
    let sink = SessionSink::new();
    let program =
        build_mjpeg_stream_program(src.width(), src.height(), config, sink.clone()).unwrap();
    let session = runtime
        .open(
            program,
            SessionConfig::new("vlc/write")
                .sink(sink)
                .max_in_flight(4)
                .gc_window(8),
        )
        .unwrap();

    let mut stream = Vec::new();
    for n in 0..FRAMES {
        let f = src.frame(n).unwrap();
        session.submit(stream_frame_parts(&session, &f)).unwrap();
        while let Some(out) = session.poll_output() {
            stream.extend(out.payload.expect("no drops without a deadline"));
        }
    }
    session.close();
    while let Some(out) = session.recv(Duration::from_secs(30)) {
        stream.extend(out.payload.expect("no drops without a deadline"));
    }
    let report = session.finish(Duration::from_secs(30)).unwrap();
    assert_eq!(report.frames_completed, FRAMES);
    assert_eq!(report.frames_dropped, 0);

    let reference = encode_standalone(&src, 75, FRAMES, false);
    assert_eq!(
        stream, reference,
        "session-streamed MJPEG must be bit-exact with the baseline"
    );
    assert_eq!(count_frames(&stream), FRAMES as usize);
    runtime.shutdown();
}

#[test]
fn concurrent_mjpeg_sessions_stay_memory_flat() {
    const SESSIONS: usize = 3;
    const FRAMES: u64 = 40;
    let runtime = Arc::new(SessionRuntime::new(4));

    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let runtime = runtime.clone();
            std::thread::spawn(move || {
                let src = SyntheticVideo::new(32, 32, FRAMES, 100 + i as u64);
                let config = MjpegConfig {
                    quality: 60,
                    fast_dct: true,
                    ..MjpegConfig::default()
                };
                let sink = SessionSink::new();
                let program =
                    build_mjpeg_stream_program(src.width(), src.height(), config, sink.clone())
                        .unwrap();
                let session = runtime
                    .open(
                        program,
                        SessionConfig::new("vlc/write")
                            .sink(sink)
                            .max_in_flight(4)
                            .gc_window(4),
                    )
                    .unwrap();
                let mut got = 0u64;
                let mut peak_resident = 0usize;
                for n in 0..FRAMES {
                    let f = src.frame(n).unwrap();
                    session.submit(stream_frame_parts(&session, &f)).unwrap();
                    while session.poll_output().is_some() {
                        got += 1;
                    }
                    peak_resident = peak_resident.max(session.resident_ages());
                }
                while got < FRAMES {
                    session.recv(Duration::from_secs(30)).expect("frame output");
                    got += 1;
                }
                let report = session.finish(Duration::from_secs(30)).unwrap();
                assert_eq!(report.frames_completed, FRAMES);
                // 7 fields x (gc window + in flight) is a generous bound;
                // the point is it does not scale with FRAMES.
                assert!(
                    peak_resident < 7 * 16,
                    "per-session resident slabs must stay near the GC \
                     window, saw {peak_resident}"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    runtime.shutdown();
}

#[test]
fn deadline_stalled_frame_drops_from_the_session_stream() {
    const FRAMES: u64 = 4;
    let src = SyntheticVideo::new(32, 32, FRAMES, 7);
    let config = MjpegConfig {
        quality: 75,
        fast_dct: true,
        frame_deadline: Some(Duration::from_millis(40)),
        stall_frame: Some(1),
        ..MjpegConfig::default()
    };
    let runtime = SessionRuntime::new(4);
    let sink = SessionSink::new();
    let program =
        build_mjpeg_stream_program(src.width(), src.height(), config, sink.clone()).unwrap();
    let session = runtime
        .open(
            program,
            SessionConfig::new("vlc/write")
                .sink(sink)
                .max_in_flight(4)
                .gc_window(8),
        )
        .unwrap();

    for n in 0..FRAMES {
        let f = src.frame(n).unwrap();
        session.submit(stream_frame_parts(&session, &f)).unwrap();
    }
    let mut dropped = Vec::new();
    let mut stream = Vec::new();
    for _ in 0..FRAMES {
        let out = session
            .recv(Duration::from_secs(30))
            .expect("every frame completes, dropped or not");
        match out.payload {
            Some(bytes) => stream.extend(bytes),
            None => dropped.push(out.age),
        }
    }
    assert_eq!(dropped, vec![1], "exactly the stalled frame drops");
    assert_eq!(count_frames(&stream), FRAMES as usize - 1);

    let report = session.finish(Duration::from_secs(30)).unwrap();
    assert_eq!(report.frames_dropped, 1);
    assert_eq!(report.frames_completed, FRAMES);
    runtime.shutdown();
}
